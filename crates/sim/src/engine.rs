//! The two-phase synchronous simulation engine.

use pe_rtl::{ComponentId, ComponentKind, Design, DesignError, SignalId};
use pe_util::bits;
use pe_util::PortError;

/// Pre-compiled evaluation record for one combinational component.
#[derive(Debug)]
struct CompiledOp {
    comp: ComponentId,
    inputs: Vec<u32>,
    in_widths: Vec<u32>,
    output: u32,
    out_width: u32,
}

/// Pre-compiled record for a register.
#[derive(Debug)]
struct CompiledReg {
    d: u32,
    en: Option<u32>,
    q: u32,
    clock: u32,
}

/// Pre-compiled record for a memory.
#[derive(Debug)]
struct CompiledMem {
    raddr: u32,
    waddr: u32,
    wdata: u32,
    wen: u32,
    rdata: u32,
    words: u32,
    clock: u32,
    state_index: usize,
}

/// Pending memory commit: the `rdata` value slot, the captured read
/// value, and an optional `(bank, addr, data)` write.
type MemNext = (u32, u64, Option<(usize, usize, u64)>);

/// A cycle-accurate simulator for a [`Design`].
///
/// The simulator borrows the design. Signal values are `u64` words masked
/// to their width. Combinational logic settles lazily: any read through
/// [`Simulator::value`] (or friends) first re-evaluates the combinational
/// network if an input changed or a clock edge occurred since the last
/// settle, so observed values are always consistent.
#[derive(Debug)]
pub struct Simulator<'a> {
    design: &'a Design,
    values: Vec<u64>,
    ops: Vec<CompiledOp>,
    regs: Vec<CompiledReg>,
    mems: Vec<CompiledMem>,
    mem_state: Vec<Vec<u64>>,
    dirty: bool,
    cycle: u64,
    settles: u64,
}

impl<'a> Simulator<'a> {
    /// Compiles a design for simulation. Registers take their `init`
    /// values and memories their initial contents (zeros when unspecified).
    ///
    /// # Errors
    ///
    /// Returns the design's validation error if it is not a well-formed
    /// synchronous netlist (undriven signals, combinational cycles, …).
    pub fn new(design: &'a Design) -> Result<Self, DesignError> {
        design.validate()?;
        let order = pe_rtl::topo_order(design)?;
        let mut ops = Vec::with_capacity(order.len());
        for id in order {
            let comp = design.component(id);
            ops.push(CompiledOp {
                comp: id,
                inputs: comp.inputs().iter().map(|s| s.index() as u32).collect(),
                in_widths: comp
                    .inputs()
                    .iter()
                    .map(|s| design.signal(*s).width())
                    .collect(),
                output: comp.output().index() as u32,
                out_width: design.signal(comp.output()).width(),
            });
        }
        let mut regs = Vec::new();
        let mut mems = Vec::new();
        let mut mem_state = Vec::new();
        let mut values = vec![0u64; design.signals().len()];
        for comp in design.components() {
            match comp.kind() {
                ComponentKind::Register { init, has_enable } => {
                    values[comp.output().index()] = init.unwrap_or(0);
                    regs.push(CompiledReg {
                        d: comp.inputs()[0].index() as u32,
                        en: has_enable.then(|| comp.inputs()[1].index() as u32),
                        q: comp.output().index() as u32,
                        clock: comp.clock().expect("registers are clocked").index() as u32,
                    });
                }
                ComponentKind::Memory { words, init } => {
                    let state = match init {
                        Some(init) => init.clone(),
                        None => vec![0u64; *words as usize],
                    };
                    mems.push(CompiledMem {
                        raddr: comp.inputs()[0].index() as u32,
                        waddr: comp.inputs()[1].index() as u32,
                        wdata: comp.inputs()[2].index() as u32,
                        wen: comp.inputs()[3].index() as u32,
                        rdata: comp.output().index() as u32,
                        words: *words,
                        clock: comp.clock().expect("memories are clocked").index() as u32,
                        state_index: mem_state.len(),
                    });
                    mem_state.push(state);
                }
                _ => {}
            }
        }
        Ok(Self {
            design,
            values,
            ops,
            regs,
            mems,
            mem_state,
            dirty: true,
            cycle: 0,
            settles: 0,
        })
    }

    /// The design under simulation.
    pub fn design(&self) -> &'a Design {
        self.design
    }

    /// Number of clock edges stepped so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of combinational settle passes performed so far. Settling
    /// is lazy, so this exposes how much evaluation a workload actually
    /// triggered (read-heavy testbenches settle more often than cycle
    /// count alone suggests).
    pub fn settle_count(&self) -> u64 {
        self.settles
    }

    /// Observes this simulator's run counters into `registry`
    /// (`sim.cycles`, `sim.settle_passes` histograms). Call once at the
    /// end of a run; each call contributes one observation per metric.
    pub fn record_metrics(&self, registry: &pe_trace::Registry) {
        registry.histogram("sim.cycles").observe(self.cycle);
        registry
            .histogram("sim.settle_passes")
            .observe(self.settles);
    }

    /// Drives a top-level input signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not input-driven or `value` does not fit its
    /// width — both are testbench bugs.
    pub fn set_input(&mut self, signal: SignalId, value: u64) {
        assert!(
            self.design.is_input_driven(signal),
            "signal `{}` is not a top-level input",
            self.design.signal(signal).name()
        );
        assert!(
            self.design.value_fits(signal, value),
            "value {:#x} does not fit `{}` ({} bits)",
            value,
            self.design.signal(signal).name(),
            self.design.signal(signal).width()
        );
        if self.values[signal.index()] != value {
            self.values[signal.index()] = value;
            self.dirty = true;
        }
    }

    /// Drives a top-level input by port name.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if no such input port exists, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    pub fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        let sig = self
            .design
            .find_input(name)
            .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?;
        if !self.design.value_fits(sig, value) {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: self.design.signal(sig).width(),
            });
        }
        self.set_input(sig, value);
        Ok(())
    }

    /// Drives a top-level input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no such input port exists (see [`Simulator::set_input`]
    /// for value checks).
    pub fn set_input_by_name(&mut self, name: &str, value: u64) {
        self.try_set_input_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.settles += 1;
        let mut ins: Vec<u64> = Vec::with_capacity(8);
        for op in &self.ops {
            ins.clear();
            ins.extend(op.inputs.iter().map(|&i| self.values[i as usize]));
            let comp = self.design.component(op.comp);
            let out = comp.kind().eval(&ins, &op.in_widths, op.out_width);
            self.values[op.output as usize] = out;
        }
        self.dirty = false;
    }

    /// Current value of a signal (settling first if needed).
    pub fn value(&mut self, signal: SignalId) -> u64 {
        self.settle();
        self.values[signal.index()]
    }

    /// Current value of a named output port.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if no such output port exists.
    pub fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        let sig = self
            .design
            .find_output(name)
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        Ok(self.value(sig))
    }

    /// Current value of a named output port.
    ///
    /// # Panics
    ///
    /// Panics if no such output port exists.
    pub fn output(&mut self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Settles and returns a consistent snapshot of **all** signal values,
    /// indexed by [`SignalId::index`]. This is the hot call of software
    /// power estimation: every macromodel reads its component's I/O from
    /// this slice.
    pub fn values(&mut self) -> &[u64] {
        self.settle();
        &self.values
    }

    /// Advances one clock edge on **all** clock domains (the common
    /// single-clock case).
    pub fn step(&mut self) {
        self.step_domains(None);
    }

    /// Advances one clock edge on the given domain only.
    pub fn step_clock(&mut self, clock: pe_rtl::ClockId) {
        self.step_domains(Some(clock.index() as u32));
    }

    fn step_domains(&mut self, only: Option<u32>) {
        self.settle();
        // Capture phase: compute every sequential next-value from the
        // settled state, then commit — models simultaneous edges.
        let mut reg_next: Vec<(u32, u64)> = Vec::with_capacity(self.regs.len());
        for reg in &self.regs {
            if only.is_some_and(|c| c != reg.clock) {
                continue;
            }
            let enabled = reg.en.is_none_or(|en| self.values[en as usize] != 0);
            if enabled {
                reg_next.push((reg.q, self.values[reg.d as usize]));
            }
        }
        let mut mem_next: Vec<MemNext> = Vec::with_capacity(self.mems.len());
        for mem in &self.mems {
            if only.is_some_and(|c| c != mem.clock) {
                continue;
            }
            let raddr = self.values[mem.raddr as usize] as usize % mem.words as usize;
            let read = self.mem_state[mem.state_index][raddr];
            let write = if self.values[mem.wen as usize] != 0 {
                let waddr = self.values[mem.waddr as usize] as usize % mem.words as usize;
                Some((mem.state_index, waddr, self.values[mem.wdata as usize]))
            } else {
                None
            };
            mem_next.push((mem.rdata, read, write));
        }
        for (q, v) in reg_next {
            self.values[q as usize] = v;
        }
        for (rdata, read, write) in mem_next {
            self.values[rdata as usize] = read;
            if let Some((state, addr, data)) = write {
                self.mem_state[state][addr] = data;
            }
        }
        self.cycle += 1;
        self.dirty = true;
    }

    /// Runs `n` clock edges on all domains.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Reads a memory word directly (for test assertions).
    ///
    /// # Panics
    ///
    /// Panics if `component` is not a memory or `addr` is out of range.
    pub fn memory_word(&self, component: ComponentId, addr: usize) -> u64 {
        let mem = self
            .mems
            .iter()
            .find(|m| self.design.component(component).output().index() == m.rdata as usize)
            .unwrap_or_else(|| panic!("component is not a memory"));
        self.mem_state[mem.state_index][addr]
    }

    /// Resets the simulator to power-on state: registers to `init`,
    /// memories to initial contents, inputs to zero, cycle counter to 0.
    pub fn reset(&mut self) {
        for v in &mut self.values {
            *v = 0;
        }
        for comp in self.design.components() {
            if let ComponentKind::Register { init, .. } = comp.kind() {
                self.values[comp.output().index()] = init.unwrap_or(0);
            }
        }
        for mem in &self.mems {
            let comp = self
                .design
                .components()
                .iter()
                .find(|c| c.output().index() == mem.rdata as usize)
                .expect("memory component exists");
            if let ComponentKind::Memory { init, words } = comp.kind() {
                self.mem_state[mem.state_index] = match init {
                    Some(init) => init.clone(),
                    None => vec![0u64; *words as usize],
                };
            }
        }
        self.cycle = 0;
        self.dirty = true;
    }

    /// Convenience: the masked width of a signal (debug assertions in
    /// drivers).
    pub fn signal_mask(&self, signal: SignalId) -> u64 {
        bits::mask(self.design.signal(signal).width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::builder::DesignBuilder;

    fn counter() -> Design {
        let mut b = DesignBuilder::new("counter");
        let clk = b.clock("clk");
        let one = b.constant(1, 8);
        let count = b.register_named("count", 8, 0, clk);
        let next = b.add(count.q(), one);
        b.connect_d(count, next);
        b.output("count", count.q());
        b.finish().unwrap()
    }

    #[test]
    fn named_port_lookups_report_errors() {
        let d = counter();
        let mut sim = Simulator::new(&d).unwrap();
        assert_eq!(
            sim.try_set_input_by_name("reset", 1),
            Err(PortError::NoSuchInput("reset".into()))
        );
        assert_eq!(
            sim.try_output("cout"),
            Err(PortError::NoSuchOutput("cout".into()))
        );
        assert_eq!(sim.try_output("count"), Ok(0));
        // Width check goes through the error channel too.
        let mut b = DesignBuilder::new("w");
        let x = b.input("x", 4);
        b.output("y", x);
        let dw = b.finish().unwrap();
        let mut simw = Simulator::new(&dw).unwrap();
        assert_eq!(
            simw.try_set_input_by_name("x", 0x10),
            Err(PortError::ValueTooWide {
                port: "x".into(),
                value: 0x10,
                width: 4
            })
        );
        assert_eq!(simw.try_set_input_by_name("x", 0xF), Ok(()));
        assert_eq!(simw.try_output("y"), Ok(0xF));
    }

    #[test]
    fn counter_counts_and_wraps() {
        let d = counter();
        let mut sim = Simulator::new(&d).unwrap();
        assert_eq!(sim.output("count"), 0);
        sim.step_n(10);
        assert_eq!(sim.output("count"), 10);
        sim.step_n(246);
        assert_eq!(sim.output("count"), 0); // 256 wraps
        assert_eq!(sim.cycle(), 256);
    }

    #[test]
    fn combinational_logic_settles_through_chain() {
        let mut b = DesignBuilder::new("chain");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let sum = b.add(a, c);
        let doubled = b.shl_const(sum, 1);
        let inv = b.not(doubled);
        b.output("y", inv);
        let d = b.finish().unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("a", 3);
        sim.set_input_by_name("b", 4);
        assert_eq!(sim.output("y"), !(14u64) & 0xFF);
        sim.set_input_by_name("a", 5);
        assert_eq!(sim.output("y"), !(18u64) & 0xFF);
    }

    #[test]
    fn register_enable_gates_updates() {
        let mut b = DesignBuilder::new("en");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let en = b.input("en", 1);
        let r = b.register_named("r", 8, 7, clk);
        b.connect_d_en(r, x, en);
        b.output("q", r.q());
        let d = b.finish().unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        assert_eq!(sim.output("q"), 7); // init value
        sim.set_input_by_name("x", 42);
        sim.set_input_by_name("en", 0);
        sim.step();
        assert_eq!(sim.output("q"), 7); // gated
        sim.set_input_by_name("en", 1);
        sim.step();
        assert_eq!(sim.output("q"), 42);
    }

    #[test]
    fn memory_read_first_semantics() {
        let mut b = DesignBuilder::new("mem");
        let clk = b.clock("clk");
        let raddr = b.input("raddr", 2);
        let waddr = b.input("waddr", 2);
        let wdata = b.input("wdata", 8);
        let wen = b.input("wen", 1);
        let m = b.memory("m", 4, 8, Some(vec![10, 11, 12, 13]), clk);
        b.connect_mem(m, raddr, waddr, wdata, wen);
        b.output("rdata", m.rdata());
        let d = b.finish().unwrap();
        let mut sim = Simulator::new(&d).unwrap();

        // Read address 2 while writing 99 to address 2 in the same cycle:
        // read-first returns the old contents.
        sim.set_input_by_name("raddr", 2);
        sim.set_input_by_name("waddr", 2);
        sim.set_input_by_name("wdata", 99);
        sim.set_input_by_name("wen", 1);
        sim.step();
        assert_eq!(sim.output("rdata"), 12);
        // Next cycle the write has landed.
        sim.set_input_by_name("wen", 0);
        sim.step();
        assert_eq!(sim.output("rdata"), 99);
    }

    #[test]
    fn register_chain_shifts_one_per_edge() {
        let mut b = DesignBuilder::new("shift");
        let clk = b.clock("clk");
        let x = b.input("x", 4);
        let s1 = b.pipeline_reg("s1", x, 0, clk);
        let s2 = b.pipeline_reg("s2", s1, 0, clk);
        b.output("y", s2);
        let d = b.finish().unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("x", 9);
        sim.step();
        assert_eq!(sim.output("y"), 0); // only s1 captured
        sim.step();
        assert_eq!(sim.output("y"), 9); // now s2
    }

    #[test]
    fn multi_clock_domains_step_independently() {
        let mut b = DesignBuilder::new("dual");
        let fast = b.clock("fast");
        let slow = b.clock("slow");
        let one = b.constant(1, 8);
        let cf = b.register_named("cf", 8, 0, fast);
        let nf = b.add(cf.q(), one);
        b.connect_d(cf, nf);
        let cs = b.register_named("cs", 8, 0, slow);
        let ns = b.add(cs.q(), one);
        b.connect_d(cs, ns);
        b.output("cf", cf.q());
        b.output("cs", cs.q());
        let d = b.finish().unwrap();
        let fast_id = d.find_clock("fast").unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.step_clock(fast_id);
        sim.step_clock(fast_id);
        assert_eq!(sim.output("cf"), 2);
        assert_eq!(sim.output("cs"), 0);
        sim.step(); // both
        assert_eq!(sim.output("cf"), 3);
        assert_eq!(sim.output("cs"), 1);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let d = counter();
        let mut sim = Simulator::new(&d).unwrap();
        sim.step_n(5);
        assert_eq!(sim.output("count"), 5);
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.output("count"), 0);
        sim.step();
        assert_eq!(sim.output("count"), 1);
    }

    #[test]
    #[should_panic(expected = "not a top-level input")]
    fn driving_internal_signal_panics() {
        let d = counter();
        let mut sim = Simulator::new(&d).unwrap();
        let internal = d.find_signal("count").unwrap();
        sim.set_input(internal, 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut b = DesignBuilder::new("t");
        let a = b.input("a", 4);
        b.output("y", a);
        let d = b.finish().unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("a", 16);
    }
}
