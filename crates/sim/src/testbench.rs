//! Testbench abstraction: the stimulus/observation driver shared by
//! functional simulation, software power estimation, and power emulation.

use crate::engine::Simulator;
use pe_rtl::SignalId;
use pe_util::PortError;
use std::collections::HashMap;

/// The control surface a [`Testbench`] drives.
///
/// Both the serial [`Simulator`] and a single lane of the bit-parallel
/// [`crate::wide::WideSimulator`] implement this trait, so the *same*
/// testbench object can stimulate a lone simulation or one lane of a
/// 64-wide pack — the differential-testing contract is that the two are
/// indistinguishable through this interface.
pub trait SimControl {
    /// Number of clock edges stepped so far.
    fn cycle(&self) -> u64;

    /// Drives a top-level input signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not input-driven or `value` does not fit its
    /// width — both are testbench bugs.
    fn set_input(&mut self, signal: SignalId, value: u64);

    /// Drives a top-level input by port name.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if no such input port exists, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError>;

    /// Current value of a named output port.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if no such output port exists.
    fn try_output(&mut self, name: &str) -> Result<u64, PortError>;

    /// Current value of a signal (settling first if needed).
    fn value(&mut self, signal: SignalId) -> u64;

    /// Drives a top-level input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no such input port exists or the value does not fit.
    fn set_input_by_name(&mut self, name: &str, value: u64) {
        self.try_set_input_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Current value of a named output port.
    ///
    /// # Panics
    ///
    /// Panics if no such output port exists.
    fn output(&mut self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The per-lane observation surface a lane-word engine exposes.
///
/// Both [`crate::wide::WideSimulator`] and any drop-in wide engine (the
/// compiled-tape interpreter in `pe-tape`) implement this trait at every
/// [`pe_util::lanes::LaneWord`] width, so lane-indexed readouts —
/// instrumented energy accumulators, waveform strobes, serve-side result
/// gathers — are written once and run on any engine at any width.
pub trait WideControl {
    /// Current value of a named output port in one lane.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if no such output port exists.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= `[`WideControl::lanes`].
    fn try_output_lane(&mut self, name: &str, lane: usize) -> Result<u64, PortError>;

    /// Number of lanes this engine instantiation evaluates per pass.
    fn lanes(&self) -> usize;
}

impl<W: pe_util::lanes::LaneWord> WideControl for crate::wide::WideSimulator<'_, W> {
    fn try_output_lane(&mut self, name: &str, lane: usize) -> Result<u64, PortError> {
        crate::wide::WideSimulator::try_output_lane(self, name, lane)
    }

    fn lanes(&self) -> usize {
        W::LANES
    }
}

impl SimControl for Simulator<'_> {
    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn set_input(&mut self, signal: SignalId, value: u64) {
        Simulator::set_input(self, signal, value);
    }

    fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        Simulator::try_set_input_by_name(self, name, value)
    }

    fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        Simulator::try_output(self, name)
    }

    fn value(&mut self, signal: SignalId) -> u64 {
        Simulator::value(self, signal)
    }
}

/// A testbench drives a design's inputs cycle-by-cycle and may observe
/// outputs. The same testbench object can be replayed against the software
/// estimators and the emulated instrumented design, matching the paper's
/// setup where the *same* test stimuli exercise both flows.
pub trait Testbench {
    /// Total number of clock cycles to run.
    fn cycles(&self) -> u64;

    /// Applies the inputs for `cycle` (0-based, called before the clock
    /// edge of that cycle).
    fn apply(&mut self, cycle: u64, sim: &mut dyn SimControl);

    /// Observes outputs after the settle for `cycle`'s inputs but before
    /// the clock edge. The default does nothing.
    fn observe(&mut self, cycle: u64, sim: &mut dyn SimControl) {
        let _ = (cycle, sim);
    }
}

/// Runs a testbench to completion: for each cycle, applies the inputs,
/// lets the testbench observe the settled network, then steps the clock.
/// Returns the number of cycles executed.
pub fn run(sim: &mut Simulator<'_>, tb: &mut dyn Testbench) -> u64 {
    let cycles = tb.cycles();
    for cycle in 0..cycles {
        tb.apply(cycle, &mut *sim);
        tb.observe(cycle, &mut *sim);
        sim.step();
    }
    cycles
}

/// A testbench that holds every input constant for a fixed number of
/// cycles — useful for letting autonomous designs (FSM-driven) run.
#[derive(Debug, Clone)]
pub struct ConstInputs {
    cycles: u64,
    values: Vec<(SignalId, u64)>,
}

impl ConstInputs {
    /// Creates a constant-input testbench.
    pub fn new(cycles: u64, values: Vec<(SignalId, u64)>) -> Self {
        Self { cycles, values }
    }
}

impl Testbench for ConstInputs {
    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn apply(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        for (sig, v) in &self.values {
            sim.set_input(*sig, *v);
        }
    }
}

/// A testbench replaying explicit per-cycle vectors, keyed by input port
/// name. Missing ports hold their previous value. Optionally records a
/// named output each cycle.
#[derive(Debug, Clone, Default)]
pub struct VectorTestbench {
    vectors: Vec<HashMap<String, u64>>,
    watch: Option<String>,
    captured: Vec<u64>,
}

impl VectorTestbench {
    /// Creates an empty vector testbench.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cycle's input assignments.
    pub fn push_cycle(&mut self, assignments: &[(&str, u64)]) -> &mut Self {
        self.vectors.push(
            assignments
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        );
        self
    }

    /// Watches an output port, capturing its settled value every cycle.
    pub fn watch_output(&mut self, port: &str) -> &mut Self {
        self.watch = Some(port.to_string());
        self
    }

    /// The captured values of the watched output (one per executed cycle).
    pub fn captured(&self) -> &[u64] {
        &self.captured
    }
}

impl Testbench for VectorTestbench {
    fn cycles(&self) -> u64 {
        self.vectors.len() as u64
    }

    fn apply(&mut self, cycle: u64, sim: &mut dyn SimControl) {
        for (name, value) in &self.vectors[cycle as usize] {
            sim.set_input_by_name(name, *value);
        }
    }

    fn observe(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        if let Some(port) = &self.watch {
            let v = sim.output(port);
            self.captured.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::builder::DesignBuilder;
    use pe_rtl::Design;

    fn accumulator() -> Design {
        let mut b = DesignBuilder::new("acc");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let acc = b.register_named("acc", 8, 0, clk);
        let sum = b.add(acc.q(), x);
        b.connect_d(acc, sum);
        b.output("total", acc.q());
        b.finish().unwrap()
    }

    #[test]
    fn vector_testbench_replays_and_captures() {
        let d = accumulator();
        let mut sim = Simulator::new(&d).unwrap();
        let mut tb = VectorTestbench::new();
        tb.push_cycle(&[("x", 1)])
            .push_cycle(&[("x", 2)])
            .push_cycle(&[("x", 3)])
            .push_cycle(&[]) // x holds at 3
            .watch_output("total");
        let n = run(&mut sim, &mut tb);
        assert_eq!(n, 4);
        // total is acc.q *before* each edge: 0, 1, 3, 6
        assert_eq!(tb.captured(), &[0, 1, 3, 6]);
        assert_eq!(sim.output("total"), 9);
    }

    #[test]
    fn const_inputs_run_fixed_cycles() {
        let d = accumulator();
        let x = d.find_input("x").unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        let mut tb = ConstInputs::new(5, vec![(x, 2)]);
        run(&mut sim, &mut tb);
        assert_eq!(sim.output("total"), 10);
        assert_eq!(sim.cycle(), 5);
    }
}
