//! Switching-activity recording.
//!
//! Power at the gate and RT levels is a function of *signal transitions*.
//! [`ActivityRecorder`] samples the simulator once per cycle and maintains,
//! per signal: the per-bit toggle counts and the previous sampled value.
//! This is the software analogue of the snapshot registers inside the
//! paper's hardware power models, and the data source for the
//! activity-database style commercial estimator baseline.

use crate::engine::Simulator;
use pe_rtl::{Design, SignalId};
use pe_util::bits;

/// Per-signal switching activity accumulated over a simulation run.
#[derive(Debug, Clone)]
pub struct ActivityRecorder {
    prev: Vec<u64>,
    toggles: Vec<u64>,
    cycles: u64,
    primed: bool,
}

impl ActivityRecorder {
    /// Creates a recorder for a design's signal space.
    pub fn new(design: &Design) -> Self {
        Self {
            prev: vec![0; design.signals().len()],
            toggles: vec![0; design.signals().len()],
            cycles: 0,
            primed: false,
        }
    }

    /// Samples the settled simulator state. Call once per cycle *before*
    /// the clock edge. The first sample only primes the previous-value
    /// store (no transitions are counted, mirroring hardware whose snapshot
    /// queues need one strobe to fill).
    pub fn sample(&mut self, sim: &mut Simulator<'_>) {
        let values = sim.values();
        if self.primed {
            for (i, (&now, prev)) in values.iter().zip(&mut self.prev).enumerate() {
                let diff = (now ^ *prev).count_ones() as u64;
                self.toggles[i] += diff;
                *prev = now;
            }
            self.cycles += 1;
        } else {
            self.prev.copy_from_slice(values);
            self.primed = true;
        }
    }

    /// Total bit toggles observed on `signal`.
    pub fn toggles(&self, signal: SignalId) -> u64 {
        self.toggles[signal.index()]
    }

    /// Previous sampled value of `signal` (the hardware snapshot register).
    pub fn previous(&self, signal: SignalId) -> u64 {
        self.prev[signal.index()]
    }

    /// Number of transition-counted sample pairs.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Average toggle rate of `signal` in toggles per bit per cycle —
    /// the classic switching-activity factor α.
    pub fn activity_factor(&self, design: &Design, signal: SignalId) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let width = design.signal(signal).width() as u64;
        self.toggles[signal.index()] as f64 / (width * self.cycles) as f64
    }

    /// Sum of toggles across all signals.
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Transition count between the stored previous value and `now`,
    /// restricted to `width` bits — exposed for estimators that interleave
    /// their own sampling.
    pub fn transition_count(&self, signal: SignalId, now: u64, width: u32) -> u32 {
        bits::transition_count(self.prev[signal.index()], now, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::builder::DesignBuilder;

    #[test]
    fn counter_lsb_toggles_every_cycle() {
        let mut b = DesignBuilder::new("counter");
        let clk = b.clock("clk");
        let one = b.constant(1, 8);
        let count = b.register_named("count", 8, 0, clk);
        let next = b.add(count.q(), one);
        b.connect_d(count, next);
        b.output("count", count.q());
        let d = b.finish().unwrap();
        let count_sig = d.find_signal("count").unwrap();

        let mut sim = Simulator::new(&d).unwrap();
        let mut rec = ActivityRecorder::new(&d);
        // 17 samples → 16 transition-counted pairs over counter values 0..16
        for _ in 0..17 {
            rec.sample(&mut sim);
            sim.step();
        }
        assert_eq!(rec.cycles(), 16);
        // Counting 0→16: bit0 toggles every step (16), bit1 every 2 (8), …
        // total = 16 + 8 + 4 + 2 + 1 = 31
        assert_eq!(rec.toggles(count_sig), 31);
        let alpha = rec.activity_factor(&d, count_sig);
        assert!((alpha - 31.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn first_sample_only_primes() {
        let mut b = DesignBuilder::new("t");
        let a = b.input("a", 4);
        b.output("y", a);
        let d = b.finish().unwrap();
        let a_sig = d.find_input("a").unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        let mut rec = ActivityRecorder::new(&d);
        sim.set_input(a_sig, 0xF);
        rec.sample(&mut sim); // prime at 0xF
        assert_eq!(rec.cycles(), 0);
        assert_eq!(rec.toggles(a_sig), 0);
        sim.set_input(a_sig, 0x0);
        rec.sample(&mut sim);
        assert_eq!(rec.toggles(a_sig), 4);
        assert_eq!(rec.cycles(), 1);
    }

    #[test]
    fn transition_count_helper_uses_stored_previous() {
        let mut b = DesignBuilder::new("t");
        let a = b.input("a", 4);
        b.output("y", a);
        let d = b.finish().unwrap();
        let a_sig = d.find_input("a").unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        let mut rec = ActivityRecorder::new(&d);
        sim.set_input(a_sig, 0b1010);
        rec.sample(&mut sim);
        assert_eq!(rec.previous(a_sig), 0b1010);
        assert_eq!(rec.transition_count(a_sig, 0b0101, 4), 4);
        assert_eq!(rec.transition_count(a_sig, 0b1010, 4), 0);
    }
}
