//! Waveform capture with VCD export.
//!
//! A [`Waveform`] samples a selected set of signals every cycle and can
//! serialize the trace in the Value Change Dump format understood by
//! standard waveform viewers (GTKWave et al.). Intended for debugging the
//! benchmark designs and for inspecting the instrumented power signals.

use crate::engine::Simulator;
use pe_rtl::{Design, SignalId};

/// A sampled multi-signal trace.
#[derive(Debug, Clone)]
pub struct Waveform {
    signals: Vec<SignalId>,
    names: Vec<String>,
    widths: Vec<u32>,
    samples: Vec<Vec<u64>>,
}

impl Waveform {
    /// Creates a waveform capturing the given signals.
    pub fn new(design: &Design, signals: &[SignalId]) -> Self {
        Self {
            signals: signals.to_vec(),
            names: signals
                .iter()
                .map(|s| design.signal(*s).name().to_string())
                .collect(),
            widths: signals.iter().map(|s| design.signal(*s).width()).collect(),
            samples: Vec::new(),
        }
    }

    /// Creates a waveform capturing every signal in the design.
    pub fn all_signals(design: &Design) -> Self {
        let ids: Vec<SignalId> = design
            .components()
            .iter()
            .map(|c| c.output())
            .chain(design.inputs().iter().map(|p| p.signal()))
            .collect();
        Self::new(design, &ids)
    }

    /// Samples the settled simulator state (call once per cycle).
    pub fn sample(&mut self, sim: &mut Simulator<'_>) {
        let values = sim.values();
        self.samples
            .push(self.signals.iter().map(|s| values[s.index()]).collect());
    }

    /// Number of samples captured.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The trace of one captured signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal was not captured.
    pub fn trace(&self, signal: SignalId) -> Vec<u64> {
        let idx = self
            .signals
            .iter()
            .position(|s| *s == signal)
            .expect("signal not captured in this waveform");
        self.samples.iter().map(|row| row[idx]).collect()
    }

    fn vcd_id(index: usize) -> String {
        // VCD identifiers: printable ASCII 33..=126, base-94 little-endian.
        let mut n = index;
        let mut id = String::new();
        loop {
            id.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        id
    }

    /// Serializes the trace as a VCD document. `timescale_ns` sets the
    /// declared cycle duration.
    pub fn to_vcd(&self, module: &str, timescale_ns: u32) -> String {
        let mut out = String::new();
        out.push_str("$date reproduction run $end\n");
        out.push_str("$version pe-sim $end\n");
        out.push_str(&format!("$timescale {timescale_ns} ns $end\n"));
        out.push_str(&format!("$scope module {module} $end\n"));
        for (i, (name, width)) in self.names.iter().zip(&self.widths).enumerate() {
            out.push_str(&format!(
                "$var wire {width} {} {name} $end\n",
                Self::vcd_id(i)
            ));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut prev: Vec<Option<u64>> = vec![None; self.signals.len()];
        for (t, row) in self.samples.iter().enumerate() {
            let mut changes = String::new();
            for (i, &v) in row.iter().enumerate() {
                if prev[i] != Some(v) {
                    if self.widths[i] == 1 {
                        changes.push_str(&format!("{v}{}\n", Self::vcd_id(i)));
                    } else {
                        changes.push_str(&format!("b{v:b} {}\n", Self::vcd_id(i)));
                    }
                    prev[i] = Some(v);
                }
            }
            if !changes.is_empty() || t == 0 {
                out.push_str(&format!("#{t}\n"));
                out.push_str(&changes);
            }
        }
        out.push_str(&format!("#{}\n", self.samples.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::builder::DesignBuilder;

    fn counter_design() -> pe_rtl::Design {
        let mut b = DesignBuilder::new("counter");
        let clk = b.clock("clk");
        let one = b.constant(1, 4);
        let count = b.register_named("count", 4, 0, clk);
        let next = b.add(count.q(), one);
        b.connect_d(count, next);
        b.output("count", count.q());
        b.finish().unwrap()
    }

    #[test]
    fn trace_captures_counter_sequence() {
        let d = counter_design();
        let count = d.find_signal("count").unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        let mut wf = Waveform::new(&d, &[count]);
        for _ in 0..4 {
            wf.sample(&mut sim);
            sim.step();
        }
        assert_eq!(wf.len(), 4);
        assert_eq!(wf.trace(count), vec![0, 1, 2, 3]);
    }

    #[test]
    fn vcd_contains_declarations_and_changes() {
        let d = counter_design();
        let count = d.find_signal("count").unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        let mut wf = Waveform::new(&d, &[count]);
        for _ in 0..3 {
            wf.sample(&mut sim);
            sim.step();
        }
        let vcd = wf.to_vcd("counter", 10);
        assert!(vcd.contains("$var wire 4 ! count $end"));
        assert!(vcd.contains("$timescale 10 ns $end"));
        assert!(vcd.contains("b1 !"));
        assert!(vcd.contains("b10 !"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#2"));
    }

    #[test]
    fn vcd_ids_are_unique_for_many_signals() {
        let ids: Vec<String> = (0..200).map(Waveform::vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn all_signals_capture() {
        let d = counter_design();
        let mut sim = Simulator::new(&d).unwrap();
        let mut wf = Waveform::all_signals(&d);
        wf.sample(&mut sim);
        assert!(!wf.is_empty());
    }
}
