//! Bit-parallel lane-word gate simulation with per-lane energy accounting.
//!
//! [`WideGateSimulator`] runs `W::LANES` independent gate-level
//! simulations at once: every net holds one [`LaneWord`] whose lane `l`
//! is the net's value in lane `l`, and each gate evaluates as a single
//! word op (an AND2 serves `W::LANES` simulations per op — 64 for `u64`,
//! 128/256 for the `[u64; N]` words LLVM autovectorizes to SIMD). Energy
//! is accounted **per lane** with the identical floating-point
//! accumulation order as [`crate::GateSimulator`] — gate toggles in
//! gate-index order, then flip-flop clock/toggle energies, then memory
//! access energies, then leakage, then the cycle total folded into the
//! running total — so each lane's
//! [`WideGateSimulator::total_energy_fj_lane`] is *bit-identical* to the
//! total a fresh serial simulator would report for that lane's stimulus,
//! at every width. The width-sweep differential suite relies on this
//! exactness.

use crate::cells::CellLibrary;
use crate::expand::ExpandedDesign;
use crate::netlist::{GateKind, NetId};
use crate::sim::levelize;
use pe_util::lanes::LaneWord;
use pe_util::PortError;

/// Pending memory commit for one RAM: the read-out lanes plus, when any
/// lane wrote, the per-lane write address/data and the write-enable mask.
type MemUpdate<W> = (Vec<u64>, Option<(Vec<u64>, Vec<u64>, W)>);

/// A zero-delay, lane-word-parallel gate-level simulator.
///
/// Mirrors [`crate::GateSimulator`] lane-for-lane; see the module docs for
/// the energy-exactness contract. Inputs are driven per lane with
/// [`WideGateSimulator::set_input_lane`] and outputs read with
/// [`WideGateSimulator::output_lane`].
#[derive(Debug)]
pub struct WideGateSimulator<'a, W: LaneWord = u64> {
    expanded: &'a ExpandedDesign,
    lib: &'a CellLibrary,
    values: Vec<W>,
    prev_settled: Vec<W>,
    order: Vec<u32>,
    /// Per-memory backing store, `state[word * W::LANES + lane]`.
    mem_state: Vec<Vec<u64>>,
    lane_cycle_fj: Vec<f64>,
    lane_total_fj: Vec<f64>,
    leakage_fj_per_cycle: f64,
    period_ns: f64,
    cycle: u64,
    dirty: bool,
}

impl<'a, W: LaneWord> WideGateSimulator<'a, W> {
    /// Creates a lane-word simulator with the default 10 ns clock period.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's combinational gates are cyclic (cannot
    /// happen for netlists produced by [`crate::expand::expand_design`]
    /// from a validated design).
    pub fn new(expanded: &'a ExpandedDesign, lib: &'a CellLibrary) -> Self {
        Self::with_period(expanded, lib, 10.0)
    }

    /// Creates a lane-word simulator with an explicit clock period in
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// See [`WideGateSimulator::new`].
    pub fn with_period(expanded: &'a ExpandedDesign, lib: &'a CellLibrary, period_ns: f64) -> Self {
        let nl = &expanded.netlist;
        let order = levelize(nl);

        let mut leak_nw = 0.0;
        for g in nl.gates() {
            leak_nw += lib.gate(g.kind).leakage_nw;
        }
        leak_nw += lib.dff().leakage_nw * nl.dffs().len() as f64;
        for m in nl.mems() {
            leak_nw += lib.mem_leakage_nw(m.words, m.wdata.len() as u32);
        }
        let leakage_fj_per_cycle = leak_nw * period_ns * 1e-3;

        let mut values = vec![W::zero(); nl.net_count()];
        let mut mem_state = Vec::with_capacity(nl.mems().len());
        for dff in nl.dffs() {
            values[dff.q.index()] = W::splat(dff.init);
        }
        for m in nl.mems() {
            let mut state = vec![0u64; m.words as usize * W::LANES];
            for (w, &v) in m.init.iter().enumerate() {
                state[w * W::LANES..(w + 1) * W::LANES].fill(v);
            }
            mem_state.push(state);
        }

        let mut sim = Self {
            expanded,
            lib,
            values,
            prev_settled: Vec::new(),
            order,
            mem_state,
            lane_cycle_fj: vec![0.0; W::LANES],
            lane_total_fj: vec![0.0; W::LANES],
            leakage_fj_per_cycle,
            period_ns,
            cycle: 0,
            dirty: true,
        };
        sim.settle();
        sim.prev_settled = sim.values.clone();
        sim
    }

    /// The clock period used for leakage integration (nanoseconds).
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Number of clock edges stepped (shared by all lanes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of lanes this instantiation evaluates per pass.
    pub fn lanes(&self) -> usize {
        W::LANES
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        let gates = self.expanded.netlist.gates();
        for &gi in &self.order {
            let g = &gates[gi as usize];
            let a = self.values[g.inputs[0].index()];
            let b = self.values[g.inputs[1].index()];
            let c = self.values[g.inputs[2].index()];
            self.values[g.output.index()] = match g.kind {
                GateKind::Tie0 => W::zero(),
                GateKind::Tie1 => W::ones(),
                GateKind::Buf => a,
                GateKind::Inv => a.not(),
                GateKind::And2 => a.and(b),
                GateKind::Or2 => a.or(b),
                GateKind::Nand2 => a.and(b).not(),
                GateKind::Nor2 => a.or(b).not(),
                GateKind::Xor2 => a.xor(b),
                GateKind::Xnor2 => a.xor(b).not(),
                GateKind::Mux2 => W::blend(a, c, b),
            };
        }
        self.dirty = false;
    }

    /// Drives an input bus in one lane.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if the port does not exist, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn try_set_input_lane(
        &mut self,
        name: &str,
        lane: usize,
        value: u64,
    ) -> Result<(), PortError> {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        let nets = self
            .expanded
            .netlist
            .inputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?;
        if nets.len() < 64 && value >= (1u64 << nets.len()) {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: nets.len() as u32,
            });
        }
        for (i, net) in nets.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            let cur = self.values[net.index()];
            let mut new = cur;
            new.set_lane(lane, bit);
            if new != cur {
                self.values[net.index()] = new;
                self.dirty = true;
            }
        }
        Ok(())
    }

    /// Drives an input bus in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist, the value does not fit, or
    /// `lane >= W::LANES`.
    pub fn set_input_lane(&mut self, name: &str, lane: usize, value: u64) {
        self.try_set_input_lane(name, lane, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Reads an output bus in one lane (settling first).
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if the port does not exist.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn try_output_lane(&mut self, name: &str, lane: usize) -> Result<u64, PortError> {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        self.settle();
        let nets = self
            .expanded
            .netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        Ok(nets
            .iter()
            .enumerate()
            .map(|(i, net)| (self.values[net.index()].lane(lane) as u64) << i)
            .sum())
    }

    /// Reads an output bus in one lane (settling first).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `lane >= W::LANES`.
    pub fn output_lane(&mut self, name: &str, lane: usize) -> u64 {
        self.try_output_lane(name, lane)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unpacks a bus of nets into per-lane scalar values (`lanes.len()`
    /// must be `W::LANES`).
    fn bus_lanes(&self, nets: &[NetId], lanes: &mut [u64]) {
        let mut tmp = [W::zero(); 64];
        for (i, n) in nets.iter().enumerate() {
            tmp[i] = self.values[n.index()];
        }
        pe_util::lanes::unpack::<W>(&tmp[..nets.len()], lanes);
    }

    /// Advances one clock edge on all domains in every lane, accounting
    /// each lane's energy in the serial simulator's exact order.
    pub fn step(&mut self) {
        self.settle();
        self.lane_cycle_fj.fill(0.0);

        // 1. Toggle energy of combinational gates vs the previous settled
        //    state, in gate-index order (the serial credit order).
        let gates = self.expanded.netlist.gates();
        for g in gates.iter() {
            let net = g.output.index();
            let toggled = self.values[net].xor(self.prev_settled[net]);
            if toggled.is_zero() {
                continue;
            }
            let e = self.lib.gate(g.kind).toggle_energy_fj;
            toggled.for_each_lane(|l| {
                self.lane_cycle_fj[l] += e;
            });
        }

        // 2. Sequential capture with flip-flop/memory energies.
        let dffs = self.expanded.netlist.dffs();
        let dff_spec = self.lib.dff();
        let dff_clk = self.lib.dff_clock_energy_fj();
        let mut new_q = Vec::with_capacity(dffs.len());
        for dff in dffs.iter() {
            let d = self.values[dff.d.index()];
            let q = self.values[dff.q.index()];
            for e in self.lane_cycle_fj.iter_mut() {
                *e += dff_clk;
            }
            d.xor(q).for_each_lane(|l| {
                self.lane_cycle_fj[l] += dff_spec.toggle_energy_fj;
            });
            new_q.push(d);
        }
        let mems = self.expanded.netlist.mems();
        let mut mem_updates: Vec<MemUpdate<W>> = Vec::with_capacity(mems.len());
        for (mi, mem) in mems.iter().enumerate() {
            let width = mem.wdata.len() as u32;
            let read_e = self.lib.mem_read_energy_fj(width);
            let write_e = self.lib.mem_write_energy_fj(width);
            let mut raddr = vec![0u64; W::LANES];
            self.bus_lanes(&mem.raddr, &mut raddr);
            let state = &self.mem_state[mi];
            let words = mem.words as usize;
            let mut read = vec![0u64; W::LANES];
            for (l, r) in read.iter_mut().enumerate() {
                *r = state[(raddr[l] as usize % words) * W::LANES + l];
            }
            let wen = self.values[mem.wen.index()];
            for (l, e) in self.lane_cycle_fj.iter_mut().enumerate() {
                *e += read_e;
                if wen.lane(l) {
                    *e += write_e;
                }
            }
            let write = if !wen.is_zero() {
                let mut waddr = vec![0u64; W::LANES];
                let mut wdata = vec![0u64; W::LANES];
                self.bus_lanes(&mem.waddr, &mut waddr);
                self.bus_lanes(&mem.wdata, &mut wdata);
                Some((waddr, wdata, wen))
            } else {
                None
            };
            mem_updates.push((read, write));
        }

        // 3. Leakage for the cycle, in every lane.
        for e in self.lane_cycle_fj.iter_mut() {
            *e += self.leakage_fj_per_cycle;
        }

        // 4. Commit sequential updates, then snapshot (same ordering
        //    argument as the serial engine: q/rdata nets have no driving
        //    gate, so the post-commit snapshot is safe).
        for (dff, q) in dffs.iter().zip(new_q) {
            self.values[dff.q.index()] = q;
        }
        for (mi, (mem, (read, write))) in mems.iter().zip(mem_updates).enumerate() {
            for (i, net) in mem.rdata.iter().enumerate() {
                let mut slice = W::zero();
                for (l, r) in read.iter().enumerate() {
                    slice.set_lane(l, (r >> i) & 1 == 1);
                }
                self.values[net.index()] = slice;
            }
            if let Some((waddr, wdata, wen)) = write {
                let words = mem.words as usize;
                let state = &mut self.mem_state[mi];
                wen.for_each_lane(|l| {
                    state[(waddr[l] as usize % words) * W::LANES + l] = wdata[l];
                });
            }
        }
        self.prev_settled.copy_from_slice(&self.values);
        self.dirty = true;
        self.cycle += 1;
        for (t, c) in self.lane_total_fj.iter_mut().zip(&self.lane_cycle_fj) {
            *t += *c;
        }
    }

    /// Energy of the most recently completed cycle in one lane
    /// (femtojoules).
    pub fn last_cycle_energy_fj_lane(&self, lane: usize) -> f64 {
        self.lane_cycle_fj[lane]
    }

    /// Total energy since construction in one lane (femtojoules),
    /// bit-identical to a serial [`crate::GateSimulator`] run of that
    /// lane's stimulus.
    pub fn total_energy_fj_lane(&self, lane: usize) -> f64 {
        self.lane_total_fj[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand_design;
    use crate::GateSimulator;
    use pe_rtl::builder::DesignBuilder;
    use pe_util::rng::Xoshiro;

    fn every_lane_matches_serial<W: LaneWord>() {
        let mut b = DesignBuilder::new("acc");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let acc = b.register_named("acc", 8, 0, clk);
        let sum = b.add(acc.q(), x);
        b.connect_d(acc, sum);
        b.output("total", acc.q());
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = CellLibrary::cmos130();

        let mut wide = WideGateSimulator::<W>::new(&ex, &lib);
        let mut serials: Vec<GateSimulator<'_>> = (0..W::LANES)
            .map(|_| GateSimulator::new(&ex, &lib))
            .collect();
        let mut rng = Xoshiro::new(0xAAA);
        for _ in 0..40 {
            for (lane, serial) in serials.iter_mut().enumerate() {
                let v = rng.bits(8);
                wide.set_input_lane("x", lane, v);
                serial.try_set_input("x", v).unwrap();
            }
            wide.step();
            for s in &mut serials {
                s.step();
            }
        }
        for (lane, serial) in serials.iter_mut().enumerate() {
            assert_eq!(
                wide.output_lane("total", lane),
                serial.try_output("total").unwrap(),
                "lanes {} lane {lane} output",
                W::LANES
            );
            let wide_e = wide.total_energy_fj_lane(lane);
            let serial_e = serial.total_energy_fj();
            assert_eq!(
                wide_e.to_bits(),
                serial_e.to_bits(),
                "lanes {} lane {lane} energy: wide {wide_e} vs serial {serial_e}",
                W::LANES
            );
        }
    }

    #[test]
    fn every_lane_matches_a_serial_run_bit_for_bit() {
        every_lane_matches_serial::<bool>();
        every_lane_matches_serial::<u64>();
        every_lane_matches_serial::<[u64; 2]>();
        every_lane_matches_serial::<[u64; 4]>();
    }

    #[test]
    fn memory_lanes_track_serial_state() {
        let mut b = DesignBuilder::new("mem");
        let clk = b.clock("clk");
        let ra = b.input("ra", 3);
        let wa = b.input("wa", 3);
        let wd = b.input("wd", 8);
        let we = b.input("we", 1);
        let m = b.memory("m", 8, 8, Some(vec![9, 8, 7, 6, 5, 4, 3, 2]), clk);
        b.connect_mem(m, ra, wa, wd, we);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = CellLibrary::cmos130();

        let mut wide = WideGateSimulator::<[u64; 2]>::new(&ex, &lib);
        const N: usize = 128;
        let mut serials: Vec<GateSimulator<'_>> =
            (0..N).map(|_| GateSimulator::new(&ex, &lib)).collect();
        let mut rng = Xoshiro::new(0xBBB);
        for _ in 0..60 {
            for (lane, serial) in serials.iter_mut().enumerate() {
                for (p, w) in [("ra", 3), ("wa", 3), ("wd", 8), ("we", 1)] {
                    let v = rng.bits(w);
                    wide.set_input_lane(p, lane, v);
                    serial.try_set_input(p, v).unwrap();
                }
            }
            wide.step();
            for s in &mut serials {
                s.step();
            }
            for lane in [0, 7, 63, 127] {
                assert_eq!(
                    wide.output_lane("rd", lane),
                    serials[lane].try_output("rd").unwrap(),
                    "lane {lane}"
                );
            }
        }
        for (lane, serial) in serials.iter().enumerate() {
            assert_eq!(
                wide.total_energy_fj_lane(lane).to_bits(),
                serial.total_energy_fj().to_bits(),
                "lane {lane} energy"
            );
        }
    }
}
