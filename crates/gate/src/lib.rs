//! Gate-level substrate: technology cells, RTL-to-gate expansion, and
//! gate-level simulation with switched-energy accounting.
//!
//! The paper's macromodels are *characterization-based*: coefficients come
//! from observing the gate- or transistor-level implementation of each RTL
//! component (the original used NEC's CB130M 0.13 µm standard-cell
//! technology). We reproduce that pipeline end to end:
//!
//! * [`cells::CellLibrary`] — a synthetic 0.13 µm-class standard-cell
//!   library with per-toggle switching energies and leakage (documented in
//!   DESIGN.md as the CB130M substitution).
//! * [`netlist::GateNetlist`] — a flat netlist of 1-bit nets, two-input
//!   gates, D flip-flops, and SRAM macro blocks.
//! * [`expand`] — structural expansion of every
//!   [`pe_rtl::ComponentKind`] into gates (ripple-carry adders, array
//!   multipliers, barrel shifters, mux trees with constant folding, …),
//!   keeping a component→gates ownership map so energy can be attributed
//!   back to RTL components.
//! * [`GateSimulator`] — event-free levelized simulation that tracks
//!   per-cycle switched energy; this is the reference ("ground truth")
//!   power that macromodels are regressed against, and also the engine of
//!   the slow gate-level estimator baseline.
//!
//! # Example
//!
//! ```
//! use pe_rtl::builder::DesignBuilder;
//! use pe_gate::{expand::expand_design, cells::CellLibrary, GateSimulator};
//!
//! let mut b = DesignBuilder::new("adder");
//! let a = b.input("a", 8);
//! let c = b.input("b", 8);
//! let s = b.add_wide(a, c);
//! b.output("sum", s);
//! let design = b.finish().unwrap();
//!
//! let expanded = expand_design(&design);
//! let lib = CellLibrary::cmos130();
//! let mut sim = GateSimulator::new(&expanded, &lib);
//! sim.try_set_input("a", 100).unwrap();
//! sim.try_set_input("b", 55).unwrap();
//! assert_eq!(sim.try_output("sum").unwrap(), 155);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod expand;
pub mod netlist;
mod sim;
pub mod wide;

pub use sim::GateSimulator;
pub use wide::WideGateSimulator;
