//! The synthetic 0.13 µm-class standard-cell library.
//!
//! This is the workspace's substitution for the NEC CB130M technology the
//! paper characterized against: per-cell dynamic energy per output toggle,
//! leakage power, and area. The absolute values are representative of a
//! 0.13 µm, 1.2 V standard-cell process (gate switching energies of a few
//! femtojoules, leakage of fractions of a nanowatt); what matters for the
//! reproduction is that they are *fixed and consistent*, so macromodel
//! characterization, software estimation, and emulated estimation all grade
//! against the same ground truth.

use crate::netlist::GateKind;

/// Electrical characterization of one cell kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Dynamic energy per output toggle, in femtojoules.
    pub toggle_energy_fj: f64,
    /// Static leakage power, in nanowatts.
    pub leakage_nw: f64,
    /// Cell area in square micrometres (used in area reports).
    pub area_um2: f64,
}

/// A standard-cell library: one [`CellSpec`] per [`GateKind`], plus the
/// sequential and macro cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: String,
    /// Supply voltage in volts (documentation; energies are absolute).
    vdd: f64,
    combinational: [CellSpec; GateKind::COUNT],
    /// Flip-flop: `toggle_energy_fj` applies to `q` toggles.
    dff: CellSpec,
    /// Extra energy drawn by a flip-flop's clock pin every cycle,
    /// regardless of data activity (femtojoules).
    dff_clock_energy_fj: f64,
    /// SRAM macro: energy per read access per bit (femtojoules).
    mem_read_energy_fj_per_bit: f64,
    /// SRAM macro: energy per write access per bit (femtojoules).
    mem_write_energy_fj_per_bit: f64,
    /// SRAM macro: leakage per stored bit (nanowatts).
    mem_leakage_nw_per_bit: f64,
}

impl CellLibrary {
    /// The workspace's reference 0.13 µm / 1.2 V library.
    pub fn cmos130() -> Self {
        use GateKind::*;
        let mut combinational = [CellSpec {
            toggle_energy_fj: 0.0,
            leakage_nw: 0.0,
            area_um2: 0.0,
        }; GateKind::COUNT];
        let mut set = |k: GateKind, e: f64, l: f64, a: f64| {
            combinational[k as usize] = CellSpec {
                toggle_energy_fj: e,
                leakage_nw: l,
                area_um2: a,
            };
        };
        set(Tie0, 0.0, 0.02, 1.0);
        set(Tie1, 0.0, 0.02, 1.0);
        set(Buf, 2.0, 0.25, 3.2);
        set(Inv, 1.4, 0.20, 2.4);
        set(And2, 3.0, 0.35, 4.0);
        set(Or2, 3.1, 0.35, 4.0);
        set(Nand2, 2.4, 0.30, 3.2);
        set(Nor2, 2.5, 0.30, 3.2);
        set(Xor2, 4.6, 0.55, 6.4);
        set(Xnor2, 4.7, 0.55, 6.4);
        set(Mux2, 4.2, 0.50, 5.6);
        Self {
            name: "cmos130".into(),
            vdd: 1.2,
            combinational,
            dff: CellSpec {
                toggle_energy_fj: 8.5,
                leakage_nw: 0.9,
                area_um2: 14.0,
            },
            dff_clock_energy_fj: 1.1,
            mem_read_energy_fj_per_bit: 0.9,
            mem_write_energy_fj_per_bit: 1.2,
            mem_leakage_nw_per_bit: 0.015,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage (volts).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Spec of a combinational gate kind.
    pub fn gate(&self, kind: GateKind) -> CellSpec {
        self.combinational[kind as usize]
    }

    /// Spec of the D flip-flop.
    pub fn dff(&self) -> CellSpec {
        self.dff
    }

    /// Per-cycle clock-pin energy of one flip-flop (femtojoules).
    pub fn dff_clock_energy_fj(&self) -> f64 {
        self.dff_clock_energy_fj
    }

    /// SRAM read energy for an access of `width` bits (femtojoules).
    pub fn mem_read_energy_fj(&self, width: u32) -> f64 {
        self.mem_read_energy_fj_per_bit * width as f64
    }

    /// SRAM write energy for an access of `width` bits (femtojoules).
    pub fn mem_write_energy_fj(&self, width: u32) -> f64 {
        self.mem_write_energy_fj_per_bit * width as f64
    }

    /// SRAM leakage for a macro of `words × width` bits (nanowatts).
    pub fn mem_leakage_nw(&self, words: u32, width: u32) -> f64 {
        self.mem_leakage_nw_per_bit * words as f64 * width as f64
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::cmos130()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_library_is_populated() {
        let lib = CellLibrary::cmos130();
        assert_eq!(lib.name(), "cmos130");
        assert_eq!(lib.vdd(), 1.2);
        // Every real gate has positive switching energy; ties do not switch.
        for kind in GateKind::ALL {
            let spec = lib.gate(kind);
            if matches!(kind, GateKind::Tie0 | GateKind::Tie1) {
                assert_eq!(spec.toggle_energy_fj, 0.0);
            } else {
                assert!(spec.toggle_energy_fj > 0.0, "{kind:?}");
                assert!(spec.area_um2 > 0.0, "{kind:?}");
            }
        }
    }

    #[test]
    fn complex_gates_cost_more_than_inverters() {
        let lib = CellLibrary::cmos130();
        assert!(
            lib.gate(GateKind::Xor2).toggle_energy_fj > lib.gate(GateKind::Inv).toggle_energy_fj
        );
        assert!(lib.dff().toggle_energy_fj > lib.gate(GateKind::Mux2).toggle_energy_fj);
    }

    #[test]
    fn memory_energy_scales_with_width() {
        let lib = CellLibrary::cmos130();
        assert_eq!(lib.mem_read_energy_fj(16), 2.0 * lib.mem_read_energy_fj(8));
        assert!(lib.mem_write_energy_fj(8) > lib.mem_read_energy_fj(8));
        assert!(lib.mem_leakage_nw(1024, 8) > lib.mem_leakage_nw(16, 8));
    }

    #[test]
    fn default_is_cmos130() {
        assert_eq!(CellLibrary::default(), CellLibrary::cmos130());
    }
}
