//! Structural expansion of RTL components into standard cells.
//!
//! Every [`pe_rtl::ComponentKind`] has a gate-level implementation here:
//! ripple-carry adders and subtractors, shift-add array multipliers,
//! borrow-chain comparators, barrel shifters, multiplexer trees with
//! constant folding (which is also how lookup tables / ROMs are realized),
//! flip-flop registers with enable muxes, and SRAM macros for memories.
//!
//! The expansion keeps two maps that the rest of the workspace depends on:
//!
//! * *signal nets*: each RTL signal's bit-nets, so stimuli and outputs can
//!   be applied/read at the gate level and compared bit-exactly against the
//!   RTL simulator;
//! * *component cells*: which gates/flip-flops/macros each RTL component
//!   expanded into, so switched energy can be attributed back to the RTL
//!   component — the foundation of macromodel characterization.

use crate::netlist::{Dff, Gate, GateKind, GateNetlist, MacroMem, NetId};
use pe_rtl::{ComponentKind, Design, SignalId};
use pe_util::bits;

/// Cells owned by one RTL component (indices into the netlist's vectors).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompCells {
    /// Gate indices.
    pub gates: Vec<u32>,
    /// Flip-flop indices.
    pub dffs: Vec<u32>,
    /// SRAM macro indices.
    pub mems: Vec<u32>,
}

/// The result of expanding a design: the netlist plus the RTL↔gate maps.
#[derive(Debug, Clone)]
pub struct ExpandedDesign {
    /// The flat gate netlist.
    pub netlist: GateNetlist,
    signal_nets: Vec<Vec<NetId>>,
    comp_cells: Vec<CompCells>,
}

impl ExpandedDesign {
    /// The bit-nets of an RTL signal, LSB first.
    pub fn signal_nets(&self, signal: SignalId) -> &[NetId] {
        &self.signal_nets[signal.index()]
    }

    /// The cells owned by RTL component `index` (by
    /// [`pe_rtl::ComponentId::index`]).
    pub fn component_cells(&self, index: usize) -> &CompCells {
        &self.comp_cells[index]
    }

    /// Number of RTL components in the source design.
    pub fn component_count(&self) -> usize {
        self.comp_cells.len()
    }
}

struct Emitter {
    netlist: GateNetlist,
    comp_cells: Vec<CompCells>,
    owner: Option<usize>,
    tie0: NetId,
    tie1: NetId,
}

impl Emitter {
    fn new(name: &str, components: usize) -> Self {
        let mut netlist = GateNetlist::new(name);
        let tie0 = netlist.fresh_net();
        let tie1 = netlist.fresh_net();
        netlist.push_gate(Gate {
            kind: GateKind::Tie0,
            inputs: [tie0; 3],
            output: tie0,
        });
        netlist.push_gate(Gate {
            kind: GateKind::Tie1,
            inputs: [tie0; 3],
            output: tie1,
        });
        Self {
            netlist,
            comp_cells: vec![CompCells::default(); components],
            owner: None,
            tie0,
            tie1,
        }
    }

    fn gate(&mut self, kind: GateKind, a: NetId, b: NetId, c: NetId) -> NetId {
        let out = self.netlist.fresh_net();
        let idx = self.netlist.push_gate(Gate {
            kind,
            inputs: [a, b, c],
            output: out,
        });
        if let Some(owner) = self.owner {
            self.comp_cells[owner].gates.push(idx as u32);
        }
        out
    }

    fn inv(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Inv, a, self.tie0, self.tie0)
    }

    fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And2, a, b, self.tie0)
    }

    fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or2, a, b, self.tie0)
    }

    fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor2, a, b, self.tie0)
    }

    fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xnor2, a, b, self.tie0)
    }

    fn mux2(&mut self, sel: NetId, d0: NetId, d1: NetId) -> NetId {
        if d0 == d1 {
            return d0; // constant-fold equal branches (ROM minimization)
        }
        self.gate(GateKind::Mux2, sel, d0, d1)
    }

    fn const_net(&mut self, bit: bool) -> NetId {
        if bit {
            self.tie1
        } else {
            self.tie0
        }
    }

    fn const_bits(&mut self, value: u64, width: u32) -> Vec<NetId> {
        (0..width)
            .map(|i| self.const_net(bits::bit(value, i) == 1))
            .collect()
    }

    /// Balanced reduction tree over `nets` with a 2-input gate.
    fn reduce(&mut self, kind: GateKind, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty());
        let mut cur = nets.to_vec();
        while cur.len() > 1 {
            let mut next = Vec::with_capacity(cur.len().div_ceil(2));
            for pair in cur.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, pair[0], pair[1], self.tie0));
                } else {
                    next.push(pair[0]);
                }
            }
            cur = next;
        }
        cur[0]
    }

    /// Full adder: returns `(sum, carry_out)`.
    fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let t1 = self.and2(a, b);
        let t2 = self.and2(axb, cin);
        let cout = self.or2(t1, t2);
        (sum, cout)
    }

    /// Ripple-carry addition of two equal-width vectors with carry-in,
    /// producing `out_width ≥ width` bits (the first extra bit is the
    /// carry; further bits are zero).
    fn ripple_add(&mut self, a: &[NetId], b: &[NetId], cin: NetId, out_width: u32) -> Vec<NetId> {
        let w = a.len();
        assert_eq!(w, b.len());
        let mut out = Vec::with_capacity(out_width as usize);
        let mut carry = cin;
        for i in 0..out_width as usize {
            if i < w {
                let (s, c) = self.full_adder(a[i], b[i], carry);
                out.push(s);
                carry = c;
            } else if i == w {
                out.push(carry);
            } else {
                out.push(self.tie0);
            }
        }
        out
    }

    /// Unsigned `a < b` via a borrow chain.
    fn less_than(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len());
        let mut borrow = self.tie0;
        for i in 0..a.len() {
            let na = self.inv(a[i]);
            let gt_bit = self.and2(na, b[i]);
            let eq_bit = self.xnor2(a[i], b[i]);
            let keep = self.and2(eq_bit, borrow);
            borrow = self.or2(gt_bit, keep);
        }
        borrow
    }

    /// Flips the MSB of a vector (maps signed compare onto unsigned).
    fn bias_signed(&mut self, a: &[NetId]) -> Vec<NetId> {
        let mut v = a.to_vec();
        let last = v.len() - 1;
        v[last] = self.inv(v[last]);
        v
    }

    /// Multiplexer tree over `data` (each a bit-vector) addressed by
    /// `sel` nets; out-of-range selects resolve to the last entry —
    /// matching the RTL `Mux` clamp semantics.
    fn mux_tree(&mut self, sel: &[NetId], data: &[Vec<NetId>]) -> Vec<NetId> {
        let n = data.len();
        assert!(n >= 1);
        let width = data[0].len();
        let k = bits::clog2(n as u64) as usize;
        let padded: Vec<&Vec<NetId>> = (0..1usize << k)
            .map(|i| data.get(i).unwrap_or(&data[n - 1]))
            .collect();
        let mut out = Vec::with_capacity(width);
        for bit in 0..width {
            let mut level: Vec<NetId> = padded.iter().map(|v| v[bit]).collect();
            for (s, sel_net) in sel.iter().take(k).enumerate() {
                let _ = s;
                let mut next = Vec::with_capacity(level.len() / 2);
                for pair in level.chunks(2) {
                    next.push(self.mux2(*sel_net, pair[0], pair[1]));
                }
                level = next;
            }
            out.push(level[0]);
        }
        // High select bits beyond the tree force the last entry.
        if sel.len() > k {
            let ovf = self.reduce(GateKind::Or2, &sel[k..]);
            let last = &data[n - 1].clone();
            for (bit, o) in out.iter_mut().enumerate() {
                *o = self.mux2(ovf, *o, last[bit]);
            }
        }
        out
    }

    /// Barrel shifter. `dir_left` picks shift direction; `fill` supplies
    /// shifted-in bits (for SAR pass the *current* MSB each stage).
    fn barrel_shift(
        &mut self,
        data: &[NetId],
        amount: &[NetId],
        dir_left: bool,
        arithmetic: bool,
    ) -> Vec<NetId> {
        let w = data.len();
        let mut cur = data.to_vec();
        let max_stage = (0..).take_while(|s| (1usize << s) < w).count().max(1);
        for (s, amt_net) in amount.iter().take(max_stage).enumerate() {
            let dist = 1usize << s;
            let fill = if arithmetic { cur[w - 1] } else { self.tie0 };
            let shifted: Vec<NetId> = (0..w)
                .map(|i| {
                    if dir_left {
                        if i >= dist {
                            cur[i - dist]
                        } else {
                            self.tie0
                        }
                    } else if i + dist < w {
                        cur[i + dist]
                    } else {
                        fill
                    }
                })
                .collect();
            for i in 0..w {
                cur[i] = self.mux2(*amt_net, cur[i], shifted[i]);
            }
        }
        // Amount bits beyond max_stage force a full shift-out.
        if amount.len() > max_stage {
            let ovf = self.reduce(GateKind::Or2, &amount[max_stage..]);
            let fill = if arithmetic { cur[w - 1] } else { self.tie0 };
            for bit in cur.iter_mut() {
                *bit = self.mux2(ovf, *bit, fill);
            }
        }
        cur
    }

    /// Shift-add array multiplier producing the low `out_width` bits.
    fn multiply(&mut self, a: &[NetId], b: &[NetId], out_width: u32) -> Vec<NetId> {
        let ow = out_width as usize;
        let mut acc: Vec<NetId> = (0..ow)
            .map(|i| {
                if i < a.len() {
                    self.and2(a[i], b[0])
                } else {
                    self.tie0
                }
            })
            .collect();
        for (j, bj) in b.iter().enumerate().skip(1) {
            if j >= ow {
                break;
            }
            let addend: Vec<NetId> = (0..ow)
                .map(|i| {
                    if i >= j && i - j < a.len() {
                        self.and2(a[i - j], *bj)
                    } else {
                        self.tie0
                    }
                })
                .collect();
            acc = self.ripple_add(&acc, &addend, self.tie0, out_width);
        }
        acc
    }
}

/// Expands a validated design into a gate-level netlist.
///
/// # Panics
///
/// Panics if the design fails validation — expansion is only defined for
/// well-formed designs.
pub fn expand_design(design: &Design) -> ExpandedDesign {
    design.validate().expect("expand requires a valid design");
    let order = pe_rtl::topo_order(design).expect("validated design");
    let mut em = Emitter::new(design.name(), design.components().len());
    let mut signal_nets: Vec<Option<Vec<NetId>>> = vec![None; design.signals().len()];

    // 1. Input ports drive fresh nets.
    for port in design.inputs() {
        let width = design.signal(port.signal()).width();
        let nets: Vec<NetId> = (0..width).map(|_| em.netlist.fresh_net()).collect();
        em.netlist.push_input(port.name().to_string(), nets.clone());
        signal_nets[port.signal().index()] = Some(nets);
    }

    // 2. Sequential outputs are sources: pre-create their nets.
    for comp in design.components() {
        if comp.kind().is_sequential() {
            let width = design.signal(comp.output()).width();
            let nets: Vec<NetId> = (0..width).map(|_| em.netlist.fresh_net()).collect();
            signal_nets[comp.output().index()] = Some(nets);
        }
    }

    // 3. Combinational components in topological order.
    for id in order {
        let comp = design.component(id);
        em.owner = Some(id.index());
        let ins: Vec<Vec<NetId>> = comp
            .inputs()
            .iter()
            .map(|s| {
                signal_nets[s.index()]
                    .clone()
                    .expect("topological order defines inputs first")
            })
            .collect();
        let out_width = design.signal(comp.output()).width();
        let out_nets: Vec<NetId> = match comp.kind() {
            ComponentKind::Add => em.ripple_add(&ins[0], &ins[1], em.tie0, out_width),
            ComponentKind::Sub => {
                let nb: Vec<NetId> = ins[1].iter().map(|&n| em.inv(n)).collect();
                em.ripple_add(&ins[0], &nb, em.tie1, out_width)
            }
            ComponentKind::Neg => {
                let na: Vec<NetId> = ins[0].iter().map(|&n| em.inv(n)).collect();
                let zero = vec![em.tie0; na.len()];
                em.ripple_add(&zero, &na, em.tie1, out_width)
            }
            ComponentKind::Mul => em.multiply(&ins[0], &ins[1], out_width),
            ComponentKind::Eq => {
                let eqs: Vec<NetId> = ins[0]
                    .iter()
                    .zip(&ins[1])
                    .map(|(&a, &b)| em.xnor2(a, b))
                    .collect();
                vec![em.reduce(GateKind::And2, &eqs)]
            }
            ComponentKind::Ne => {
                let nes: Vec<NetId> = ins[0]
                    .iter()
                    .zip(&ins[1])
                    .map(|(&a, &b)| em.xor2(a, b))
                    .collect();
                vec![em.reduce(GateKind::Or2, &nes)]
            }
            ComponentKind::Lt => vec![em.less_than(&ins[0], &ins[1])],
            ComponentKind::Le => {
                let gt = em.less_than(&ins[1], &ins[0]);
                vec![em.inv(gt)]
            }
            ComponentKind::SLt => {
                let a = em.bias_signed(&ins[0]);
                let b = em.bias_signed(&ins[1]);
                vec![em.less_than(&a, &b)]
            }
            ComponentKind::SLe => {
                let a = em.bias_signed(&ins[0]);
                let b = em.bias_signed(&ins[1]);
                let gt = em.less_than(&b, &a);
                vec![em.inv(gt)]
            }
            ComponentKind::And | ComponentKind::Or | ComponentKind::Xor => {
                let kind = match comp.kind() {
                    ComponentKind::And => GateKind::And2,
                    ComponentKind::Or => GateKind::Or2,
                    _ => GateKind::Xor2,
                };
                (0..out_width as usize)
                    .map(|bit| {
                        let nets: Vec<NetId> = ins.iter().map(|v| v[bit]).collect();
                        em.reduce(kind, &nets)
                    })
                    .collect()
            }
            ComponentKind::Not => ins[0].iter().map(|&n| em.inv(n)).collect(),
            ComponentKind::RedAnd => vec![em.reduce(GateKind::And2, &ins[0])],
            ComponentKind::RedOr => vec![em.reduce(GateKind::Or2, &ins[0])],
            ComponentKind::RedXor => vec![em.reduce(GateKind::Xor2, &ins[0])],
            ComponentKind::Shl => em.barrel_shift(&ins[0], &ins[1], true, false),
            ComponentKind::Shr => em.barrel_shift(&ins[0], &ins[1], false, false),
            ComponentKind::Sar => em.barrel_shift(&ins[0], &ins[1], false, true),
            ComponentKind::Mux => em.mux_tree(&ins[0], &ins[1..]),
            ComponentKind::Slice { lo } => {
                ins[0][*lo as usize..(*lo + out_width) as usize].to_vec()
            }
            ComponentKind::Concat => ins.iter().flatten().copied().collect(),
            ComponentKind::ZeroExt => {
                let mut v = ins[0].clone();
                v.resize(out_width as usize, em.tie0);
                v
            }
            ComponentKind::SignExt => {
                let mut v = ins[0].clone();
                let msb = *v.last().expect("non-zero width");
                v.resize(out_width as usize, msb);
                v
            }
            ComponentKind::Const { value } => em.const_bits(*value, out_width),
            ComponentKind::Table { table } => {
                let data: Vec<Vec<NetId>> =
                    table.iter().map(|&v| em.const_bits(v, out_width)).collect();
                em.mux_tree(&ins[0], &data)
            }
            ComponentKind::Register { .. } | ComponentKind::Memory { .. } => unreachable!(),
        };
        debug_assert_eq!(out_nets.len(), out_width as usize);
        signal_nets[comp.output().index()] = Some(out_nets);
    }

    // 4. Sequential components.
    for (idx, comp) in design.components().iter().enumerate() {
        if !comp.kind().is_sequential() {
            continue;
        }
        em.owner = Some(idx);
        let clock = comp
            .clock()
            .expect("sequential components are clocked")
            .index() as u32;
        match comp.kind() {
            ComponentKind::Register { init, has_enable } => {
                let d_nets = signal_nets[comp.inputs()[0].index()]
                    .clone()
                    .expect("driven");
                let q_nets = signal_nets[comp.output().index()].clone().expect("pre");
                let en =
                    has_enable.then(|| signal_nets[comp.inputs()[1].index()].as_ref().unwrap()[0]);
                for (bit, (&d, &q)) in d_nets.iter().zip(&q_nets).enumerate() {
                    let d_eff = match en {
                        Some(en) => em.mux2(en, q, d),
                        None => d,
                    };
                    let dff_idx = em.netlist.push_dff(Dff {
                        d: d_eff,
                        q,
                        init: bits::bit(init.unwrap_or(0), bit as u32) == 1,
                        clock,
                    });
                    em.comp_cells[idx].dffs.push(dff_idx as u32);
                }
            }
            ComponentKind::Memory { words, init } => {
                let get = |s: SignalId, nets: &[Option<Vec<NetId>>]| {
                    nets[s.index()].clone().expect("driven")
                };
                let mem_idx = em.netlist.push_mem(MacroMem {
                    raddr: get(comp.inputs()[0], &signal_nets),
                    waddr: get(comp.inputs()[1], &signal_nets),
                    wdata: get(comp.inputs()[2], &signal_nets),
                    wen: get(comp.inputs()[3], &signal_nets)[0],
                    rdata: signal_nets[comp.output().index()].clone().expect("pre"),
                    words: *words,
                    init: init.clone().unwrap_or_else(|| vec![0u64; *words as usize]),
                    clock,
                });
                em.comp_cells[idx].mems.push(mem_idx as u32);
            }
            _ => {}
        }
    }

    // 5. Output ports.
    for port in design.outputs() {
        let nets = signal_nets[port.signal().index()]
            .clone()
            .expect("validated designs have no undriven signals");
        em.netlist.push_output(port.name().to_string(), nets);
    }

    ExpandedDesign {
        netlist: em.netlist,
        signal_nets: signal_nets
            .into_iter()
            .map(|n| n.expect("all driven"))
            .collect(),
        comp_cells: em.comp_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::builder::DesignBuilder;

    #[test]
    fn adder_expansion_has_full_adders() {
        let mut b = DesignBuilder::new("add8");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let s = b.add_wide(a, c);
        b.output("s", s);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        // 8 full adders × 5 gates = 40 logic gates.
        assert_eq!(ex.netlist.logic_gate_count(), 40);
        // All owned by the adder component.
        let add_idx = d
            .components()
            .iter()
            .position(|c| matches!(c.kind(), pe_rtl::ComponentKind::Add))
            .unwrap();
        assert_eq!(ex.component_cells(add_idx).gates.len(), 40);
    }

    #[test]
    fn wiring_kinds_produce_no_gates() {
        let mut b = DesignBuilder::new("wire");
        let a = b.input("a", 8);
        let hi = b.slice(a, 4, 4);
        let lo = b.slice(a, 0, 4);
        let cat = b.concat(&[hi, lo]);
        let z = b.zext(cat, 12);
        b.output("y", z);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        assert_eq!(ex.netlist.logic_gate_count(), 0);
    }

    #[test]
    fn register_expansion_one_dff_per_bit() {
        let mut b = DesignBuilder::new("reg");
        let clk = b.clock("clk");
        let x = b.input("x", 16);
        let q = b.pipeline_reg("q", x, 0xABCD, clk);
        b.output("q", q);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        assert_eq!(ex.netlist.dffs().len(), 16);
        // init pattern carried per bit
        let inits: u64 = ex
            .netlist
            .dffs()
            .iter()
            .enumerate()
            .map(|(i, f)| (f.init as u64) << i)
            .sum();
        assert_eq!(inits, 0xABCD);
    }

    #[test]
    fn enabled_register_adds_mux_per_bit() {
        let mut b = DesignBuilder::new("regen");
        let clk = b.clock("clk");
        let x = b.input("x", 4);
        let en = b.input("en", 1);
        let r = b.register_named("r", 4, 0, clk);
        b.connect_d_en(r, x, en);
        b.output("q", r.q());
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        assert_eq!(ex.netlist.dffs().len(), 4);
        let counts = ex.netlist.count_by_kind();
        assert_eq!(counts[GateKind::Mux2 as usize], 4);
    }

    #[test]
    fn memory_is_a_macro() {
        let mut b = DesignBuilder::new("mem");
        let clk = b.clock("clk");
        let ra = b.input("ra", 4);
        let wa = b.input("wa", 4);
        let wd = b.input("wd", 8);
        let we = b.input("we", 1);
        let m = b.memory("m", 16, 8, Some((0..16).collect()), clk);
        b.connect_mem(m, ra, wa, wd, we);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        assert_eq!(ex.netlist.mems().len(), 1);
        assert_eq!(ex.netlist.mems()[0].words, 16);
        assert_eq!(ex.netlist.mems()[0].init[5], 5);
        assert_eq!(ex.netlist.logic_gate_count(), 0);
    }

    #[test]
    fn table_with_constant_output_folds_away() {
        let mut b = DesignBuilder::new("rom");
        let a = b.input("a", 3);
        // All entries equal → tree folds to a constant, zero gates.
        let t = b.table(a, vec![5; 8], 4);
        b.output("y", t);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        assert_eq!(ex.netlist.logic_gate_count(), 0);
    }

    #[test]
    fn component_ownership_partitions_gates() {
        let mut b = DesignBuilder::new("two");
        let a = b.input("a", 4);
        let c = b.input("b", 4);
        let s = b.add(a, c);
        let t = b.sub(a, c);
        b.output("s", s);
        b.output("t", t);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let total: usize = (0..ex.component_count())
            .map(|i| ex.component_cells(i).gates.len())
            .sum();
        assert_eq!(total, ex.netlist.logic_gate_count());
        assert!(ex
            .component_cells(0)
            .gates
            .iter()
            .all(|g| { !ex.component_cells(1).gates.contains(g) }));
    }
}
