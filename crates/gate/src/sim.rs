//! Levelized gate simulation with switched-energy accounting.

use crate::cells::CellLibrary;
use crate::expand::ExpandedDesign;
use pe_util::PortError;

/// A zero-delay gate-level simulator.
///
/// Semantics mirror [`pe_sim::Simulator`]: combinational settle, then a
/// clock edge capturing flip-flops and memories. Energy is accounted per
/// cycle by comparing consecutive *settled* states (the standard zero-delay
/// toggle-count model; glitch power is outside this model's scope, as it is
/// for RTL macromodels):
///
/// * each gate-output toggle costs that cell's switching energy;
/// * each flip-flop costs clock-pin energy every cycle plus `q`-toggle
///   energy;
/// * each SRAM macro costs read energy every cycle, write energy when
///   `wen` is high, and leakage;
/// * every cell leaks for the duration of the cycle.
///
/// Energy is attributed to the RTL component that owns each cell, enabling
/// per-component power breakdowns and macromodel characterization.
#[derive(Debug)]
pub struct GateSimulator<'a> {
    expanded: &'a ExpandedDesign,
    lib: &'a CellLibrary,
    values: Vec<bool>,
    prev_settled: Vec<bool>,
    order: Vec<u32>,
    gate_owner: Vec<u32>, // owner + 1; 0 = unowned
    dff_owner: Vec<u32>,
    mem_owner: Vec<u32>,
    mem_state: Vec<Vec<u64>>,
    comp_energy_fj: Vec<f64>,
    unowned_energy_fj: f64,
    cycle_energy_fj: f64,
    cycle_seq_energy_fj: f64,
    total_energy_fj: f64,
    leakage_fj_per_cycle: f64,
    period_ns: f64,
    cycle: u64,
    dirty: bool,
    toggles: u64,
}

impl<'a> GateSimulator<'a> {
    /// Creates a simulator with the default 10 ns clock period.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's combinational gates are cyclic (cannot
    /// happen for netlists produced by [`crate::expand::expand_design`]
    /// from a validated design).
    pub fn new(expanded: &'a ExpandedDesign, lib: &'a CellLibrary) -> Self {
        Self::with_period(expanded, lib, 10.0)
    }

    /// Creates a simulator with an explicit clock period in nanoseconds
    /// (used to convert leakage power into per-cycle energy).
    ///
    /// # Panics
    ///
    /// See [`GateSimulator::new`].
    pub fn with_period(expanded: &'a ExpandedDesign, lib: &'a CellLibrary, period_ns: f64) -> Self {
        let nl = &expanded.netlist;
        let order = levelize(nl);

        // Ownership maps.
        let mut gate_owner = vec![0u32; nl.gates().len()];
        let mut dff_owner = vec![0u32; nl.dffs().len()];
        let mut mem_owner = vec![0u32; nl.mems().len()];
        for comp in 0..expanded.component_count() {
            let cells = expanded.component_cells(comp);
            for &g in &cells.gates {
                gate_owner[g as usize] = comp as u32 + 1;
            }
            for &f in &cells.dffs {
                dff_owner[f as usize] = comp as u32 + 1;
            }
            for &m in &cells.mems {
                mem_owner[m as usize] = comp as u32 + 1;
            }
        }

        // Leakage per cycle: all cells leak continuously.
        let mut leak_nw = 0.0;
        for g in nl.gates() {
            leak_nw += lib.gate(g.kind).leakage_nw;
        }
        leak_nw += lib.dff().leakage_nw * nl.dffs().len() as f64;
        for m in nl.mems() {
            leak_nw += lib.mem_leakage_nw(m.words, m.wdata.len() as u32);
        }
        // nW × ns = 1e-18 J = 1e-3 fJ.
        let leakage_fj_per_cycle = leak_nw * period_ns * 1e-3;

        let mut values = vec![false; nl.net_count()];
        let mut mem_state = Vec::with_capacity(nl.mems().len());
        for dff in nl.dffs() {
            values[dff.q.index()] = dff.init;
        }
        for m in nl.mems() {
            mem_state.push(m.init.clone());
            // rdata power-on value: word 0 contents, mirroring the RTL
            // simulator's zero... registers read as 0 until first edge; we
            // leave rdata at 0 to match pe-sim.
        }

        let mut sim = Self {
            expanded,
            lib,
            values,
            prev_settled: Vec::new(),
            order,
            gate_owner,
            dff_owner,
            mem_owner,
            mem_state,
            comp_energy_fj: vec![0.0; expanded.component_count()],
            unowned_energy_fj: 0.0,
            cycle_energy_fj: 0.0,
            cycle_seq_energy_fj: 0.0,
            total_energy_fj: 0.0,
            leakage_fj_per_cycle,
            period_ns,
            cycle: 0,
            dirty: true,
            toggles: 0,
        };
        sim.settle();
        sim.prev_settled = sim.values.clone();
        sim
    }

    /// The clock period used for leakage integration (nanoseconds).
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Number of clock edges stepped.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total gate-output toggles accounted so far — the raw switching
    /// activity behind the toggle-count energy model.
    pub fn toggle_count(&self) -> u64 {
        self.toggles
    }

    /// Observes this simulator's run counters into `registry`
    /// (`gate.cycles`, `gate.output_toggles` histograms). Call once at
    /// the end of a run.
    pub fn record_metrics(&self, registry: &pe_trace::Registry) {
        registry.histogram("gate.cycles").observe(self.cycle);
        registry
            .histogram("gate.output_toggles")
            .observe(self.toggles);
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        let gates = self.expanded.netlist.gates();
        for &gi in &self.order {
            let g = &gates[gi as usize];
            let a = self.values[g.inputs[0].index()];
            let b = self.values[g.inputs[1].index()];
            let c = self.values[g.inputs[2].index()];
            self.values[g.output.index()] = g.kind.eval(a, b, c);
        }
        self.dirty = false;
    }

    /// Drives an input bus by port name.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if the port does not exist, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    pub fn try_set_input(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        let nets = self
            .expanded
            .netlist
            .inputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?;
        if nets.len() < 64 && value >= (1u64 << nets.len()) {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: nets.len() as u32,
            });
        }
        for (i, net) in nets.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            if self.values[net.index()] != bit {
                self.values[net.index()] = bit;
                self.dirty = true;
            }
        }
        Ok(())
    }

    /// Reads an output bus by port name (settling first).
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if the port does not exist.
    pub fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        self.settle();
        let nets = self
            .expanded
            .netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        Ok(nets
            .iter()
            .enumerate()
            .map(|(i, net)| (self.values[net.index()] as u64) << i)
            .sum())
    }

    fn credit(&mut self, owner: u32, energy: f64) {
        if owner == 0 {
            self.unowned_energy_fj += energy;
        } else {
            self.comp_energy_fj[owner as usize - 1] += energy;
        }
        self.cycle_energy_fj += energy;
    }

    /// Advances one clock edge on all domains, accounting the cycle's
    /// energy. Returns the energy of the completed cycle in femtojoules.
    pub fn step(&mut self) -> f64 {
        self.settle();
        self.cycle_energy_fj = 0.0;
        self.cycle_seq_energy_fj = 0.0;

        // 1. Toggle energy of combinational gates vs the previous settled
        //    state.
        let gates = self.expanded.netlist.gates();
        for (gi, g) in gates.iter().enumerate() {
            let net = g.output.index();
            if self.values[net] != self.prev_settled[net] {
                let e = self.lib.gate(g.kind).toggle_energy_fj;
                self.credit(self.gate_owner[gi], e);
                self.toggles += 1;
            }
        }

        // 2. Sequential capture with flip-flop/memory energies.
        let dffs = self.expanded.netlist.dffs().to_vec();
        let dff_spec = self.lib.dff();
        let dff_clk = self.lib.dff_clock_energy_fj();
        let mut new_q = Vec::with_capacity(dffs.len());
        for (fi, dff) in dffs.iter().enumerate() {
            let d = self.values[dff.d.index()];
            let q = self.values[dff.q.index()];
            self.credit(self.dff_owner[fi], dff_clk);
            self.cycle_seq_energy_fj += dff_clk;
            if d != q {
                self.credit(self.dff_owner[fi], dff_spec.toggle_energy_fj);
                self.cycle_seq_energy_fj += dff_spec.toggle_energy_fj;
            }
            new_q.push(d);
        }
        let mems = self.expanded.netlist.mems().to_vec();
        let mut mem_updates = Vec::with_capacity(mems.len());
        for (mi, mem) in mems.iter().enumerate() {
            let width = mem.wdata.len() as u32;
            let raddr = self.bus_value(&mem.raddr) as usize % mem.words as usize;
            let read = self.mem_state[mi][raddr];
            self.credit(self.mem_owner[mi], self.lib.mem_read_energy_fj(width));
            self.cycle_seq_energy_fj += self.lib.mem_read_energy_fj(width);
            let write = if self.values[mem.wen.index()] {
                let waddr = self.bus_value(&mem.waddr) as usize % mem.words as usize;
                self.credit(self.mem_owner[mi], self.lib.mem_write_energy_fj(width));
                self.cycle_seq_energy_fj += self.lib.mem_write_energy_fj(width);
                Some((waddr, self.bus_value(&mem.wdata)))
            } else {
                None
            };
            mem_updates.push((read, write));
        }

        // 3. Leakage for the cycle (attributed as unowned overhead).
        self.unowned_energy_fj += self.leakage_fj_per_cycle;
        self.cycle_energy_fj += self.leakage_fj_per_cycle;

        // 4. Commit: apply sequential updates, then snapshot. Gate-toggle
        // accounting only ever compares *gate output* nets, and DFF q /
        // BRAM rdata nets have no driving gate, so snapshotting after the
        // q/rdata writes is safe and saves a second full-array copy in
        // this hottest of loops.
        for (dff, q) in dffs.iter().zip(new_q) {
            self.values[dff.q.index()] = q;
        }
        for (mi, (mem, (read, write))) in mems.iter().zip(mem_updates).enumerate() {
            for (i, net) in mem.rdata.iter().enumerate() {
                let bit = (read >> i) & 1 == 1;
                self.values[net.index()] = bit;
            }
            if let Some((addr, data)) = write {
                self.mem_state[mi][addr] = data;
            }
        }
        self.prev_settled.copy_from_slice(&self.values);
        self.dirty = true;
        self.cycle += 1;
        self.total_energy_fj += self.cycle_energy_fj;
        self.cycle_energy_fj
    }

    fn bus_value(&self, nets: &[crate::netlist::NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .map(|(i, n)| (self.values[n.index()] as u64) << i)
            .sum()
    }

    /// Energy of the most recently completed cycle (femtojoules).
    pub fn last_cycle_energy_fj(&self) -> f64 {
        self.cycle_energy_fj
    }

    /// Split of the last cycle's energy into
    /// `(combinational, sequential, leakage)` femtojoules. The sequential
    /// share (flip-flop clock/capture, memory access) is spent *at* the
    /// clock edge, which matters when aligning energies with observed
    /// output transitions during macromodel characterization.
    pub fn last_cycle_split_fj(&self) -> (f64, f64, f64) {
        let comb = self.cycle_energy_fj - self.cycle_seq_energy_fj - self.leakage_fj_per_cycle;
        (
            comb.max(0.0),
            self.cycle_seq_energy_fj,
            self.leakage_fj_per_cycle,
        )
    }

    /// Total energy since construction (femtojoules).
    pub fn total_energy_fj(&self) -> f64 {
        self.total_energy_fj
    }

    /// Cumulative energy attributed to RTL component `index`.
    pub fn component_energy_fj(&self, index: usize) -> f64 {
        self.comp_energy_fj[index]
    }

    /// Cumulative energy not attributable to any RTL component (leakage
    /// and top-level wiring).
    pub fn unowned_energy_fj(&self) -> f64 {
        self.unowned_energy_fj
    }

    /// Average power over the run so far, in microwatts
    /// (fJ / ns ≡ µW).
    pub fn average_power_uw(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.total_energy_fj / (self.cycle as f64 * self.period_ns)
    }
}

/// Kahn levelization of a gate netlist's combinational gates: a topological
/// evaluation order. Nets driven by inputs, DFF `q`, or memory `rdata` are
/// sources. Shared by the serial and 64-lane wide simulators so both
/// evaluate gates in the identical order.
///
/// # Panics
///
/// Panics if the netlist's combinational gates are cyclic (cannot happen
/// for netlists produced by [`crate::expand::expand_design`] from a
/// validated design).
pub(crate) fn levelize(nl: &crate::netlist::GateNetlist) -> Vec<u32> {
    let mut driver: Vec<Option<u32>> = vec![None; nl.net_count()];
    for (i, g) in nl.gates().iter().enumerate() {
        driver[g.output.index()] = Some(i as u32);
    }
    let n_gates = nl.gates().len();
    let mut in_deg = vec![0u32; n_gates];
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n_gates];
    for (i, g) in nl.gates().iter().enumerate() {
        for slot in 0..g.kind.arity() {
            if let Some(drv) = driver[g.inputs[slot].index()] {
                consumers[drv as usize].push(i as u32);
                in_deg[i] += 1;
            }
        }
    }
    let mut order: Vec<u32> = (0..n_gates as u32)
        .filter(|&i| in_deg[i as usize] == 0)
        .collect();
    let mut head = 0;
    while head < order.len() {
        let g = order[head];
        head += 1;
        for &c in &consumers[g as usize] {
            in_deg[c as usize] -= 1;
            if in_deg[c as usize] == 0 {
                order.push(c);
            }
        }
    }
    assert_eq!(order.len(), n_gates, "combinational loop in gate netlist");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand_design;
    use pe_rtl::builder::DesignBuilder;
    use pe_sim::Simulator;
    use pe_util::rng::Xoshiro;

    fn lib() -> CellLibrary {
        CellLibrary::cmos130()
    }

    #[test]
    fn named_bus_lookups_report_errors() {
        let mut b = DesignBuilder::new("p");
        let a = b.input("a", 4);
        let n = b.not(a);
        b.output("y", n);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut sim = GateSimulator::new(&ex, &lib);
        assert_eq!(
            sim.try_set_input("nope", 0),
            Err(PortError::NoSuchInput("nope".into()))
        );
        assert_eq!(
            sim.try_set_input("a", 0x10),
            Err(PortError::ValueTooWide {
                port: "a".into(),
                value: 0x10,
                width: 4
            })
        );
        assert_eq!(
            sim.try_output("nope"),
            Err(PortError::NoSuchOutput("nope".into()))
        );
        sim.try_set_input("a", 0x5).unwrap();
        assert_eq!(sim.try_output("y"), Ok(0xA));
    }

    #[test]
    fn adder_matches_rtl_on_random_vectors() {
        let mut b = DesignBuilder::new("add");
        let a = b.input("a", 12);
        let c = b.input("b", 12);
        let s = b.add_wide(a, c);
        b.output("s", s);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        let mut rsim = Simulator::new(&d).unwrap();
        let mut rng = Xoshiro::new(1);
        for _ in 0..200 {
            let (x, y) = (rng.bits(12), rng.bits(12));
            gsim.try_set_input("a", x).unwrap();
            gsim.try_set_input("b", y).unwrap();
            rsim.set_input_by_name("a", x);
            rsim.set_input_by_name("b", y);
            assert_eq!(
                gsim.try_output("s").unwrap(),
                rsim.output("s"),
                "a={x} b={y}"
            );
        }
    }

    #[test]
    fn subtract_multiply_compare_match_rtl() {
        let mut b = DesignBuilder::new("alu");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let sub = b.sub(a, c);
        let mul = b.mul(a, c, 16);
        let lt = b.lt(a, c);
        let slt = b.slt(a, c);
        let le = b.le(a, c);
        let sle = b.sle(a, c);
        let eq = b.eq(a, c);
        let ne = b.ne(a, c);
        b.output("sub", sub);
        b.output("mul", mul);
        b.output("lt", lt);
        b.output("slt", slt);
        b.output("le", le);
        b.output("sle", sle);
        b.output("eq", eq);
        b.output("ne", ne);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        let mut rsim = Simulator::new(&d).unwrap();
        let mut rng = Xoshiro::new(2);
        for _ in 0..300 {
            let (x, y) = (rng.bits(8), rng.bits(8));
            gsim.try_set_input("a", x).unwrap();
            gsim.try_set_input("b", y).unwrap();
            rsim.set_input_by_name("a", x);
            rsim.set_input_by_name("b", y);
            for port in ["sub", "mul", "lt", "slt", "le", "sle", "eq", "ne"] {
                assert_eq!(
                    gsim.try_output(port).unwrap(),
                    rsim.output(port),
                    "{port} a={x} b={y}"
                );
            }
        }
    }

    #[test]
    fn shifts_and_mux_match_rtl() {
        let mut b = DesignBuilder::new("sh");
        let a = b.input("a", 8);
        let amt = b.input("amt", 4);
        let sel = b.input("sel", 2);
        let shl = b.shl(a, amt);
        let shr = b.shr(a, amt);
        let sar = b.sar(a, amt);
        let c1 = b.constant(0x11, 8);
        let c2 = b.constant(0x22, 8);
        let m = b.mux(sel, &[a, c1, c2]); // 3 inputs, 2-bit select → clamp
        b.output("shl", shl);
        b.output("shr", shr);
        b.output("sar", sar);
        b.output("m", m);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        let mut rsim = Simulator::new(&d).unwrap();
        let mut rng = Xoshiro::new(3);
        for _ in 0..300 {
            let (x, k, s) = (rng.bits(8), rng.bits(4), rng.bits(2));
            gsim.try_set_input("a", x).unwrap();
            gsim.try_set_input("amt", k).unwrap();
            gsim.try_set_input("sel", s).unwrap();
            rsim.set_input_by_name("a", x);
            rsim.set_input_by_name("amt", k);
            rsim.set_input_by_name("sel", s);
            for port in ["shl", "shr", "sar", "m"] {
                assert_eq!(
                    gsim.try_output(port).unwrap(),
                    rsim.output(port),
                    "{port} a={x} amt={k} sel={s}"
                );
            }
        }
    }

    #[test]
    fn sequential_counter_matches_rtl_and_burns_energy() {
        let mut b = DesignBuilder::new("counter");
        let clk = b.clock("clk");
        let one = b.constant(1, 8);
        let count = b.register_named("count", 8, 0, clk);
        let next = b.add(count.q(), one);
        b.connect_d(count, next);
        b.output("count", count.q());
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        let mut rsim = Simulator::new(&d).unwrap();
        for _ in 0..50 {
            gsim.step();
            rsim.step();
            assert_eq!(gsim.try_output("count").unwrap(), rsim.output("count"));
        }
        assert!(gsim.total_energy_fj() > 0.0);
        assert!(gsim.average_power_uw() > 0.0);
        // The register component earned clock energy at minimum.
        let reg_idx = d.find_component("count_reg").unwrap().index();
        assert!(gsim.component_energy_fj(reg_idx) > 0.0);
    }

    #[test]
    fn memory_behaviour_matches_rtl() {
        let mut b = DesignBuilder::new("mem");
        let clk = b.clock("clk");
        let ra = b.input("ra", 3);
        let wa = b.input("wa", 3);
        let wd = b.input("wd", 8);
        let we = b.input("we", 1);
        let m = b.memory("m", 8, 8, Some(vec![1, 2, 3, 4, 5, 6, 7, 8]), clk);
        b.connect_mem(m, ra, wa, wd, we);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        let mut rsim = Simulator::new(&d).unwrap();
        let mut rng = Xoshiro::new(4);
        for _ in 0..100 {
            let (ra_v, wa_v, wd_v, we_v) = (rng.bits(3), rng.bits(3), rng.bits(8), rng.bits(1));
            for (sim_set, val) in [("ra", ra_v), ("wa", wa_v), ("wd", wd_v), ("we", we_v)] {
                gsim.try_set_input(sim_set, val).unwrap();
                rsim.set_input_by_name(sim_set, val);
            }
            gsim.step();
            rsim.step();
            assert_eq!(gsim.try_output("rd").unwrap(), rsim.output("rd"));
        }
    }

    #[test]
    fn idle_circuit_burns_only_clock_and_leakage() {
        let mut b = DesignBuilder::new("idle");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let q = b.pipeline_reg("q", x, 0, clk);
        b.output("q", q);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        gsim.try_set_input("x", 0).unwrap();
        gsim.step(); // settle into steady state
        let e_idle = gsim.step();
        // 8 DFFs × clock energy + leakage; no toggles.
        let expected = 8.0 * lib.dff_clock_energy_fj();
        assert!(e_idle >= expected, "idle energy {e_idle} < clock floor");
        // Now toggle all data bits: energy must rise.
        gsim.try_set_input("x", 0xFF).unwrap();
        let e_active = gsim.step();
        assert!(
            e_active > e_idle + 8.0,
            "active {e_active} vs idle {e_idle}"
        );
    }

    #[test]
    fn table_lookup_matches_rtl() {
        let table: Vec<u64> = (0..16).map(|i| (i * 7 + 3) % 16).collect();
        let mut b = DesignBuilder::new("rom");
        let a = b.input("a", 4);
        let t = b.table(a, table.clone(), 4);
        b.output("y", t);
        let d = b.finish().unwrap();
        let ex = expand_design(&d);
        let lib = lib();
        let mut gsim = GateSimulator::new(&ex, &lib);
        for i in 0..16u64 {
            gsim.try_set_input("a", i).unwrap();
            assert_eq!(gsim.try_output("y").unwrap(), table[i as usize]);
        }
    }
}
