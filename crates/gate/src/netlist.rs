//! Flat gate-level netlist model.

use std::fmt;

/// Identifier of a 1-bit net in a [`GateNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index (for tools that post-process a
    /// netlist, e.g. the technology mapper).
    pub fn from_raw(index: u32) -> Self {
        NetId(index)
    }
}

/// Combinational cell kinds. `Mux2` reads inputs `[sel, d0, d1]`; the
/// constant ties drive 0/1 with no inputs; everything else is 1- or
/// 2-input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum GateKind {
    Tie0 = 0,
    Tie1 = 1,
    Buf = 2,
    Inv = 3,
    And2 = 4,
    Or2 = 5,
    Nand2 = 6,
    Nor2 = 7,
    Xor2 = 8,
    Xnor2 = 9,
    Mux2 = 10,
}

impl GateKind {
    /// Number of gate kinds (array sizing).
    pub const COUNT: usize = 11;

    /// Every gate kind, for iteration.
    pub const ALL: [GateKind; Self::COUNT] = [
        GateKind::Tie0,
        GateKind::Tie1,
        GateKind::Buf,
        GateKind::Inv,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
    ];

    /// Input arity of the kind.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Tie0 | GateKind::Tie1 => 0,
            GateKind::Buf | GateKind::Inv => 1,
            GateKind::Mux2 => 3,
            _ => 2,
        }
    }

    /// Boolean function of the kind. Unused input slots are ignored.
    #[inline]
    pub fn eval(self, a: bool, b: bool, c: bool) -> bool {
        match self {
            GateKind::Tie0 => false,
            GateKind::Tie1 => true,
            GateKind::Buf => a,
            GateKind::Inv => !a,
            GateKind::And2 => a & b,
            GateKind::Or2 => a | b,
            GateKind::Nand2 => !(a & b),
            GateKind::Nor2 => !(a | b),
            GateKind::Xor2 => a ^ b,
            GateKind::Xnor2 => !(a ^ b),
            GateKind::Mux2 => {
                if a {
                    c
                } else {
                    b
                }
            }
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:?}").to_lowercase())
    }
}

/// A combinational gate instance. Inputs beyond the kind's arity are
/// `NetId(0)` placeholders and never read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// The cell kind.
    pub kind: GateKind,
    /// Input nets `[a, b, c]` (see [`GateKind::arity`]).
    pub inputs: [NetId; 3],
    /// Output net (single driver).
    pub output: NetId,
}

/// A D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dff {
    /// Data input net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
    /// Power-on value.
    pub init: bool,
    /// Clock domain index (mirrors the RTL design's clock ids).
    pub clock: u32,
}

/// An SRAM macro block (memories are kept behavioral; expanding a frame
/// buffer to flip-flops would be neither realistic nor tractable — real
/// flows characterize SRAMs as macro cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroMem {
    /// Read-address nets, LSB first.
    pub raddr: Vec<NetId>,
    /// Write-address nets, LSB first.
    pub waddr: Vec<NetId>,
    /// Write-data nets, LSB first.
    pub wdata: Vec<NetId>,
    /// Write-enable net.
    pub wen: NetId,
    /// Registered read-data nets, LSB first.
    pub rdata: Vec<NetId>,
    /// Number of words.
    pub words: u32,
    /// Initial contents (one value per word).
    pub init: Vec<u64>,
    /// Clock domain index.
    pub clock: u32,
}

/// A flat gate-level netlist produced by [`crate::expand::expand_design`].
#[derive(Debug, Clone, PartialEq)]
pub struct GateNetlist {
    name: String,
    net_count: u32,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    mems: Vec<MacroMem>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
}

impl GateNetlist {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            net_count: 0,
            gates: Vec::new(),
            dffs: Vec::new(),
            mems: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_count as usize
    }

    /// All combinational gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// All SRAM macros.
    pub fn mems(&self) -> &[MacroMem] {
        &self.mems
    }

    /// Input buses: port name → nets, LSB first.
    pub fn inputs(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// Output buses: port name → nets, LSB first.
    pub fn outputs(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Gate count excluding ties (headline "gates" number).
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Tie0 | GateKind::Tie1))
            .count()
    }

    /// Count of gates per kind.
    pub fn count_by_kind(&self) -> [usize; GateKind::COUNT] {
        let mut counts = [0usize; GateKind::COUNT];
        for g in &self.gates {
            counts[g.kind as usize] += 1;
        }
        counts
    }

    pub(crate) fn fresh_net(&mut self) -> NetId {
        let id = NetId(self.net_count);
        self.net_count += 1;
        id
    }

    pub(crate) fn push_gate(&mut self, gate: Gate) -> usize {
        self.gates.push(gate);
        self.gates.len() - 1
    }

    pub(crate) fn push_dff(&mut self, dff: Dff) -> usize {
        self.dffs.push(dff);
        self.dffs.len() - 1
    }

    pub(crate) fn push_mem(&mut self, mem: MacroMem) -> usize {
        self.mems.push(mem);
        self.mems.len() - 1
    }

    pub(crate) fn push_input(&mut self, name: String, nets: Vec<NetId>) {
        self.inputs.push((name, nets));
    }

    pub(crate) fn push_output(&mut self, name: String, nets: Vec<NetId>) {
        self.outputs.push((name, nets));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kind_truth_tables() {
        use GateKind::*;
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(And2.eval(a, b, false), a & b);
                assert_eq!(Or2.eval(a, b, false), a | b);
                assert_eq!(Nand2.eval(a, b, false), !(a & b));
                assert_eq!(Nor2.eval(a, b, false), !(a | b));
                assert_eq!(Xor2.eval(a, b, false), a ^ b);
                assert_eq!(Xnor2.eval(a, b, false), !(a ^ b));
                for c in [false, true] {
                    assert_eq!(Mux2.eval(a, b, c), if a { c } else { b });
                }
            }
            assert_eq!(Inv.eval(a, false, false), !a);
            assert_eq!(Buf.eval(a, false, false), a);
        }
        assert!(!Tie0.eval(true, true, true));
        assert!(Tie1.eval(false, false, false));
    }

    #[test]
    fn arities() {
        assert_eq!(GateKind::Tie0.arity(), 0);
        assert_eq!(GateKind::Inv.arity(), 1);
        assert_eq!(GateKind::Nand2.arity(), 2);
        assert_eq!(GateKind::Mux2.arity(), 3);
    }

    #[test]
    fn all_covers_every_kind_once() {
        let mut seen = [false; GateKind::COUNT];
        for k in GateKind::ALL {
            assert!(!seen[k as usize]);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(GateKind::Nand2.to_string(), "nand2");
    }
}
