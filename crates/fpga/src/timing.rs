//! Static timing analysis over the mapped netlist.
//!
//! A simple but standard model: every LUT contributes a fixed logic delay
//! plus a fanout-dependent routing delay on its output net. The critical
//! path is the longest combinational path between timing endpoints
//! (primary inputs / flip-flop outputs / BRAM read ports on the launching
//! side, primary outputs / flip-flop inputs / BRAM write ports on the
//! capturing side). The achievable emulation clock is its reciprocal.

use crate::lut::LutNetlist;

/// Delay parameters of the Virtex-II-class fabric (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// LUT logic delay.
    pub t_lut_ns: f64,
    /// Base routing delay per net hop.
    pub t_net_ns: f64,
    /// Extra routing delay per unit of `ln(1 + fanout)`.
    pub t_fanout_ns: f64,
    /// Clock-to-out plus setup overhead added to every path.
    pub t_seq_ns: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            t_lut_ns: 0.44,
            t_net_ns: 0.78,
            t_fanout_ns: 0.25,
            t_seq_ns: 1.0,
        }
    }
}

/// Results of [`analyze_timing`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Critical-path delay in nanoseconds (including sequential overhead).
    pub critical_path_ns: f64,
    /// Critical path length in LUT levels.
    pub depth_levels: u32,
    /// Achievable clock in MHz.
    pub fmax_mhz: f64,
}

/// Analyzes the mapped netlist with the default delay model.
pub fn analyze_timing(netlist: &LutNetlist) -> TimingReport {
    analyze_timing_with(netlist, &DelayModel::default())
}

/// Analyzes the mapped netlist with an explicit delay model.
pub fn analyze_timing_with(netlist: &LutNetlist, model: &DelayModel) -> TimingReport {
    let nets = netlist.net_count();
    // Fanout per net.
    let mut fanout = vec![0u32; nets];
    for lut in netlist.luts() {
        for &n in &lut.inputs {
            fanout[n.index()] += 1;
        }
    }
    for ff in netlist.ffs() {
        fanout[ff.d.index()] += 1;
    }
    for bram in netlist.brams() {
        for n in bram
            .raddr
            .iter()
            .chain(&bram.waddr)
            .chain(&bram.wdata)
            .chain(std::iter::once(&bram.wen))
        {
            fanout[n.index()] += 1;
        }
    }
    for (_, bus) in netlist.outputs() {
        for &n in bus {
            fanout[n.index()] += 1;
        }
    }

    // Arrival times and LUT depth per net. LUTs are stored in topological
    // order by construction; a single forward pass suffices.
    let mut arrival = vec![0.0f64; nets];
    let mut depth = vec![0u32; nets];
    for lut in netlist.luts() {
        let (mut arr, mut dep) = (0.0f64, 0u32);
        for &n in &lut.inputs {
            arr = arr.max(arrival[n.index()]);
            dep = dep.max(depth[n.index()]);
        }
        let wire =
            model.t_net_ns + model.t_fanout_ns * (1.0 + fanout[lut.output.index()] as f64).ln();
        arrival[lut.output.index()] = arr + model.t_lut_ns + wire;
        depth[lut.output.index()] = dep + 1;
    }

    // Endpoints.
    let mut worst = 0.0f64;
    let mut worst_depth = 0u32;
    let mut visit = |n: pe_gate::netlist::NetId| {
        worst = worst.max(arrival[n.index()]);
        worst_depth = worst_depth.max(depth[n.index()]);
    };
    for ff in netlist.ffs() {
        visit(ff.d);
    }
    for bram in netlist.brams() {
        for n in bram
            .raddr
            .iter()
            .chain(&bram.waddr)
            .chain(&bram.wdata)
            .chain(std::iter::once(&bram.wen))
        {
            visit(*n);
        }
    }
    for (_, bus) in netlist.outputs() {
        for &n in bus {
            visit(n);
        }
    }

    let critical = worst + model.t_seq_ns;
    TimingReport {
        critical_path_ns: critical,
        depth_levels: worst_depth,
        fmax_mhz: 1000.0 / critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::map_to_luts;
    use pe_gate::expand::expand_design;
    use pe_rtl::builder::DesignBuilder;
    use pe_rtl::Design;

    fn adder_design(width: u32) -> Design {
        let mut b = DesignBuilder::new("add");
        let clk = b.clock("clk");
        let x = b.input("a", width);
        let y = b.input("b", width);
        let s = b.add(x, y);
        let q = b.pipeline_reg("q", s, 0, clk);
        b.output("s", q);
        b.finish().unwrap()
    }

    #[test]
    fn wider_adders_are_slower() {
        let narrow = analyze_timing(&map_to_luts(&expand_design(&adder_design(4)).netlist));
        let wide = analyze_timing(&map_to_luts(&expand_design(&adder_design(32)).netlist));
        assert!(
            wide.critical_path_ns > narrow.critical_path_ns,
            "32-bit {} vs 4-bit {}",
            wide.critical_path_ns,
            narrow.critical_path_ns
        );
        assert!(wide.depth_levels > narrow.depth_levels);
        assert!(wide.fmax_mhz < narrow.fmax_mhz);
    }

    #[test]
    fn purely_sequential_design_hits_seq_floor() {
        let mut b = DesignBuilder::new("ff");
        let clk = b.clock("clk");
        let x = b.input("x", 1);
        let q = b.pipeline_reg("q", x, 0, clk);
        b.output("q", q);
        let d = b.finish().unwrap();
        let report = analyze_timing(&map_to_luts(&expand_design(&d).netlist));
        assert_eq!(report.depth_levels, 0);
        assert!((report.critical_path_ns - DelayModel::default().t_seq_ns).abs() < 1e-9);
    }

    #[test]
    fn fmax_is_reciprocal_of_critical_path() {
        let r = analyze_timing(&map_to_luts(&expand_design(&adder_design(16)).netlist));
        assert!((r.fmax_mhz * r.critical_path_ns - 1000.0).abs() < 1e-6);
    }
}
