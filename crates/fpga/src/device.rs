//! Device capacity models for the Virtex-II family the paper used.

use std::fmt;

/// Capacity of one FPGA device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceModel {
    name: String,
    luts: u32,
    flip_flops: u32,
    /// 18-kbit block RAMs.
    brams: u32,
    /// Usable user I/O pins.
    io_pins: u32,
}

impl DeviceModel {
    /// Defines a custom device.
    pub fn new(
        name: impl Into<String>,
        luts: u32,
        flip_flops: u32,
        brams: u32,
        io_pins: u32,
    ) -> Self {
        Self {
            name: name.into(),
            luts,
            flip_flops,
            brams,
            io_pins,
        }
    }

    /// Xilinx XC2V1000: 10,240 LUTs/FFs, 40 BRAMs.
    pub fn xc2v1000() -> Self {
        Self::new("XC2V1000", 10_240, 10_240, 40, 432)
    }

    /// Xilinx XC2V3000: 28,672 LUTs/FFs, 96 BRAMs.
    pub fn xc2v3000() -> Self {
        Self::new("XC2V3000", 28_672, 28_672, 96, 720)
    }

    /// Xilinx XC2V6000: 67,584 LUTs/FFs, 144 BRAMs — the class of device
    /// in the paper's PC-based emulation platform.
    pub fn xc2v6000() -> Self {
        Self::new("XC2V6000", 67_584, 67_584, 144, 1104)
    }

    /// Xilinx XC2V8000: 93,184 LUTs/FFs, 168 BRAMs.
    pub fn xc2v8000() -> Self {
        Self::new("XC2V8000", 93_184, 93_184, 168, 1108)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Available 4-input LUTs.
    pub fn luts(&self) -> u32 {
        self.luts
    }

    /// Available flip-flops.
    pub fn flip_flops(&self) -> u32 {
        self.flip_flops
    }

    /// Available 18-kbit block RAMs.
    pub fn brams(&self) -> u32 {
        self.brams
    }

    /// Available user I/O pins.
    pub fn io_pins(&self) -> u32 {
        self.io_pins
    }

    /// Data bits one BRAM can hold (without parity).
    pub const BRAM_BITS: u64 = 18 * 1024;
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} LUTs, {} FFs, {} BRAMs, {} I/O)",
            self.name, self.luts, self.flip_flops, self.brams, self.io_pins
        )
    }
}

/// Resource demand of a mapped netlist, comparable against a
/// [`DeviceModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUse {
    /// 4-input LUTs.
    pub luts: u32,
    /// Flip-flops.
    pub flip_flops: u32,
    /// 18-kbit block RAMs.
    pub brams: u32,
    /// Top-level I/O bits.
    pub io_pins: u32,
}

impl ResourceUse {
    /// Whether this demand fits a device.
    pub fn fits(&self, device: &DeviceModel) -> bool {
        self.luts <= device.luts
            && self.flip_flops <= device.flip_flops
            && self.brams <= device.brams
            && self.io_pins <= device.io_pins
    }

    /// The binding utilization fraction (max over resource classes).
    pub fn utilization(&self, device: &DeviceModel) -> f64 {
        [
            self.luts as f64 / device.luts as f64,
            self.flip_flops as f64 / device.flip_flops as f64,
            self.brams as f64 / device.brams.max(1) as f64,
            self.io_pins as f64 / device.io_pins as f64,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Minimum number of devices needed on raw capacity alone (ignoring
    /// cut constraints — the partitioner may need more).
    pub fn min_devices(&self, device: &DeviceModel) -> u32 {
        let per = |need: u32, have: u32| need.div_ceil(have.max(1));
        per(self.luts, device.luts)
            .max(per(self.flip_flops, device.flip_flops))
            .max(per(self.brams, device.brams))
            .max(1)
    }
}

impl fmt::Display for ResourceUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} BRAMs, {} I/O",
            self.luts, self.flip_flops, self.brams, self.io_pins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_ordering() {
        assert!(DeviceModel::xc2v1000().luts() < DeviceModel::xc2v3000().luts());
        assert!(DeviceModel::xc2v3000().luts() < DeviceModel::xc2v6000().luts());
        assert!(DeviceModel::xc2v6000().luts() < DeviceModel::xc2v8000().luts());
    }

    #[test]
    fn fits_and_utilization() {
        let dev = DeviceModel::xc2v1000();
        let small = ResourceUse {
            luts: 1000,
            flip_flops: 500,
            brams: 2,
            io_pins: 40,
        };
        assert!(small.fits(&dev));
        assert!((small.utilization(&dev) - 1000.0 / 10_240.0).abs() < 1e-12);
        let big = ResourceUse {
            luts: 20_000,
            ..small
        };
        assert!(!big.fits(&dev));
        assert_eq!(big.min_devices(&dev), 2);
    }

    #[test]
    fn min_devices_respects_all_classes() {
        let dev = DeviceModel::xc2v1000();
        let bram_bound = ResourceUse {
            luts: 100,
            flip_flops: 100,
            brams: 90,
            io_pins: 10,
        };
        assert_eq!(bram_bound.min_devices(&dev), 3); // 90 / 40 → 3
    }

    #[test]
    fn display_strings() {
        assert!(DeviceModel::xc2v6000().to_string().contains("XC2V6000"));
        let r = ResourceUse::default();
        assert!(r.to_string().contains("LUTs"));
    }
}
