//! Multi-device partitioning for designs that exceed one FPGA.
//!
//! The paper's closing discussion singles out FPGA capacity as the main
//! obstacle for power-emulating large instrumented designs. This module
//! implements the standard engineering answer: split the mapped netlist
//! across several devices and pay for the cut with inter-chip signal
//! multiplexing (the virtual-wires model), which divides the achievable
//! emulation clock.

use crate::device::{DeviceModel, ResourceUse};
use crate::lut::LutNetlist;

/// Result of partitioning a mapped netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// Number of devices used.
    pub devices: u32,
    /// Per-device resource demand.
    pub per_device: Vec<ResourceUse>,
    /// Nets crossing device boundaries.
    pub cut_nets: u32,
    /// Clock division factor imposed by inter-chip multiplexing
    /// (1 = no penalty).
    pub clock_divisor: u32,
    /// Partition index of every LUT.
    pub lut_partition: Vec<u32>,
    /// Partition index of every flip-flop.
    pub ff_partition: Vec<u32>,
    /// Partition index of every BRAM group.
    pub bram_partition: Vec<u32>,
}

impl PartitionResult {
    /// Effective emulation clock after the multiplexing penalty.
    pub fn effective_fmax_mhz(&self, fmax_mhz: f64) -> f64 {
        fmax_mhz / self.clock_divisor as f64
    }
}

/// Error when partitioning cannot succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionError {
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "partitioning failed: {}", self.reason)
    }
}

impl std::error::Error for PartitionError {}

/// Greedily partitions the netlist onto identical `device`s, filling each
/// to `fill_fraction` of capacity in topological order (which keeps
/// connected logic together — emitted order follows dataflow). Returns an
/// error if more than `max_devices` would be required.
///
/// Cut accounting: a net whose driver and at least one consumer live in
/// different partitions crosses the boundary once per *driving* partition
/// (signals are broadcast on the inter-chip bus). The clock divisor is
/// `1 + ceil(cut / io_budget)` where the I/O budget is the sum of pins the
/// devices can dedicate to inter-chip links (half of user I/O).
///
/// # Errors
///
/// Fails when a single cell exceeds device capacity or `max_devices` is
/// insufficient.
pub fn partition(
    netlist: &LutNetlist,
    device: &DeviceModel,
    max_devices: u32,
    fill_fraction: f64,
) -> Result<PartitionResult, PartitionError> {
    let lut_cap = (device.luts() as f64 * fill_fraction) as u32;
    let ff_cap = (device.flip_flops() as f64 * fill_fraction) as u32;
    let bram_cap = (device.brams() as f64 * fill_fraction) as u32;
    if lut_cap == 0 || ff_cap == 0 {
        return Err(PartitionError {
            reason: "device capacity too small".into(),
        });
    }
    for bram in netlist.brams() {
        if bram.blocks > bram_cap.max(1) {
            return Err(PartitionError {
                reason: format!(
                    "one memory needs {} BRAMs, device offers {bram_cap}",
                    bram.blocks
                ),
            });
        }
    }

    let mut per_device: Vec<ResourceUse> = vec![ResourceUse::default()];
    let mut current: u32 = 0;
    let advance = |per_device: &mut Vec<ResourceUse>, current: &mut u32| {
        *current += 1;
        per_device.push(ResourceUse::default());
    };

    // Assign in stored (topological / dataflow) order.
    let mut lut_partition = Vec::with_capacity(netlist.luts().len());
    for _lut in netlist.luts() {
        if per_device[current as usize].luts + 1 > lut_cap {
            advance(&mut per_device, &mut current);
        }
        per_device[current as usize].luts += 1;
        lut_partition.push(current);
    }
    // Flip-flops fill devices in stored order (emission order follows
    // dataflow, which keeps most flip-flops near their drivers), never
    // beyond capacity.
    let mut ff_partition = Vec::with_capacity(netlist.ffs().len());
    let mut ff_cursor: u32 = 0;
    for _ff in netlist.ffs() {
        while per_device
            .get(ff_cursor as usize)
            .is_some_and(|r| r.flip_flops + 1 > ff_cap)
        {
            ff_cursor += 1;
            if ff_cursor as usize >= per_device.len() {
                per_device.push(ResourceUse::default());
            }
        }
        if ff_cursor as usize >= per_device.len() {
            per_device.push(ResourceUse::default());
        }
        per_device[ff_cursor as usize].flip_flops += 1;
        ff_partition.push(ff_cursor);
    }
    let mut bram_partition = Vec::with_capacity(netlist.brams().len());
    let mut bram_cursor: u32 = 0;
    for bram in netlist.brams() {
        while per_device
            .get(bram_cursor as usize)
            .is_some_and(|r| r.brams + bram.blocks > bram_cap)
        {
            bram_cursor += 1;
            if bram_cursor as usize >= per_device.len() {
                per_device.push(ResourceUse::default());
            }
        }
        if bram_cursor as usize >= per_device.len() {
            per_device.push(ResourceUse::default());
        }
        per_device[bram_cursor as usize].brams += bram.blocks;
        bram_partition.push(bram_cursor);
    }

    let devices = per_device.len() as u32;
    if devices > max_devices {
        return Err(PartitionError {
            reason: format!("needs {devices} devices, limit is {max_devices}"),
        });
    }

    // Cut counting: driver partition per net, then consumers elsewhere.
    let nets = netlist.net_count();
    let mut driver_part: Vec<Option<u32>> = vec![None; nets];
    for (i, lut) in netlist.luts().iter().enumerate() {
        driver_part[lut.output.index()] = Some(lut_partition[i]);
    }
    for (i, ff) in netlist.ffs().iter().enumerate() {
        driver_part[ff.q.index()] = Some(ff_partition[i]);
    }
    for (i, bram) in netlist.brams().iter().enumerate() {
        for n in &bram.rdata {
            driver_part[n.index()] = Some(bram_partition[i]);
        }
    }
    let mut crosses: Vec<bool> = vec![false; nets];
    let mark = |n: pe_gate::netlist::NetId, part: u32, crosses: &mut Vec<bool>| {
        if let Some(dp) = driver_part[n.index()] {
            if dp != part {
                crosses[n.index()] = true;
            }
        }
    };
    for (i, lut) in netlist.luts().iter().enumerate() {
        for &n in &lut.inputs {
            mark(n, lut_partition[i], &mut crosses);
        }
    }
    for (i, ff) in netlist.ffs().iter().enumerate() {
        mark(ff.d, ff_partition[i], &mut crosses);
    }
    for (i, bram) in netlist.brams().iter().enumerate() {
        for n in bram
            .raddr
            .iter()
            .chain(&bram.waddr)
            .chain(&bram.wdata)
            .chain(std::iter::once(&bram.wen))
        {
            mark(*n, bram_partition[i], &mut crosses);
        }
    }
    let cut_nets = crosses.iter().filter(|&&c| c).count() as u32;

    let io_budget = (device.io_pins() / 2).max(1) * devices.max(1);
    let clock_divisor = if devices <= 1 || cut_nets == 0 {
        1
    } else {
        1 + cut_nets.div_ceil(io_budget)
    };

    Ok(PartitionResult {
        devices,
        per_device,
        cut_nets,
        clock_divisor,
        lut_partition,
        ff_partition,
        bram_partition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::map_to_luts;
    use pe_gate::expand::expand_design;
    use pe_rtl::builder::DesignBuilder;

    fn chain_design(stages: u32) -> pe_rtl::Design {
        let mut b = DesignBuilder::new("chain");
        let clk = b.clock("clk");
        let mut cur = b.input("x", 16);
        for i in 0..stages {
            let c = b.constant(((i + 1) as u64) & 0xFFFF, 16);
            let s = b.add(cur, c);
            let m = b.mul(s, c, 16);
            cur = b.pipeline_reg(&format!("st{i}"), m, 0, clk);
        }
        b.output("y", cur);
        b.finish().unwrap()
    }

    #[test]
    fn small_design_fits_one_device() {
        let mapped = map_to_luts(&expand_design(&chain_design(2)).netlist);
        let part = partition(&mapped, &DeviceModel::xc2v6000(), 8, 0.9).unwrap();
        assert_eq!(part.devices, 1);
        assert_eq!(part.clock_divisor, 1);
        assert_eq!(part.cut_nets, 0);
        assert_eq!(part.effective_fmax_mhz(50.0), 50.0);
    }

    #[test]
    fn tiny_device_forces_partitioning() {
        let mapped = map_to_luts(&expand_design(&chain_design(6)).netlist);
        // A toy device with almost no LUTs.
        let tiny = DeviceModel::new("toy", 200, 400, 4, 64);
        let part = partition(&mapped, &tiny, 64, 1.0).unwrap();
        assert!(part.devices > 1, "devices = {}", part.devices);
        assert!(part.cut_nets > 0);
        assert!(part.clock_divisor >= 1);
        // Every per-device demand respects capacity.
        for r in &part.per_device {
            assert!(r.luts <= 200);
        }
    }

    #[test]
    fn device_limit_is_enforced() {
        let mapped = map_to_luts(&expand_design(&chain_design(6)).netlist);
        let tiny = DeviceModel::new("toy", 64, 64, 4, 64);
        assert!(partition(&mapped, &tiny, 2, 1.0).is_err());
    }

    #[test]
    fn oversized_memory_is_rejected() {
        let mut b = DesignBuilder::new("big");
        let clk = b.clock("clk");
        let ra = b.input("ra", 12);
        let wa = b.input("wa", 12);
        let wd = b.input("wd", 32);
        let we = b.input("we", 1);
        let m = b.memory("m", 4096, 32, None, clk);
        b.connect_mem(m, ra, wa, wd, we);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        let tiny = DeviceModel::new("toy", 1000, 1000, 2, 64);
        assert!(partition(&mapped, &tiny, 8, 1.0).is_err());
    }
}
