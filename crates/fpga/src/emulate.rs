//! LUT-level execution and the emulation-time model.
//!
//! [`LutSimulator`] executes a mapped netlist cycle-accurately, which lets
//! the test suite verify that technology mapping preserved behaviour
//! bit-for-bit against the RTL simulator — our stand-in for bring-up on the
//! physical platform.
//!
//! [`EmulationTimeModel`] computes the quantity the paper reports in
//! Figure 3 for the emulation bars: the time to exercise the testbench on
//! the platform. Following the paper's methodology ("an estimate of power
//! emulation time was computed by measuring the time required to simulate
//! the testbench … and the time to run the design on a PC-based emulation
//! platform"), the estimate is
//!
//! ```text
//! T = cycles / f_emu + cycles × host_overhead
//! ```
//!
//! with the synthesis/place-and-route time reported separately (one-time
//! compile cost, excluded from the per-run comparison exactly as the
//! paper excludes it).

use crate::lut::LutNetlist;
use crate::timing::TimingReport;
use pe_util::PortError;
use std::time::Duration;

/// Cycle-accurate simulator for a mapped netlist.
#[derive(Debug)]
pub struct LutSimulator<'a> {
    netlist: &'a LutNetlist,
    values: Vec<bool>,
    mem_state: Vec<Vec<u64>>,
    dirty: bool,
    cycle: u64,
    settles: u64,
}

impl<'a> LutSimulator<'a> {
    /// Creates a simulator with flip-flops and BRAMs at their power-on
    /// values.
    pub fn new(netlist: &'a LutNetlist) -> Self {
        let mut values = vec![false; netlist.net_count()];
        for ff in netlist.ffs() {
            values[ff.q.index()] = ff.init;
        }
        let mem_state = netlist.brams().iter().map(|b| b.init.clone()).collect();
        Self {
            netlist,
            values,
            mem_state,
            dirty: true,
            cycle: 0,
            settles: 0,
        }
    }

    /// Number of clock edges stepped.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of LUT-network settle passes performed so far.
    pub fn settle_count(&self) -> u64 {
        self.settles
    }

    /// Observes this simulator's run counters into `registry`
    /// (`fpga.cycles`, `fpga.settle_passes` histograms). Call once at
    /// the end of a run.
    pub fn record_metrics(&self, registry: &pe_trace::Registry) {
        registry.histogram("fpga.cycles").observe(self.cycle);
        registry
            .histogram("fpga.settle_passes")
            .observe(self.settles);
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.settles += 1;
        for lut in self.netlist.luts() {
            let mut packed = 0u32;
            for (k, &n) in lut.inputs.iter().enumerate() {
                packed |= (self.values[n.index()] as u32) << k;
            }
            self.values[lut.output.index()] = lut.eval(packed);
        }
        self.dirty = false;
    }

    /// Drives an input bus by port name.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if the port does not exist, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    pub fn try_set_input(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        let nets = self
            .netlist
            .inputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?;
        if nets.len() < 64 && value >= (1u64 << nets.len()) {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: nets.len() as u32,
            });
        }
        for (i, net) in nets.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            if self.values[net.index()] != bit {
                self.values[net.index()] = bit;
                self.dirty = true;
            }
        }
        Ok(())
    }

    /// Drives an input bus by port name.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the value does not fit.
    pub fn set_input(&mut self, name: &str, value: u64) {
        self.try_set_input(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Reads an output bus by port name (settling first).
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if the port does not exist.
    pub fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        self.settle();
        let nets = self
            .netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        Ok(nets
            .iter()
            .enumerate()
            .map(|(i, net)| (self.values[net.index()] as u64) << i)
            .sum())
    }

    /// Reads an output bus by port name (settling first).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&mut self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    fn bus_value(&self, nets: &[pe_gate::netlist::NetId]) -> u64 {
        nets.iter()
            .enumerate()
            .map(|(i, n)| (self.values[n.index()] as u64) << i)
            .sum()
    }

    /// Advances one clock edge on all domains.
    pub fn step(&mut self) {
        self.settle();
        let new_q: Vec<bool> = self
            .netlist
            .ffs()
            .iter()
            .map(|ff| self.values[ff.d.index()])
            .collect();
        let mem_ops: Vec<(u64, Option<(usize, u64)>)> = self
            .netlist
            .brams()
            .iter()
            .enumerate()
            .map(|(mi, bram)| {
                let raddr = self.bus_value(&bram.raddr) as usize % bram.words as usize;
                let read = self.mem_state[mi][raddr];
                let write = if self.values[bram.wen.index()] {
                    let waddr = self.bus_value(&bram.waddr) as usize % bram.words as usize;
                    Some((waddr, self.bus_value(&bram.wdata)))
                } else {
                    None
                };
                (read, write)
            })
            .collect();
        for (ff, q) in self.netlist.ffs().iter().zip(new_q) {
            self.values[ff.q.index()] = q;
        }
        for (mi, (bram, (read, write))) in self.netlist.brams().iter().zip(mem_ops).enumerate() {
            for (i, net) in bram.rdata.iter().enumerate() {
                self.values[net.index()] = (read >> i) & 1 == 1;
            }
            if let Some((addr, data)) = write {
                self.mem_state[mi][addr] = data;
            }
        }
        self.dirty = true;
        self.cycle += 1;
    }
}

/// Parameters of the platform's runtime behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationTimeModel {
    /// Hard cap on the emulation clock (board/interface limit), MHz.
    pub fmax_cap_mhz: f64,
    /// Host-side time per emulated cycle when the testbench is
    /// co-simulated on the PC instead of mapped on-chip (seconds/cycle;
    /// 0 for an on-chip testbench).
    pub host_overhead_s_per_cycle: f64,
    /// Synthesis + place-and-route base time (seconds).
    pub compile_base_s: f64,
    /// Synthesis + place-and-route time per LUT (seconds).
    pub compile_per_lut_s: f64,
    /// Bitstream download time (seconds).
    pub download_s: f64,
    /// Host-side time per energy-readback transaction (seconds). Each
    /// transaction stalls the platform clock while the host drains the
    /// on-chip energy accumulators over the board interface.
    pub readback_s_per_batch: f64,
    /// Power samples drained per readback transaction. The lane-packed
    /// accumulator file buffers this many strobe-window samples on chip,
    /// so `ceil(samples / readback_lanes)` transactions suffice instead of
    /// one per sample.
    pub readback_lanes: u32,
}

impl Default for EmulationTimeModel {
    fn default() -> Self {
        Self {
            fmax_cap_mhz: 100.0,
            host_overhead_s_per_cycle: 0.0,
            compile_base_s: 45.0,
            compile_per_lut_s: 3.0e-3,
            download_s: 4.0,
            readback_s_per_batch: 2.0e-4,
            readback_lanes: 64,
        }
    }
}

impl EmulationTimeModel {
    /// Host time to drain `samples` power samples, batched
    /// [`readback_lanes`](Self::readback_lanes) at a time.
    pub fn readback_time_s(&self, samples: u64) -> f64 {
        samples.div_ceil(u64::from(self.readback_lanes.max(1))) as f64 * self.readback_s_per_batch
    }
}

/// The emulation-time estimate for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulationEstimate {
    /// Emulated cycles.
    pub cycles: u64,
    /// Emulation clock actually used (after caps and partition penalty),
    /// MHz.
    pub f_emu_mhz: f64,
    /// On-platform run time.
    pub run_time: Duration,
    /// Host-side testbench time.
    pub host_time: Duration,
    /// Power samples drained from the on-chip energy accumulators.
    pub samples: u64,
    /// Host-side time spent on batched energy readback.
    pub readback_time: Duration,
    /// Run + host + readback — the number comparable to a software
    /// estimator's wall time (the paper's Figure-3 emulation bar).
    pub total: Duration,
    /// One-time compile (synthesis + P&R) estimate, reported separately.
    pub compile_time: Duration,
    /// One-time bitstream download, reported separately.
    pub download_time: Duration,
}

impl EmulationEstimate {
    /// Emulated cycles per second of total time.
    pub fn cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.total.as_secs_f64().max(1e-12)
    }
}

/// Computes the emulation-time estimate for a mapped netlist.
///
/// `clock_divisor` comes from partitioning (1 for a single device). Energy
/// readback is assumed fully on-chip (no samples drained mid-run); use
/// [`estimate_emulation_time_with_samples`] when the host periodically
/// reads the energy accumulators.
pub fn estimate_emulation_time(
    netlist: &LutNetlist,
    timing: &TimingReport,
    model: &EmulationTimeModel,
    cycles: u64,
    clock_divisor: u32,
) -> EmulationEstimate {
    estimate_emulation_time_with_samples(netlist, timing, model, cycles, clock_divisor, 0)
}

/// Computes the emulation-time estimate when the host drains `samples`
/// power samples from the on-chip energy accumulators during the run.
///
/// With the lane-packed accumulator file, samples buffer on chip and ship
/// [`EmulationTimeModel::readback_lanes`] at a time:
///
/// ```text
/// T = cycles / f_emu + cycles × host_overhead
///       + ceil(samples / readback_lanes) × readback_s_per_batch
/// ```
///
/// At one sample per strobe window, `samples = cycles / strobe_period`, so
/// the readback term shrinks linearly with cycles-per-sample and by
/// another factor of `readback_lanes` from batching.
pub fn estimate_emulation_time_with_samples(
    netlist: &LutNetlist,
    timing: &TimingReport,
    model: &EmulationTimeModel,
    cycles: u64,
    clock_divisor: u32,
    samples: u64,
) -> EmulationEstimate {
    let f_emu = (timing.fmax_mhz / clock_divisor.max(1) as f64).min(model.fmax_cap_mhz);
    let run_s = cycles as f64 / (f_emu * 1e6);
    let host_s = cycles as f64 * model.host_overhead_s_per_cycle;
    let readback_s = model.readback_time_s(samples);
    let compile_s = model.compile_base_s + model.compile_per_lut_s * netlist.luts().len() as f64;
    EmulationEstimate {
        cycles,
        f_emu_mhz: f_emu,
        run_time: Duration::from_secs_f64(run_s),
        host_time: Duration::from_secs_f64(host_s),
        samples,
        readback_time: Duration::from_secs_f64(readback_s),
        total: Duration::from_secs_f64(run_s + host_s + readback_s),
        compile_time: Duration::from_secs_f64(compile_s),
        download_time: Duration::from_secs_f64(model.download_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::map_to_luts;
    use crate::timing::analyze_timing;
    use pe_gate::expand::expand_design;
    use pe_rtl::builder::DesignBuilder;
    use pe_sim::Simulator;
    use pe_util::rng::Xoshiro;

    #[test]
    fn named_bus_lookups_report_errors() {
        let mut b = DesignBuilder::new("p");
        let a = b.input("a", 4);
        let n = b.not(a);
        b.output("y", n);
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        let mut sim = LutSimulator::new(&mapped);
        assert_eq!(
            sim.try_set_input("nope", 0),
            Err(PortError::NoSuchInput("nope".into()))
        );
        assert_eq!(
            sim.try_set_input("a", 0x10),
            Err(PortError::ValueTooWide {
                port: "a".into(),
                value: 0x10,
                width: 4
            })
        );
        assert_eq!(
            sim.try_output("nope"),
            Err(PortError::NoSuchOutput("nope".into()))
        );
        sim.try_set_input("a", 0x5).unwrap();
        assert_eq!(sim.try_output("y"), Ok(0xA));
    }

    #[test]
    fn mapped_netlist_matches_rtl_bit_for_bit() {
        let mut b = DesignBuilder::new("mix");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let sum = b.add_wide(x, y);
        let low = b.slice(sum, 0, 8);
        let acc = b.register_named("acc", 8, 0, clk);
        let nxt = b.xor(acc.q(), low);
        b.connect_d(acc, nxt);
        let lt = b.lt(x, y);
        let sel = b.mux2(lt, acc.q(), low);
        let a3 = b.slice(x, 0, 3);
        let wen = b.input("we", 1);
        let m = b.memory("m", 8, 8, Some(vec![9; 8]), clk);
        b.connect_mem(m, a3, a3, sel, wen);
        b.output("acc", acc.q());
        b.output("sel", sel);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();

        let mapped = map_to_luts(&expand_design(&d).netlist);
        let mut lsim = LutSimulator::new(&mapped);
        let mut rsim = Simulator::new(&d).unwrap();
        let mut rng = Xoshiro::new(99);
        for _ in 0..300 {
            let (xv, yv, wv) = (rng.bits(8), rng.bits(8), rng.bits(1));
            lsim.set_input("x", xv);
            lsim.set_input("y", yv);
            lsim.set_input("we", wv);
            rsim.set_input_by_name("x", xv);
            rsim.set_input_by_name("y", yv);
            rsim.set_input_by_name("we", wv);
            for port in ["acc", "sel", "rd"] {
                assert_eq!(lsim.output(port), rsim.output(port), "{port}");
            }
            lsim.step();
            rsim.step();
        }
        assert_eq!(lsim.cycle(), 300);
    }

    #[test]
    fn emulation_time_scales_with_cycles_and_divisor() {
        let mut b = DesignBuilder::new("add");
        let clk = b.clock("clk");
        let x = b.input("a", 16);
        let y = b.input("b", 16);
        let s = b.add(x, y);
        let q = b.pipeline_reg("q", s, 0, clk);
        b.output("s", q);
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        let timing = analyze_timing(&mapped);
        let model = EmulationTimeModel::default();
        let e1 = estimate_emulation_time(&mapped, &timing, &model, 1_000_000, 1);
        let e2 = estimate_emulation_time(&mapped, &timing, &model, 2_000_000, 1);
        assert!((e2.total.as_secs_f64() / e1.total.as_secs_f64() - 2.0).abs() < 1e-9);
        let e_div = estimate_emulation_time(&mapped, &timing, &model, 1_000_000, 4);
        assert!(e_div.f_emu_mhz <= e1.f_emu_mhz / 3.9);
        // Compile time grows with area but is excluded from `total`.
        assert!(e1.compile_time.as_secs_f64() > model.compile_base_s);
        assert_eq!(e1.total, e1.run_time);
    }

    #[test]
    fn host_overhead_dominates_co_simulated_testbench() {
        let mut b = DesignBuilder::new("t");
        let clk = b.clock("clk");
        let x = b.input("a", 4);
        let q = b.pipeline_reg("q", x, 0, clk);
        b.output("q", q);
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        let timing = analyze_timing(&mapped);
        let model = EmulationTimeModel {
            host_overhead_s_per_cycle: 1e-6,
            ..EmulationTimeModel::default()
        };
        let e = estimate_emulation_time(&mapped, &timing, &model, 1_000_000, 1);
        assert!(e.host_time.as_secs_f64() >= 1.0);
        assert!(e.total > e.run_time);
        assert!(e.cycles_per_second() < 1.1e6);
    }

    #[test]
    fn readback_batching_follows_cycles_per_sample_formula() {
        let mut b = DesignBuilder::new("t");
        let clk = b.clock("clk");
        let x = b.input("a", 4);
        let q = b.pipeline_reg("q", x, 0, clk);
        b.output("q", q);
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        let timing = analyze_timing(&mapped);
        let model = EmulationTimeModel::default();

        // Pin the formula itself: ceil(samples / lanes) batches.
        assert_eq!(model.readback_time_s(0), 0.0);
        assert_eq!(model.readback_time_s(1), model.readback_s_per_batch);
        assert_eq!(model.readback_time_s(64), model.readback_s_per_batch);
        assert_eq!(model.readback_time_s(65), 2.0 * model.readback_s_per_batch);
        let unbatched = EmulationTimeModel {
            readback_lanes: 1,
            ..model
        };
        // Lane packing shrinks readback host time by exactly the lane count.
        assert_eq!(
            unbatched.readback_time_s(6400),
            64.0 * model.readback_time_s(6400)
        );

        let cycles = 1_000_000u64;
        let est = |strobe_period: u64| {
            estimate_emulation_time_with_samples(
                &mapped,
                &timing,
                &model,
                cycles,
                1,
                cycles.div_ceil(strobe_period),
            )
        };
        // Readback time is additive on top of the sample-free estimate.
        let free = estimate_emulation_time(&mapped, &timing, &model, cycles, 1);
        let e16 = est(16);
        assert_eq!(e16.samples, 62_500);
        assert!(
            (e16.total.as_secs_f64()
                - free.total.as_secs_f64()
                - model.readback_time_s(e16.samples))
            .abs()
                < 1e-12
        );
        // Table-2 shape: emulated throughput (≈ speedup over a fixed
        // software simulator) grows monotonically with cycles-per-sample
        // and saturates at the readback-free bound.
        let mut last = 0.0;
        for strobe in [1u64, 4, 16, 64, 256, 1024, 4096, 16384] {
            let e = est(strobe);
            let cps = e.cycles_per_second();
            assert!(cps > last, "strobe {strobe}: {cps} !> {last}");
            last = cps;
        }
        assert!(last <= free.cycles_per_second());
        assert!(last > 0.9 * free.cycles_per_second());
    }
}
