//! The simulated FPGA emulation platform.
//!
//! The original flow synthesized the enhanced RTL with Synplify Pro,
//! placed-and-routed it with Xilinx tools, and executed it on a PC-based
//! Virtex-II emulation platform. None of that tooling (nor the silicon) is
//! available here, so this crate *simulates the platform itself*, end to
//! end:
//!
//! * [`device`] — Virtex-II-class device capacity models (LUTs,
//!   flip-flops, block RAMs, user I/O) for the family the paper used.
//! * [`lut`] — technology mapping of a gate netlist into 4-input LUTs
//!   (greedy single-fanout cone packing with constant folding), flip-flops
//!   and block-RAM macros.
//! * [`timing`] — unit-delay + fanout wire model static timing analysis
//!   over the mapped netlist, yielding the achievable emulation clock.
//! * [`partition`] — greedy topological multi-device partitioning with a
//!   cut-based clock penalty, for designs that exceed one device
//!   (the capacity concern the paper's closing section raises).
//! * [`emulate`] — a LUT-level functional simulator (used to verify that
//!   mapping preserved behaviour bit-for-bit) and the emulation-time
//!   model: `T = cycles / f_emu + host-side testbench time`, matching the
//!   paper's methodology of estimating emulation time from testbench
//!   simulation plus platform execution.
//!
//! # Example
//!
//! ```
//! use pe_rtl::builder::DesignBuilder;
//! use pe_gate::expand::expand_design;
//! use pe_fpga::lut::map_to_luts;
//! use pe_fpga::timing::analyze_timing;
//!
//! let mut b = DesignBuilder::new("add");
//! let x = b.input("a", 8);
//! let y = b.input("b", 8);
//! let s = b.add_wide(x, y);
//! b.output("s", s);
//! let design = b.finish().unwrap();
//!
//! let mapped = map_to_luts(&expand_design(&design).netlist);
//! let timing = analyze_timing(&mapped);
//! assert!(timing.fmax_mhz > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod emulate;
pub mod lut;
pub mod partition;
pub mod timing;
pub mod wide;

pub use wide::WideLutSimulator;
