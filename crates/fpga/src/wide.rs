//! Bit-parallel lane-word execution of a mapped LUT netlist.
//!
//! [`WideLutSimulator`] mirrors [`crate::emulate::LutSimulator`] with one
//! [`LaneWord`] per net (lane `l` = lane `l`'s value), the same lane
//! packing as the wide RTL and gate engines, at 1/64/128/256 lanes. Each
//! K-input LUT evaluates over all lanes by folding its truth table as a
//! mux tree of word ops: the 2^K constant truth rows collapse pairwise on
//! each input's slice (`new[e] = (!x & old[2e]) | (x & old[2e+1])`),
//! costing ~2^K word ops per LUT instead of `W::LANES` serial table
//! lookups. This is the closest software analogue of what the FPGA itself
//! does — every LUT in the fabric evaluates simultaneously; here every
//! *lane* of each LUT does.

use crate::lut::LutNetlist;
use pe_gate::netlist::NetId;
use pe_util::lanes::LaneWord;
use pe_util::PortError;

/// Pending BRAM commit: the read-out lanes plus, when any lane wrote,
/// the per-lane write address/data and the write-enable mask.
type MemOp<W> = (Vec<u64>, Option<(Vec<u64>, Vec<u64>, W)>);

/// Cycle-accurate, lane-word-parallel simulator for a mapped netlist.
#[derive(Debug)]
pub struct WideLutSimulator<'a, W: LaneWord = u64> {
    netlist: &'a LutNetlist,
    values: Vec<W>,
    /// Per-BRAM backing store, `state[word * W::LANES + lane]`.
    mem_state: Vec<Vec<u64>>,
    dirty: bool,
    cycle: u64,
}

impl<'a, W: LaneWord> WideLutSimulator<'a, W> {
    /// Creates a simulator with every lane at power-on state.
    pub fn new(netlist: &'a LutNetlist) -> Self {
        let mut values = vec![W::zero(); netlist.net_count()];
        for ff in netlist.ffs() {
            values[ff.q.index()] = W::splat(ff.init);
        }
        let mem_state = netlist
            .brams()
            .iter()
            .map(|b| {
                let mut state = vec![0u64; b.words as usize * W::LANES];
                for (w, &v) in b.init.iter().enumerate() {
                    state[w * W::LANES..(w + 1) * W::LANES].fill(v);
                }
                state
            })
            .collect();
        Self {
            netlist,
            values,
            mem_state,
            dirty: true,
            cycle: 0,
        }
    }

    /// Number of clock edges stepped (shared by all lanes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of lanes this instantiation evaluates per pass.
    pub fn lanes(&self) -> usize {
        W::LANES
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        for lut in self.netlist.luts() {
            let k = lut.inputs.len();
            // Fold the truth table over the input slices: start from the
            // 2^k constant rows (all-0 / all-1 words) and halve per input.
            let mut rows = [W::zero(); 16];
            let n = 1usize << k;
            for (e, row) in rows.iter_mut().enumerate().take(n) {
                *row = W::splat((lut.truth >> e) & 1 == 1);
            }
            let mut size = n;
            for &input in &lut.inputs {
                let x = self.values[input.index()];
                size /= 2;
                for e in 0..size {
                    rows[e] = W::blend(x, rows[2 * e + 1], rows[2 * e]);
                }
            }
            self.values[lut.output.index()] = rows[0];
        }
        self.dirty = false;
    }

    /// Drives an input bus in one lane.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if the port does not exist, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn try_set_input_lane(
        &mut self,
        name: &str,
        lane: usize,
        value: u64,
    ) -> Result<(), PortError> {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        let nets = self
            .netlist
            .inputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?;
        if nets.len() < 64 && value >= (1u64 << nets.len()) {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: nets.len() as u32,
            });
        }
        for (i, net) in nets.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            let cur = self.values[net.index()];
            let mut new = cur;
            new.set_lane(lane, bit);
            if new != cur {
                self.values[net.index()] = new;
                self.dirty = true;
            }
        }
        Ok(())
    }

    /// Drives an input bus in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist, the value does not fit, or
    /// `lane >= W::LANES`.
    pub fn set_input_lane(&mut self, name: &str, lane: usize, value: u64) {
        self.try_set_input_lane(name, lane, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Reads an output bus in one lane (settling first).
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if the port does not exist.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn try_output_lane(&mut self, name: &str, lane: usize) -> Result<u64, PortError> {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        self.settle();
        let nets = self
            .netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.clone())
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        Ok(nets
            .iter()
            .enumerate()
            .map(|(i, net)| (self.values[net.index()].lane(lane) as u64) << i)
            .sum())
    }

    /// Reads an output bus in one lane (settling first).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `lane >= W::LANES`.
    pub fn output_lane(&mut self, name: &str, lane: usize) -> u64 {
        self.try_output_lane(name, lane)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn bus_lanes(&self, nets: &[NetId], lanes: &mut [u64]) {
        let mut tmp = [W::zero(); 64];
        for (i, n) in nets.iter().enumerate() {
            tmp[i] = self.values[n.index()];
        }
        pe_util::lanes::unpack::<W>(&tmp[..nets.len()], lanes);
    }

    /// Advances one clock edge on all domains in every lane.
    pub fn step(&mut self) {
        self.settle();
        let new_q: Vec<W> = self
            .netlist
            .ffs()
            .iter()
            .map(|ff| self.values[ff.d.index()])
            .collect();
        let mem_ops: Vec<MemOp<W>> = self
            .netlist
            .brams()
            .iter()
            .enumerate()
            .map(|(mi, bram)| {
                let words = bram.words as usize;
                let mut raddr = vec![0u64; W::LANES];
                self.bus_lanes(&bram.raddr, &mut raddr);
                let state = &self.mem_state[mi];
                let mut read = vec![0u64; W::LANES];
                for (l, r) in read.iter_mut().enumerate() {
                    *r = state[(raddr[l] as usize % words) * W::LANES + l];
                }
                let wen = self.values[bram.wen.index()];
                let write = if !wen.is_zero() {
                    let mut waddr = vec![0u64; W::LANES];
                    let mut wdata = vec![0u64; W::LANES];
                    self.bus_lanes(&bram.waddr, &mut waddr);
                    self.bus_lanes(&bram.wdata, &mut wdata);
                    Some((waddr, wdata, wen))
                } else {
                    None
                };
                (read, write)
            })
            .collect();
        for (ff, q) in self.netlist.ffs().iter().zip(new_q) {
            self.values[ff.q.index()] = q;
        }
        for (mi, (bram, (read, write))) in self.netlist.brams().iter().zip(mem_ops).enumerate() {
            for (i, net) in bram.rdata.iter().enumerate() {
                let mut slice = W::zero();
                for (l, r) in read.iter().enumerate() {
                    slice.set_lane(l, (r >> i) & 1 == 1);
                }
                self.values[net.index()] = slice;
            }
            if let Some((waddr, wdata, wen)) = write {
                let words = bram.words as usize;
                let state = &mut self.mem_state[mi];
                wen.for_each_lane(|l| {
                    state[(waddr[l] as usize % words) * W::LANES + l] = wdata[l];
                });
            }
        }
        self.dirty = true;
        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulate::LutSimulator;
    use crate::lut::map_to_luts;
    use pe_gate::expand::expand_design;
    use pe_rtl::builder::DesignBuilder;
    use pe_util::rng::Xoshiro;

    fn every_lane_matches_serial<W: LaneWord>() {
        let mut b = DesignBuilder::new("mix");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let sum = b.add_wide(x, y);
        let low = b.slice(sum, 0, 8);
        let acc = b.register_named("acc", 8, 0, clk);
        let nxt = b.xor(acc.q(), low);
        b.connect_d(acc, nxt);
        let lt = b.lt(x, y);
        let sel = b.mux2(lt, acc.q(), low);
        let a3 = b.slice(x, 0, 3);
        let wen = b.input("we", 1);
        let m = b.memory("m", 8, 8, Some(vec![9; 8]), clk);
        b.connect_mem(m, a3, a3, sel, wen);
        b.output("acc", acc.q());
        b.output("sel", sel);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();

        let mapped = map_to_luts(&expand_design(&d).netlist);
        let mut wide = WideLutSimulator::<W>::new(&mapped);
        let mut serials: Vec<LutSimulator<'_>> =
            (0..W::LANES).map(|_| LutSimulator::new(&mapped)).collect();
        let mut rng = Xoshiro::new(0x10A);
        for cycle in 0..80 {
            for (lane, serial) in serials.iter_mut().enumerate() {
                for (p, w) in [("x", 8), ("y", 8), ("we", 1)] {
                    let v = rng.bits(w);
                    wide.set_input_lane(p, lane, v);
                    serial.set_input(p, v);
                }
            }
            for (lane, serial) in serials.iter_mut().enumerate() {
                for port in ["acc", "sel", "rd"] {
                    assert_eq!(
                        wide.output_lane(port, lane),
                        serial.output(port),
                        "lanes {} cycle {cycle} lane {lane} port {port}",
                        W::LANES
                    );
                }
            }
            wide.step();
            for s in &mut serials {
                s.step();
            }
        }
    }

    #[test]
    fn every_lane_matches_a_serial_lut_run() {
        every_lane_matches_serial::<bool>();
        every_lane_matches_serial::<u64>();
        every_lane_matches_serial::<[u64; 2]>();
        every_lane_matches_serial::<[u64; 4]>();
    }
}
