//! Technology mapping into 4-input LUTs.
//!
//! The mapper consumes a [`pe_gate::netlist::GateNetlist`] and produces a
//! [`LutNetlist`]:
//!
//! 1. constants are folded (tie cells disappear into truth tables),
//!    buffers are eliminated by net aliasing;
//! 2. every remaining gate becomes a LUT;
//! 3. a greedy cone-packing pass repeatedly absorbs single-fanout fanin
//!    LUTs whenever the merged support stays within 4 inputs — the classic
//!    area-oriented packing heuristic.
//!
//! Flip-flops map one-to-one; SRAM macros map to 18-kbit block RAMs.

use crate::device::{DeviceModel, ResourceUse};
use pe_gate::netlist::{GateKind, GateNetlist, NetId};

/// A mapped 4-input lookup table. `truth` bit `i` gives the output for the
/// input assignment whose bit `k` is `(i >> k) & 1`. Zero-input LUTs are
/// constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut {
    /// Input nets (0 to 4).
    pub inputs: Vec<NetId>,
    /// Truth table over the inputs.
    pub truth: u16,
    /// Output net.
    pub output: NetId,
}

impl Lut {
    /// Evaluates the LUT for packed input bits (bit `k` = input `k`).
    #[inline]
    pub fn eval(&self, packed: u32) -> bool {
        (self.truth >> packed) & 1 == 1
    }
}

/// A mapped flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedFf {
    /// Data input net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
    /// Power-on value.
    pub init: bool,
    /// Clock domain index.
    pub clock: u32,
}

/// A mapped block-RAM group implementing one SRAM macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedBram {
    /// Read-address nets, LSB first.
    pub raddr: Vec<NetId>,
    /// Write-address nets, LSB first.
    pub waddr: Vec<NetId>,
    /// Write-data nets, LSB first.
    pub wdata: Vec<NetId>,
    /// Write-enable net.
    pub wen: NetId,
    /// Registered read-data nets, LSB first.
    pub rdata: Vec<NetId>,
    /// Words stored.
    pub words: u32,
    /// Initial contents.
    pub init: Vec<u64>,
    /// Clock domain index.
    pub clock: u32,
    /// Number of 18-kbit blocks consumed.
    pub blocks: u32,
}

/// A technology-mapped netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct LutNetlist {
    name: String,
    net_count: usize,
    luts: Vec<Lut>,
    ffs: Vec<MappedFf>,
    brams: Vec<MappedBram>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
}

impl LutNetlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total net space (nets indices remain those of the gate netlist).
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Mapped LUTs.
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// Mapped flip-flops.
    pub fn ffs(&self) -> &[MappedFf] {
        &self.ffs
    }

    /// Mapped block-RAM groups.
    pub fn brams(&self) -> &[MappedBram] {
        &self.brams
    }

    /// Input buses.
    pub fn inputs(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// Output buses.
    pub fn outputs(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Resource demand of the mapped netlist.
    pub fn resource_use(&self) -> ResourceUse {
        let io: usize = self
            .inputs
            .iter()
            .map(|(_, n)| n.len())
            .chain(self.outputs.iter().map(|(_, n)| n.len()))
            .sum();
        ResourceUse {
            luts: self.luts.len() as u32,
            flip_flops: self.ffs.len() as u32,
            brams: self.brams.iter().map(|b| b.blocks).sum(),
            io_pins: io as u32,
        }
    }
}

/// Maps a gate netlist into 4-input LUTs.
pub fn map_to_luts(netlist: &GateNetlist) -> LutNetlist {
    let nets = netlist.net_count();
    // Constant and alias resolution.
    let mut constant: Vec<Option<bool>> = vec![None; nets];
    let mut alias: Vec<NetId> = (0..nets as u32).map(NetId::from_raw).collect();
    fn resolve(alias: &[NetId], mut n: NetId) -> NetId {
        while alias[n.index()] != n {
            n = alias[n.index()];
        }
        n
    }

    /// Drops inputs the truth table does not actually depend on.
    fn minimize_support(inputs: &mut Vec<NetId>, truth: &mut u16) {
        let mut pos = 0;
        while pos < inputs.len() {
            let k = inputs.len();
            let invariant =
                (0..1u32 << k).all(|m| (*truth >> m) & 1 == (*truth >> (m ^ (1 << pos))) & 1);
            if invariant {
                // Remove variable `pos`, compacting the table.
                let mut new_truth: u16 = 0;
                let mut out_bit = 0;
                for m in 0..1u32 << k {
                    if (m >> pos) & 1 == 0 {
                        new_truth |= ((*truth >> m) & 1) << out_bit;
                        out_bit += 1;
                    }
                }
                *truth = new_truth;
                inputs.remove(pos);
            } else {
                pos += 1;
            }
        }
    }

    // Initial LUT construction in the gate netlist's (topological) order.
    // `driver[net]` = index into `luts`.
    let mut luts: Vec<Lut> = Vec::with_capacity(netlist.gates().len());
    let mut alive: Vec<bool> = Vec::with_capacity(netlist.gates().len());
    let mut driver: Vec<Option<u32>> = vec![None; nets];

    for gate in netlist.gates() {
        match gate.kind {
            GateKind::Tie0 => {
                constant[gate.output.index()] = Some(false);
                continue;
            }
            GateKind::Tie1 => {
                constant[gate.output.index()] = Some(true);
                continue;
            }
            _ => {}
        }
        let arity = gate.kind.arity();
        // Resolve inputs; split into constants and variables.
        let mut vars: Vec<NetId> = Vec::with_capacity(arity);
        let mut slots: Vec<Result<usize, bool>> = Vec::with_capacity(arity); // var index or const
        for slot in 0..arity {
            let net = resolve(&alias, gate.inputs[slot]);
            if let Some(c) = constant[net.index()] {
                slots.push(Err(c));
            } else {
                let idx = vars.iter().position(|&v| v == net).unwrap_or_else(|| {
                    vars.push(net);
                    vars.len() - 1
                });
                slots.push(Ok(idx));
            }
        }
        // Buffer elimination.
        if gate.kind == GateKind::Buf && slots.len() == 1 {
            match slots[0] {
                Ok(_) => {
                    alias[gate.output.index()] = vars[0];
                    continue;
                }
                Err(c) => {
                    constant[gate.output.index()] = Some(c);
                    continue;
                }
            }
        }
        // Truth table over the variable support.
        let k = vars.len();
        let mut truth: u16 = 0;
        for m in 0..(1u32 << k) {
            let val_of = |slot: &Result<usize, bool>| match slot {
                Ok(i) => (m >> i) & 1 == 1,
                Err(c) => *c,
            };
            let a = slots.first().map(&val_of).unwrap_or(false);
            let b = slots.get(1).map(&val_of).unwrap_or(false);
            let c = slots.get(2).map(&val_of).unwrap_or(false);
            if gate.kind.eval(a, b, c) {
                truth |= 1 << m;
            }
        }
        minimize_support(&mut vars, &mut truth);
        if vars.is_empty() {
            // Fully folded: the gate is a constant.
            constant[gate.output.index()] = Some(truth & 1 == 1);
            continue;
        }
        driver[gate.output.index()] = Some(luts.len() as u32);
        luts.push(Lut {
            inputs: vars,
            truth,
            output: gate.output,
        });
        alive.push(true);
    }

    // Reference counts over LUT outputs (consumers: LUT inputs, FF data,
    // BRAM ports, design outputs).
    let mut refs: Vec<u32> = vec![0; nets];
    let bump = |refs: &mut Vec<u32>, alias: &[NetId], n: NetId| {
        refs[resolve(alias, n).index()] += 1;
    };
    for lut in &luts {
        for &n in &lut.inputs {
            refs[n.index()] += 1; // already resolved
        }
    }
    for ff in netlist.dffs() {
        bump(&mut refs, &alias, ff.d);
    }
    for mem in netlist.mems() {
        for n in mem
            .raddr
            .iter()
            .chain(&mem.waddr)
            .chain(&mem.wdata)
            .chain(std::iter::once(&mem.wen))
        {
            bump(&mut refs, &alias, *n);
        }
    }
    for (_, bus) in netlist.outputs() {
        for &n in bus {
            bump(&mut refs, &alias, n);
        }
    }

    // Greedy cone packing: absorb fanin LUTs whenever the merged support
    // stays within 4 inputs. Single-fanout fanins disappear outright;
    // multi-fanout fanins are duplicated into the consumer and retired
    // once their last reference is absorbed (classic duplication-based
    // covering, which packs a full adder into 2 LUTs).
    for i in 0..luts.len() {
        if !alive[i] {
            continue;
        }
        let mut changed = true;
        while changed {
            changed = false;
            let inputs = luts[i].inputs.clone();
            for &inp in &inputs {
                let Some(b_idx) = driver[inp.index()] else {
                    continue;
                };
                let b_idx = b_idx as usize;
                if b_idx == i || !alive[b_idx] {
                    continue;
                }
                // Candidate support.
                let b_inputs = luts[b_idx].inputs.clone();
                let mut merged: Vec<NetId> = inputs.iter().copied().filter(|&n| n != inp).collect();
                for &bn in &b_inputs {
                    if !merged.contains(&bn) {
                        merged.push(bn);
                    }
                }
                if merged.len() > 4 {
                    continue;
                }
                // Recompute the truth table over the merged support.
                let mut truth: u16 = 0;
                for m in 0..(1u32 << merged.len()) {
                    let bit_of = |n: NetId| {
                        let idx = merged.iter().position(|&x| x == n).expect("in support");
                        (m >> idx) & 1
                    };
                    let b_packed: u32 = b_inputs
                        .iter()
                        .enumerate()
                        .map(|(k, &n)| bit_of(n) << k)
                        .sum();
                    let b_val = luts[b_idx].eval(b_packed);
                    let a_packed: u32 = luts[i]
                        .inputs
                        .iter()
                        .enumerate()
                        .map(|(k, &n)| {
                            let v = if n == inp { b_val as u32 } else { bit_of(n) };
                            v << k
                        })
                        .sum();
                    if luts[i].eval(a_packed) {
                        truth |= 1 << m;
                    }
                }
                minimize_support(&mut merged, &mut truth);
                // Commit: rewrite a, retire b if orphaned.
                for &n in &luts[i].inputs {
                    refs[n.index()] -= 1;
                }
                for &n in &merged {
                    refs[n.index()] += 1;
                }
                luts[i].inputs = merged;
                luts[i].truth = truth;
                if refs[inp.index()] == 0 {
                    alive[b_idx] = false;
                    driver[inp.index()] = None;
                    for &n in &b_inputs {
                        refs[n.index()] -= 1;
                    }
                }
                changed = true;
                break; // inputs changed; restart scan
            }
        }
    }

    // Materialize constants that are still referenced as 0-input LUTs.
    let mut final_luts: Vec<Lut> = luts
        .into_iter()
        .zip(alive)
        .filter_map(|(l, keep)| keep.then_some(l))
        .collect();
    let needs_const = |n: NetId, constant: &[Option<bool>]| constant[n.index()].is_some();
    let mut const_emitted: Vec<bool> = vec![false; nets];
    let emit_const =
        |n: NetId, constant: &[Option<bool>], emitted: &mut Vec<bool>, out: &mut Vec<Lut>| {
            if !emitted[n.index()] {
                emitted[n.index()] = true;
                out.push(Lut {
                    inputs: Vec::new(),
                    truth: if constant[n.index()] == Some(true) {
                        1
                    } else {
                        0
                    },
                    output: n,
                });
            }
        };

    let rsv = |n: NetId, alias: &Vec<NetId>| resolve(alias, n);
    let mut ffs = Vec::with_capacity(netlist.dffs().len());
    for ff in netlist.dffs() {
        let d = rsv(ff.d, &alias);
        if needs_const(d, &constant) {
            emit_const(d, &constant, &mut const_emitted, &mut final_luts);
        }
        ffs.push(MappedFf {
            d,
            q: ff.q,
            init: ff.init,
            clock: ff.clock,
        });
    }
    let mut brams = Vec::with_capacity(netlist.mems().len());
    for mem in netlist.mems() {
        let map_bus = |bus: &[NetId],
                       constant: &[Option<bool>],
                       emitted: &mut Vec<bool>,
                       out: &mut Vec<Lut>|
         -> Vec<NetId> {
            bus.iter()
                .map(|&n| {
                    let r = rsv(n, &alias);
                    if needs_const(r, constant) {
                        emit_const(r, constant, emitted, out);
                    }
                    r
                })
                .collect()
        };
        let raddr = map_bus(&mem.raddr, &constant, &mut const_emitted, &mut final_luts);
        let waddr = map_bus(&mem.waddr, &constant, &mut const_emitted, &mut final_luts);
        let wdata = map_bus(&mem.wdata, &constant, &mut const_emitted, &mut final_luts);
        let wen = {
            let r = rsv(mem.wen, &alias);
            if needs_const(r, &constant) {
                emit_const(r, &constant, &mut const_emitted, &mut final_luts);
            }
            r
        };
        let bits = mem.words as u64 * mem.wdata.len() as u64;
        brams.push(MappedBram {
            raddr,
            waddr,
            wdata,
            wen,
            rdata: mem.rdata.clone(),
            words: mem.words,
            init: mem.init.clone(),
            clock: mem.clock,
            blocks: bits.div_ceil(DeviceModel::BRAM_BITS).max(1) as u32,
        });
    }
    let outputs: Vec<(String, Vec<NetId>)> = netlist
        .outputs()
        .iter()
        .map(|(name, bus)| {
            let mapped = bus
                .iter()
                .map(|&n| {
                    let r = rsv(n, &alias);
                    if needs_const(r, &constant) {
                        emit_const(r, &constant, &mut const_emitted, &mut final_luts);
                    }
                    r
                })
                .collect();
            (name.clone(), mapped)
        })
        .collect();

    LutNetlist {
        name: netlist.name().to_string(),
        net_count: nets,
        luts: final_luts,
        ffs,
        brams,
        inputs: netlist.inputs().to_vec(),
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_gate::expand::expand_design;
    use pe_rtl::builder::DesignBuilder;

    #[test]
    fn adder_maps_to_few_luts() {
        let mut b = DesignBuilder::new("add");
        let x = b.input("a", 8);
        let y = b.input("b", 8);
        let s = b.add_wide(x, y);
        b.output("s", s);
        let d = b.finish().unwrap();
        let expanded = expand_design(&d);
        let mapped = map_to_luts(&expanded.netlist);
        // 40 gates must pack far below 40 LUTs (a full adder fits in
        // 2 LUTs: sum and carry are both 3-input functions).
        assert!(
            mapped.luts().len() <= 16,
            "expected ≤16 LUTs, got {}",
            mapped.luts().len()
        );
        assert!(mapped.luts().iter().all(|l| l.inputs.len() <= 4));
    }

    #[test]
    fn constants_fold_away() {
        let mut b = DesignBuilder::new("c");
        let x = b.input("a", 4);
        let zero = b.constant(0, 4);
        let s = b.and(x, zero); // constant 0
        b.output("s", s);
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        // Result folds to constant-0 LUTs (zero-input) only.
        assert!(mapped.luts().iter().all(|l| l.inputs.is_empty()));
    }

    #[test]
    fn registers_and_memories_survive_mapping() {
        let mut b = DesignBuilder::new("seq");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let q = b.pipeline_reg("q", x, 0, clk);
        let a3 = b.slice(x, 0, 3);
        let wen = b.input("we", 1);
        let m = b.memory("m", 8, 8, None, clk);
        b.connect_mem(m, a3, a3, q, wen);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        assert_eq!(mapped.ffs().len(), 8);
        assert_eq!(mapped.brams().len(), 1);
        assert_eq!(mapped.brams()[0].blocks, 1);
        let use_ = mapped.resource_use();
        assert_eq!(use_.flip_flops, 8);
        assert_eq!(use_.brams, 1);
        assert!(use_.io_pins >= 17);
    }

    #[test]
    fn large_memory_needs_multiple_brams() {
        let mut b = DesignBuilder::new("big");
        let clk = b.clock("clk");
        let ra = b.input("ra", 12);
        let wa = b.input("wa", 12);
        let wd = b.input("wd", 16);
        let we = b.input("we", 1);
        let m = b.memory("m", 4096, 16, None, clk);
        b.connect_mem(m, ra, wa, wd, we);
        b.output("rd", m.rdata());
        let d = b.finish().unwrap();
        let mapped = map_to_luts(&expand_design(&d).netlist);
        // 4096 × 16 = 64 Kbit → 4 blocks of 18 Kbit.
        assert_eq!(mapped.brams()[0].blocks, 4);
    }
}
