//! The optimization pipeline over the tape IR.
//!
//! Three passes, run in order by [`optimize`], each re-proven
//! well-formed by `verify::check_program` before its result is kept
//! (a pass that produces an ill-formed program is reverted and the
//! pipeline stops — the translation validator then decides whether
//! what remains is servable):
//!
//! 1. **`fold-forward`** — copy propagation and constant folding past
//!    the compiler's cone folding, expressed as a per-plane
//!    substitution map: AND/OR/XOR identities against the reserved
//!    zero/one planes, idempotent gates, muxes with constant selects or
//!    identical legs, comparisons of identical or fully-constant
//!    operands, adds/subtracts/shifts by zero, and local value
//!    numbering (CSE) that coalesces instructions computing the same
//!    function of the same resolved planes. Substituted planes lose
//!    every reference (pools, alias maps, sequential captures are
//!    rewritten through the map), so their producers become dead.
//! 2. **`die-compact`** — dead-instruction elimination and plane
//!    compaction: a reverse liveness walk from the observability roots
//!    (every signal's alias map, every sequential capture) drops
//!    instructions no live plane depends on, then rebuilds the operand
//!    pools, side tables, select-mask arena, and plane numbering from
//!    scratch — re-deriving every dense-run fast path (`AddD`/`SubD`,
//!    mux leg runs, register capture runs) on the compacted layout.
//! 3. **`schedule`** — plane-locality list scheduling: instructions are
//!    reordered within their RAW/WAR/WAW hazard partial order (mask
//!    arena slots modelled as virtual planes, so `SelMasks` stays ahead
//!    of its muxes) greedily picking the ready instruction whose
//!    destination is nearest the previously issued one, keeping the
//!    interpreter's plane accesses tight.

use crate::ir::{self, MASK_PLANE_BASE};
use crate::verify::{self, PassStat};
use crate::wide::{dense_base, leg_run, WInstr, WMaskGroup, WMux, WMux2, WideProgram, ONE, ZERO};

/// Runs the full pass pipeline in place, returning per-pass stats for
/// the certificate. Each pass's output must re-prove well-formed; a
/// pass that fails the proof is reverted and the pipeline stops early.
pub(crate) fn optimize(p: &mut WideProgram, widths: &[u32]) -> Vec<PassStat> {
    let pipeline: [(&'static str, Pass); 3] = [
        ("fold-forward", fold_forward),
        ("die-compact", die_compact),
        ("schedule", schedule),
    ];
    let mut stats = Vec::new();
    for (pass, run) in pipeline {
        let snapshot = p.clone();
        let (instructions_before, planes_before) = (p.instrs.len() as u64, u64::from(p.n_planes));
        run(p);
        if verify::check_program(p, widths).is_err() {
            *p = snapshot;
            break;
        }
        stats.push(PassStat {
            pass,
            instructions_before,
            instructions_after: p.instrs.len() as u64,
            planes_before,
            planes_after: u64::from(p.n_planes),
        });
    }
    stats
}

// ---------------------------------------------------------------------
// fold-forward
// ---------------------------------------------------------------------

/// Follows the substitution chain to its representative. Entries are
/// created already-resolved, so chains are short; the loop guards
/// against depth anyway.
fn resolve(subst: &[u32], mut x: u32) -> u32 {
    while subst[x as usize] != x {
        x = subst[x as usize];
    }
    x
}

/// The concrete value of a resolved plane vector when every plane is a
/// reserved constant.
fn const_val(planes: &[u32]) -> Option<u64> {
    let mut v = 0u64;
    for (i, &pl) in planes.iter().enumerate() {
        match pl {
            ZERO => {}
            ONE => v |= 1 << i,
            _ => return None,
        }
    }
    Some(v)
}

/// `value` as a vector of reserved constant planes.
fn const_planes(value: u64, w: u32) -> Vec<u32> {
    (0..w)
        .map(|i| if (value >> i) & 1 == 1 { ONE } else { ZERO })
        .collect()
}

/// A pipeline pass: rewrites the program in place.
type Pass = fn(&mut WideProgram);

/// Value-numbering key: instruction tag, resolved operand planes, and
/// the shape parameters (widths, counts, immediates) that must match
/// for two instructions to compute the same function.
type ValueKey = (u8, Vec<u32>, Vec<u32>);

fn sign_extend(v: u64, w: u32) -> i64 {
    let shift = 64 - w;
    ((v << shift) as i64) >> shift
}

fn fold_forward(p: &mut WideProgram) {
    de_densify(p);
    // Planes written by more than one instruction belong to n-ary
    // chains; their intermediate values are position-dependent and must
    // not be forwarded.
    let mut writes = vec![0u8; p.n_planes as usize];
    for i in 0..p.instrs.len() {
        let (dst, w) = ir::instr_def(p, i);
        if !ir::is_mask_plane(dst) {
            for pl in dst..dst + w {
                writes[pl as usize] = writes[pl as usize].saturating_add(1);
            }
        }
    }
    let mut subst: Vec<u32> = (0..p.n_planes).collect();
    // Value numbering: (tag, resolved operands, shape params) → def.
    let mut seen: std::collections::HashMap<ValueKey, (u32, u32)> =
        std::collections::HashMap::new();
    let mut res_a: Vec<u32> = Vec::new();
    let mut res_b: Vec<u32> = Vec::new();
    for i in 0..p.instrs.len() {
        let (dst, dw) = ir::instr_def(p, i);
        if ir::is_mask_plane(dst) || (dst..dst + dw).any(|pl| writes[pl as usize] > 1) {
            continue;
        }
        let rpool = |res: &mut Vec<u32>, off: u32, w: u32| {
            res.clear();
            res.extend(
                p.pool[off as usize..(off + w) as usize]
                    .iter()
                    .map(|&pl| resolve(&subst, pl)),
            );
        };
        // The forwarded planes for this instruction's destination run,
        // when a rule applies.
        let fwd: Option<Vec<u32>> = match p.instrs[i] {
            WInstr::Add { a, b, w, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                match (const_val(&res_a), const_val(&res_b)) {
                    (Some(va), Some(vb)) => Some(const_planes(va.wrapping_add(vb), w)),
                    (Some(0), _) => Some(res_b.clone()),
                    (_, Some(0)) => Some(res_a.clone()),
                    _ => None,
                }
            }
            WInstr::Sub { a, b, w, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                if res_a == res_b {
                    Some(vec![ZERO; w as usize])
                } else {
                    match (const_val(&res_a), const_val(&res_b)) {
                        (Some(va), Some(vb)) => Some(const_planes(va.wrapping_sub(vb), w)),
                        (_, Some(0)) => Some(res_a.clone()),
                        _ => None,
                    }
                }
            }
            WInstr::Neg { a, w, .. } => {
                rpool(&mut res_a, a, w);
                const_val(&res_a).map(|va| const_planes(va.wrapping_neg(), w))
            }
            WInstr::Mul { a, b, w, bw, .. } | WInstr::MulS { a, b, w, bw, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, bw);
                match (const_val(&res_a), const_val(&res_b)) {
                    (Some(0), _) | (_, Some(0)) => Some(vec![ZERO; w as usize]),
                    (Some(va), Some(vb)) => Some(const_planes(va.wrapping_mul(vb), w)),
                    (_, Some(1)) => Some(res_a.clone()),
                    (Some(1), _) => {
                        let mut legs = res_b.clone();
                        legs.resize(w as usize, ZERO);
                        Some(legs)
                    }
                    _ => None,
                }
            }
            WInstr::Eq { a, b, w, .. }
            | WInstr::Ne { a, b, w, .. }
            | WInstr::Lt { a, b, w, .. }
            | WInstr::Le { a, b, w, .. }
            | WInstr::SLt { a, b, w, .. }
            | WInstr::SLe { a, b, w, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                let tag = ir::instr_tag(&p.instrs[i]);
                let (cva, cvb) = (const_val(&res_a), const_val(&res_b));
                let max = pe_util::bits::mask(w);
                if res_a == res_b {
                    // x ⋈ x: reflexive relations hold, strict ones don't.
                    let hit = matches!(
                        p.instrs[i],
                        WInstr::Eq { .. } | WInstr::Le { .. } | WInstr::SLe { .. }
                    );
                    Some(vec![if hit { ONE } else { ZERO }])
                } else if let (Some(va), Some(vb)) = (cva, cvb) {
                    let hit = match tag {
                        7 => va == vb,
                        8 => va != vb,
                        9 => va < vb,
                        10 => va <= vb,
                        11 => sign_extend(va, w) < sign_extend(vb, w),
                        _ => sign_extend(va, w) <= sign_extend(vb, w),
                    };
                    Some(vec![if hit { ONE } else { ZERO }])
                } else {
                    // One-sided constants: signed compares against 0/-1
                    // reduce to the sign plane; unsigned compares
                    // against the range limits decide outright.
                    match tag {
                        // slt(a, 0) and sle(a, -1) are both "a is
                        // negative" — the sign bit.
                        11 if cvb == Some(0) => Some(vec![res_a[w as usize - 1]]),
                        12 if cvb == Some(max) => Some(vec![res_a[w as usize - 1]]),
                        9 if cvb == Some(0) || cva == Some(max) => Some(vec![ZERO]),
                        10 if cva == Some(0) || cvb == Some(max) => Some(vec![ONE]),
                        _ => None,
                    }
                }
            }
            WInstr::And2 { a, b, w, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                bitwise_fwd(&res_a, &res_b, |pa, pb| match (pa, pb) {
                    (ZERO, _) | (_, ZERO) => Some(ZERO),
                    (ONE, x) | (x, ONE) => Some(x),
                    (x, y) if x == y => Some(x),
                    _ => None,
                })
            }
            WInstr::Or2 { a, b, w, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                bitwise_fwd(&res_a, &res_b, |pa, pb| match (pa, pb) {
                    (ONE, _) | (_, ONE) => Some(ONE),
                    (ZERO, x) | (x, ZERO) => Some(x),
                    (x, y) if x == y => Some(x),
                    _ => None,
                })
            }
            WInstr::Xor2 { a, b, w, .. } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                bitwise_fwd(&res_a, &res_b, |pa, pb| match (pa, pb) {
                    (x, y) if x == y => Some(ZERO),
                    (ZERO, x) | (x, ZERO) => Some(x),
                    _ => None,
                })
            }
            WInstr::Not { a, w, .. } => {
                rpool(&mut res_a, a, w);
                if res_a.iter().all(|&pl| pl == ZERO || pl == ONE) {
                    Some(
                        res_a
                            .iter()
                            .map(|&pl| if pl == ZERO { ONE } else { ZERO })
                            .collect(),
                    )
                } else {
                    None
                }
            }
            WInstr::RedAnd { a, w, .. } => {
                rpool(&mut res_a, a, w);
                if res_a.contains(&ZERO) {
                    Some(vec![ZERO])
                } else if res_a.iter().all(|&pl| pl == ONE) {
                    Some(vec![ONE])
                } else if res_a.iter().all(|&pl| pl == res_a[0] || pl == ONE) {
                    Some(vec![res_a[0]])
                } else {
                    None
                }
            }
            WInstr::RedOr { a, w, .. } => {
                rpool(&mut res_a, a, w);
                if res_a.contains(&ONE) {
                    Some(vec![ONE])
                } else if res_a.iter().all(|&pl| pl == ZERO) {
                    Some(vec![ZERO])
                } else if res_a.iter().all(|&pl| pl == res_a[0] || pl == ZERO) {
                    Some(vec![res_a[0]])
                } else {
                    None
                }
            }
            WInstr::RedXor { a, w, .. } => {
                rpool(&mut res_a, a, w);
                if w == 1 {
                    Some(vec![res_a[0]])
                } else {
                    const_val(&res_a)
                        .map(|va| vec![if va.count_ones() % 2 == 1 { ONE } else { ZERO }])
                }
            }
            WInstr::Shl {
                a, amt, w, amt_w, ..
            }
            | WInstr::Shr {
                a, amt, w, amt_w, ..
            }
            | WInstr::Sar {
                a, amt, w, amt_w, ..
            } => {
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, amt, amt_w);
                if const_val(&res_b) == Some(0) {
                    Some(res_a.clone())
                } else if res_a.iter().all(|&pl| pl == ZERO) {
                    Some(vec![ZERO; w as usize])
                } else {
                    None
                }
            }
            WInstr::Mux2 { idx } => {
                let mx = &p.mux2s[idx as usize];
                rpool(&mut res_a, mx.sel, mx.sel_w);
                let (a, b, w) = (mx.a, mx.b, mx.w);
                let sel = const_val(&res_a);
                // With a single select plane the mux is a per-bit
                // blend of that plane: a (0,1) constant leg pair IS
                // the select.
                let sel_plane = (mx.sel_w == 1).then(|| res_a[0]);
                rpool(&mut res_a, a, w);
                rpool(&mut res_b, b, w);
                match sel {
                    // The serial engine OR-folds the select: any
                    // non-zero value picks leg b.
                    Some(0) => Some(res_a.clone()),
                    Some(_) => Some(res_b.clone()),
                    None => bitwise_fwd(&res_a, &res_b, |pa, pb| {
                        if pa == pb {
                            Some(pa)
                        } else if pa == ZERO && pb == ONE {
                            sel_plane
                        } else {
                            None
                        }
                    }),
                }
            }
            WInstr::MuxN { idx } => {
                let mx = &p.muxes[idx as usize];
                let g = &p.mask_groups[mx.group as usize];
                rpool(&mut res_a, g.sel, g.sel_w);
                let (legs, n, w) = (mx.legs, mx.n, mx.w);
                if let Some(sel) = const_val(&res_a) {
                    let leg = (sel.min(u64::from(n) - 1)) as u32;
                    rpool(&mut res_a, legs + leg * w, w);
                    Some(res_a.clone())
                } else {
                    // All legs agreeing on a bit makes that bit
                    // select-independent.
                    let mut agreed: Vec<u32> = Vec::with_capacity(w as usize);
                    'bits: for bit in 0..w {
                        let first = resolve(&subst, p.pool[(legs + bit) as usize]);
                        for leg in 1..n {
                            if resolve(&subst, p.pool[(legs + leg * w + bit) as usize]) != first {
                                break 'bits;
                            }
                        }
                        agreed.push(first);
                    }
                    (agreed.len() == w as usize).then_some(agreed)
                }
            }
            WInstr::Tbl { idx } => {
                let t = &p.tables[idx as usize];
                rpool(&mut res_a, t.addr, t.addr_w);
                match const_val(&res_a) {
                    Some(va) if (va as usize) < t.table.len() => {
                        Some(const_planes(t.table[va as usize], t.w))
                    }
                    _ => None,
                }
            }
            WInstr::AddD { .. } | WInstr::SubD { .. } | WInstr::SelMasks { .. } => None,
        };
        if let Some(planes) = fwd {
            debug_assert_eq!(planes.len(), dw as usize);
            for (bit, &target) in planes.iter().enumerate() {
                let from = dst + bit as u32;
                if target != from {
                    subst[from as usize] = target;
                }
            }
            continue;
        }
        // Value numbering over the plain computational ops.
        if let Some(key) = value_number_key(p, i, &subst) {
            match seen.get(&key) {
                Some(&(prev_dst, prev_w)) if prev_w == dw => {
                    for bit in 0..dw {
                        subst[(dst + bit) as usize] = prev_dst + bit;
                    }
                }
                Some(_) => {}
                None => {
                    seen.insert(key, (dst, dw));
                }
            }
        }
    }
    // Rewrite every reference through the substitution: operand pools,
    // the per-signal alias maps, and the sequential capture planes.
    // Destinations are never rewritten — a forwarded instruction still
    // executes (harmlessly) until die-compact removes it.
    for off in 0..p.pool.len() {
        p.pool[off] = resolve(&subst, p.pool[off]);
    }
    for entry in p.plane_map.iter_mut() {
        *entry = resolve(&subst, *entry);
    }
    for reg in p.regs.iter_mut() {
        if let Some(en) = reg.en {
            reg.en = Some(resolve(&subst, en));
        }
        reg.d_run = leg_run(&p.pool, reg.d, reg.w);
    }
    for mem in p.mems.iter_mut() {
        mem.wen = resolve(&subst, mem.wen);
    }
    // Derived fast-path metadata follows the rewritten pools.
    for mx in p.mux2s.iter_mut() {
        mx.a_run = leg_run(&p.pool, mx.a, mx.w);
        mx.b_run = leg_run(&p.pool, mx.b, mx.w);
    }
    for mx in p.muxes.iter_mut() {
        for d in 0..mx.n {
            p.leg_runs[(mx.runs + d) as usize] = leg_run(&p.pool, mx.legs + d * mx.w, mx.w);
        }
    }
}

/// Per-bit forwarding over a binary bitwise op: `rule` decides each
/// bit from its two resolved operand planes; all bits must decide.
fn bitwise_fwd(a: &[u32], b: &[u32], rule: impl Fn(u32, u32) -> Option<u32>) -> Option<Vec<u32>> {
    a.iter().zip(b).map(|(&pa, &pb)| rule(pa, pb)).collect()
}

/// The value-numbering key for plain computational instructions:
/// `(tag, resolved operand planes, shape params)`, with commutative
/// operand pairs order-normalized. Side-table and chain instructions
/// are not numbered.
fn value_number_key(p: &WideProgram, i: usize, subst: &[u32]) -> Option<(u8, Vec<u32>, Vec<u32>)> {
    let rp = |off: u32, w: u32| -> Vec<u32> {
        p.pool[off as usize..(off + w) as usize]
            .iter()
            .map(|&pl| resolve(subst, pl))
            .collect()
    };
    let tag = ir::instr_tag(&p.instrs[i]);
    match p.instrs[i] {
        WInstr::Add { a, b, w, .. } => {
            let (mut pa, pb) = (rp(a, w), rp(b, w));
            let mut pb = pb;
            if pb < pa {
                std::mem::swap(&mut pa, &mut pb);
            }
            pa.extend(pb);
            Some((tag, pa, vec![w]))
        }
        WInstr::Sub { a, b, w, .. } => {
            let mut pa = rp(a, w);
            pa.extend(rp(b, w));
            Some((tag, pa, vec![w]))
        }
        WInstr::Mul { a, b, w, bw, .. } | WInstr::MulS { a, b, w, bw, .. } => {
            let mut pa = rp(a, w);
            pa.extend(rp(b, bw));
            Some((tag, pa, vec![w, bw]))
        }
        WInstr::Neg { a, w, .. } | WInstr::Not { a, w, .. } => Some((tag, rp(a, w), vec![w])),
        WInstr::RedAnd { a, w, .. } | WInstr::RedOr { a, w, .. } | WInstr::RedXor { a, w, .. } => {
            Some((tag, rp(a, w), vec![w]))
        }
        WInstr::Eq { a, b, w, .. } | WInstr::Ne { a, b, w, .. } => {
            let (mut pa, mut pb) = (rp(a, w), rp(b, w));
            if pb < pa {
                std::mem::swap(&mut pa, &mut pb);
            }
            pa.extend(pb);
            Some((tag, pa, vec![w]))
        }
        WInstr::Lt { a, b, w, .. }
        | WInstr::Le { a, b, w, .. }
        | WInstr::SLt { a, b, w, .. }
        | WInstr::SLe { a, b, w, .. } => {
            let mut pa = rp(a, w);
            pa.extend(rp(b, w));
            Some((tag, pa, vec![w]))
        }
        WInstr::And2 { a, b, w, .. }
        | WInstr::Or2 { a, b, w, .. }
        | WInstr::Xor2 { a, b, w, .. } => {
            let (mut pa, mut pb) = (rp(a, w), rp(b, w));
            if pb < pa {
                std::mem::swap(&mut pa, &mut pb);
            }
            pa.extend(pb);
            Some((tag, pa, vec![w]))
        }
        WInstr::Shl {
            a, amt, w, amt_w, ..
        }
        | WInstr::Shr {
            a, amt, w, amt_w, ..
        }
        | WInstr::Sar {
            a, amt, w, amt_w, ..
        } => {
            let mut pa = rp(a, w);
            pa.extend(rp(amt, amt_w));
            Some((tag, pa, vec![w, amt_w]))
        }
        _ => None,
    }
}

/// Converts dense `AddD`/`SubD` operands back to pooled form so the
/// substitution machinery sees every operand uniformly; `die-compact`
/// re-derives the dense forms on the final layout.
fn de_densify(p: &mut WideProgram) {
    for i in 0..p.instrs.len() {
        let replace = match p.instrs[i] {
            WInstr::AddD { a, b, dst, w } => Some((false, a, b, dst, w)),
            WInstr::SubD { a, b, dst, w } => Some((true, a, b, dst, w)),
            _ => None,
        };
        if let Some((is_sub, a, b, dst, w)) = replace {
            let pa = p.pool.len() as u32;
            p.pool.extend(a..a + w);
            let pb = p.pool.len() as u32;
            p.pool.extend(b..b + w);
            p.instrs[i] = if is_sub {
                WInstr::Sub {
                    a: pa,
                    b: pb,
                    dst,
                    w,
                }
            } else {
                WInstr::Add {
                    a: pa,
                    b: pb,
                    dst,
                    w,
                }
            };
        }
    }
}

// ---------------------------------------------------------------------
// die-compact
// ---------------------------------------------------------------------

const DEAD: u32 = u32::MAX;

fn die_compact(p: &mut WideProgram) {
    // Reverse liveness from the observability roots: any signal can be
    // read through its alias map after settle, and the sequential
    // capture reads the D/address/data/enable pools.
    let n = p.n_planes as usize;
    let mut live = vec![false; n];
    let mut group_live = vec![false; p.mask_groups.len()];
    let mut uses = Vec::new();
    ir::root_uses(p, &mut uses);
    for &u in &uses {
        live[u as usize] = true;
    }
    let mut keep = vec![false; p.instrs.len()];
    for i in (0..p.instrs.len()).rev() {
        let (dst, w) = ir::instr_def(p, i);
        let is_live = if ir::is_mask_plane(dst) {
            match p.instrs[i] {
                WInstr::SelMasks { group } => group_live[group as usize],
                _ => unreachable!("only SelMasks defines mask planes"),
            }
        } else {
            (dst..dst + w).any(|pl| live[pl as usize])
        };
        if !is_live {
            continue;
        }
        keep[i] = true;
        if let WInstr::MuxN { idx } = p.instrs[i] {
            group_live[p.muxes[idx as usize].group as usize] = true;
        }
        uses.clear();
        ir::instr_uses(p, i, &mut uses);
        for &u in &uses {
            if !ir::is_mask_plane(u) {
                live[u as usize] = true;
            }
        }
    }
    // Plane renumbering: reserved and state planes survive wholesale
    // (their runs must stay contiguous), plus every destination of a
    // surviving instruction.
    let mut kept_plane = ir::state_planes(p);
    for (i, &k) in keep.iter().enumerate() {
        if !k {
            continue;
        }
        let (dst, w) = ir::instr_def(p, i);
        if !ir::is_mask_plane(dst) {
            for pl in dst..dst + w {
                kept_plane[pl as usize] = true;
            }
        }
    }
    let mut renumber = vec![DEAD; n];
    let mut next = 0u32;
    for (old, &k) in kept_plane.iter().enumerate() {
        if k {
            renumber[old] = next;
            next += 1;
        }
    }
    let map = |pl: u32| -> u32 {
        let new = renumber[pl as usize];
        debug_assert_ne!(new, DEAD, "live reference to dropped plane {pl}");
        new
    };
    // Rebuild pools, side tables, and the mask arena from scratch over
    // the surviving instructions, re-deriving every dense-run fast
    // path on the new layout.
    let old_pool = std::mem::take(&mut p.pool);
    let mut pool: Vec<u32> = Vec::new();
    let mut emit = |pool: &mut Vec<u32>, off: u32, w: u32| -> u32 {
        let new_off = pool.len() as u32;
        pool.extend(
            old_pool[off as usize..(off + w) as usize]
                .iter()
                .map(|&pl| map(pl)),
        );
        new_off
    };
    let mut instrs: Vec<WInstr> = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
    let mut mux2s: Vec<WMux2> = Vec::new();
    let mut muxes: Vec<WMux> = Vec::new();
    let mut mask_groups: Vec<WMaskGroup> = Vec::new();
    let mut leg_runs: Vec<(u32, u32)> = Vec::new();
    let mut tables = Vec::new();
    let mut group_map = vec![DEAD; p.mask_groups.len()];
    let mut masks_len = 0u32;
    for (i, &live) in keep.iter().enumerate() {
        if !live {
            continue;
        }
        let rebuilt = match p.instrs[i] {
            WInstr::Add { a, b, dst, w } => {
                rebuild_addsub(false, &mut pool, &mut emit, a, b, map(dst), w)
            }
            WInstr::Sub { a, b, dst, w } => {
                rebuild_addsub(true, &mut pool, &mut emit, a, b, map(dst), w)
            }
            WInstr::AddD { a, b, dst, w } => WInstr::AddD {
                a: map(a),
                b: map(b),
                dst: map(dst),
                w,
            },
            WInstr::SubD { a, b, dst, w } => WInstr::SubD {
                a: map(a),
                b: map(b),
                dst: map(dst),
                w,
            },
            WInstr::Mul { a, b, dst, w, bw } => WInstr::Mul {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, bw),
                dst: map(dst),
                w,
                bw,
            },
            WInstr::MulS { a, b, dst, w, bw } => WInstr::MulS {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, bw),
                dst: map(dst),
                w,
                bw,
            },
            WInstr::Neg { a, dst, w } => WInstr::Neg {
                a: emit(&mut pool, a, w),
                dst: map(dst),
                w,
            },
            WInstr::Eq { a, b, dst, w } => WInstr::Eq {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::Ne { a, b, dst, w } => WInstr::Ne {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::Lt { a, b, dst, w } => WInstr::Lt {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::Le { a, b, dst, w } => WInstr::Le {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::SLt { a, b, dst, w } => WInstr::SLt {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::SLe { a, b, dst, w } => WInstr::SLe {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::And2 { a, b, dst, w } => WInstr::And2 {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::Or2 { a, b, dst, w } => WInstr::Or2 {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::Xor2 { a, b, dst, w } => WInstr::Xor2 {
                a: emit(&mut pool, a, w),
                b: emit(&mut pool, b, w),
                dst: map(dst),
                w,
            },
            WInstr::Not { a, dst, w } => WInstr::Not {
                a: emit(&mut pool, a, w),
                dst: map(dst),
                w,
            },
            WInstr::RedAnd { a, dst, w } => WInstr::RedAnd {
                a: emit(&mut pool, a, w),
                dst: map(dst),
                w,
            },
            WInstr::RedOr { a, dst, w } => WInstr::RedOr {
                a: emit(&mut pool, a, w),
                dst: map(dst),
                w,
            },
            WInstr::RedXor { a, dst, w } => WInstr::RedXor {
                a: emit(&mut pool, a, w),
                dst: map(dst),
                w,
            },
            WInstr::Shl {
                a,
                amt,
                dst,
                w,
                amt_w,
            } => WInstr::Shl {
                a: emit(&mut pool, a, w),
                amt: emit(&mut pool, amt, amt_w),
                dst: map(dst),
                w,
                amt_w,
            },
            WInstr::Shr {
                a,
                amt,
                dst,
                w,
                amt_w,
            } => WInstr::Shr {
                a: emit(&mut pool, a, w),
                amt: emit(&mut pool, amt, amt_w),
                dst: map(dst),
                w,
                amt_w,
            },
            WInstr::Sar {
                a,
                amt,
                dst,
                w,
                amt_w,
            } => WInstr::Sar {
                a: emit(&mut pool, a, w),
                amt: emit(&mut pool, amt, amt_w),
                dst: map(dst),
                w,
                amt_w,
            },
            WInstr::Mux2 { idx } => {
                let mx = &p.mux2s[idx as usize];
                let sel = emit(&mut pool, mx.sel, mx.sel_w);
                let a = emit(&mut pool, mx.a, mx.w);
                let b = emit(&mut pool, mx.b, mx.w);
                mux2s.push(WMux2 {
                    sel,
                    sel_w: mx.sel_w,
                    a,
                    b,
                    a_run: leg_run(&pool, a, mx.w),
                    b_run: leg_run(&pool, b, mx.w),
                    dst: map(mx.dst),
                    w: mx.w,
                });
                WInstr::Mux2 {
                    idx: mux2s.len() as u32 - 1,
                }
            }
            WInstr::SelMasks { group } => {
                let g = &p.mask_groups[group as usize];
                let new_group = mask_groups.len() as u32;
                group_map[group as usize] = new_group;
                mask_groups.push(WMaskGroup {
                    sel: emit(&mut pool, g.sel, g.sel_w),
                    sel_w: g.sel_w,
                    n: g.n,
                    base: masks_len,
                });
                masks_len += g.n;
                WInstr::SelMasks { group: new_group }
            }
            WInstr::MuxN { idx } => {
                let mx = &p.muxes[idx as usize];
                let new_group = group_map[mx.group as usize];
                debug_assert_ne!(new_group, DEAD, "muxN consumes a dropped mask group");
                let legs = emit(&mut pool, mx.legs, mx.n * mx.w);
                let runs = leg_runs.len() as u32;
                for d in 0..mx.n {
                    leg_runs.push(leg_run(&pool, legs + d * mx.w, mx.w));
                }
                muxes.push(WMux {
                    group: new_group,
                    masks: mask_groups[new_group as usize].base,
                    legs,
                    runs,
                    n: mx.n,
                    dst: map(mx.dst),
                    w: mx.w,
                });
                WInstr::MuxN {
                    idx: muxes.len() as u32 - 1,
                }
            }
            WInstr::Tbl { idx } => {
                let t = &p.tables[idx as usize];
                tables.push(crate::wide::WTable {
                    addr: emit(&mut pool, t.addr, t.addr_w),
                    addr_w: t.addr_w,
                    table: t.table.clone(),
                    dst: map(t.dst),
                    w: t.w,
                });
                WInstr::Tbl {
                    idx: tables.len() as u32 - 1,
                }
            }
        };
        instrs.push(rebuilt);
    }
    // Sequential records survive unconditionally; their pools and
    // planes move to the new layout.
    for reg in p.regs.iter_mut() {
        reg.d = emit(&mut pool, reg.d, reg.w);
        reg.d_run = leg_run(&pool, reg.d, reg.w);
        reg.q = map(reg.q);
        reg.en = reg.en.map(map);
    }
    for mem in p.mems.iter_mut() {
        mem.raddr = emit(&mut pool, mem.raddr, mem.addr_w);
        mem.waddr = emit(&mut pool, mem.waddr, mem.addr_w);
        mem.wdata = emit(&mut pool, mem.wdata, mem.data_w);
        mem.wen = map(mem.wen);
        mem.rdata = map(mem.rdata);
    }
    for g in p.stage_groups.iter_mut() {
        g.base = map(g.base);
    }
    for entry in p.plane_map.iter_mut() {
        *entry = map(*entry);
    }
    p.instrs = instrs;
    p.pool = pool;
    p.mux2s = mux2s;
    p.muxes = muxes;
    p.mask_groups = mask_groups;
    p.leg_runs = leg_runs;
    p.tables = tables;
    p.masks_len = masks_len;
    p.n_planes = next;
}

/// Re-derives the dense form for an add/sub whose renumbered operands
/// landed on contiguous plane runs; pooled form otherwise.
fn rebuild_addsub(
    is_sub: bool,
    pool: &mut Vec<u32>,
    emit: &mut impl FnMut(&mut Vec<u32>, u32, u32) -> u32,
    a: u32,
    b: u32,
    dst: u32,
    w: u32,
) -> WInstr {
    let pa = emit(pool, a, w);
    let pb = emit(pool, b, w);
    if let (Some(da), Some(db)) = (dense_base(pool, pa, w), dense_base(pool, pb, w)) {
        if is_sub {
            WInstr::SubD {
                a: da,
                b: db,
                dst,
                w,
            }
        } else {
            WInstr::AddD {
                a: da,
                b: db,
                dst,
                w,
            }
        }
    } else if is_sub {
        WInstr::Sub {
            a: pa,
            b: pb,
            dst,
            w,
        }
    } else {
        WInstr::Add {
            a: pa,
            b: pb,
            dst,
            w,
        }
    }
}

// ---------------------------------------------------------------------
// schedule
// ---------------------------------------------------------------------

/// Plane-locality list scheduling: reorders instructions within the
/// RAW/WAR/WAW hazard partial order, greedily issuing the ready
/// instruction whose destination plane is nearest the one just issued.
fn schedule(p: &mut WideProgram) {
    let n = p.instrs.len();
    if n < 2 {
        return;
    }
    // Plane key space: real planes then mask-arena slots.
    let keys = p.n_planes as usize + p.masks_len as usize;
    let key = |pl: u32| -> usize {
        if ir::is_mask_plane(pl) {
            p.n_planes as usize + (pl - MASK_PLANE_BASE) as usize
        } else {
            pl as usize
        }
    };
    let mut last_writer: Vec<Option<usize>> = vec![None; keys];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); keys];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    let edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<u32>| {
        if from != to {
            succs[from].push(to);
            indeg[to] += 1;
        }
    };
    let mut uses = Vec::new();
    for i in 0..n {
        uses.clear();
        ir::instr_uses(p, i, &mut uses);
        for &u in &uses {
            let k = key(u);
            if let Some(w) = last_writer[k] {
                edge(w, i, &mut succs, &mut indeg);
            }
            readers[k].push(i);
        }
        let (dst, w) = ir::instr_def(p, i);
        for d in dst..dst + w {
            let k = key(d);
            if let Some(w) = last_writer[k] {
                edge(w, i, &mut succs, &mut indeg);
            }
            for r in std::mem::take(&mut readers[k]) {
                edge(r, i, &mut succs, &mut indeg);
            }
            last_writer[k] = Some(i);
        }
    }
    // Kahn with a locality heuristic. The ready scan is capped so wide
    // frontiers stay linear; ties break on original order, keeping the
    // schedule deterministic.
    let dst_of: Vec<i64> = (0..n)
        .map(|i| i64::from(ir::instr_def(p, i).0 & !MASK_PLANE_BASE))
        .collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut last_dst = 0i64;
    const SCAN: usize = 64;
    while let Some(&first) = ready.first() {
        let mut best = 0usize;
        let mut best_cost = (dst_of[first] - last_dst).abs();
        for (slot, &cand) in ready.iter().enumerate().take(SCAN).skip(1) {
            let cost = (dst_of[cand] - last_dst).abs();
            if cost < best_cost {
                best = slot;
                best_cost = cost;
            }
        }
        let pick = ready.remove(best);
        last_dst = dst_of[pick];
        order.push(pick);
        for &s in &succs[pick] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "hazard graph must be acyclic");
    let mut scheduled = Vec::with_capacity(n);
    for &i in &order {
        scheduled.push(p.instrs[i].clone());
    }
    p.instrs = scheduled;
}

#[cfg(test)]
mod tests {
    use crate::{validate_against, Tape};
    use pe_designs::suite::all_benchmarks;
    use pe_rtl::{ComponentKind, Design};

    /// A design exercising fold-forward's bread and butter: an AND with
    /// a constant-zero operand, a mux with identical legs, and two
    /// identical adds (CSE), all feeding outputs.
    fn foldable_design() -> Design {
        let mut d = Design::new("foldable");
        let a = d.add_input("a", 8).expect("input");
        let b = d.add_input("b", 8).expect("input");
        let sel = d.add_input("sel", 1).expect("input");
        let zero = d.add_signal("zero", 8).expect("signal");
        d.add_component("c0", ComponentKind::Const { value: 0 }, &[], zero, None)
            .expect("const");
        let masked = d.add_signal("masked", 8).expect("signal");
        d.add_component("and0", ComponentKind::And, &[a, zero], masked, None)
            .expect("and");
        let muxed = d.add_signal("muxed", 8).expect("signal");
        d.add_component("mux0", ComponentKind::Mux, &[sel, b, b], muxed, None)
            .expect("mux");
        let s1 = d.add_signal("s1", 8).expect("signal");
        let s2 = d.add_signal("s2", 8).expect("signal");
        d.add_component("add1", ComponentKind::Add, &[a, b], s1, None)
            .expect("add");
        d.add_component("add2", ComponentKind::Add, &[a, b], s2, None)
            .expect("add");
        d.add_output("masked_out", masked).expect("output");
        d.add_output("muxed_out", muxed).expect("output");
        d.add_output("s1_out", s1).expect("output");
        d.add_output("s2_out", s2).expect("output");
        d
    }

    #[test]
    fn fold_forward_kills_constant_and_identical_leg_cones() {
        let design = foldable_design();
        let (tape, cert) = Tape::compile_optimized(&design).expect("compiles");
        assert!(cert.validated, "certificate rejected: {:?}", cert.reason);
        // The AND-with-zero and the identical-leg mux fold away; CSE
        // merges the twin adds. Only one Add survives.
        assert_eq!(
            tape.wide_instructions(),
            1,
            "expected exactly the CSE'd add"
        );
        assert!(cert.post_instructions < cert.pre_instructions);
        assert!(cert.post_planes < cert.pre_planes);
    }

    #[test]
    fn pass_stats_cover_the_whole_pipeline() {
        let design = foldable_design();
        let (_, cert) = Tape::compile_optimized(&design).expect("compiles");
        let names: Vec<&str> = cert.passes.iter().map(|p| p.pass).collect();
        assert_eq!(names, ["fold-forward", "die-compact", "schedule"]);
        // fold-forward only substitutes; die-compact is where the
        // instruction count drops.
        let die = &cert.passes[1];
        assert!(die.instructions_after < die.instructions_before);
        // schedule reorders, never adds or removes.
        let sched = &cert.passes[2];
        assert_eq!(sched.instructions_after, sched.instructions_before);
        assert_eq!(sched.planes_after, sched.planes_before);
    }

    #[test]
    fn optimization_is_deterministic() {
        let design = foldable_design();
        let (_, c1) = Tape::compile_optimized(&design).expect("compiles");
        let (_, c2) = Tape::compile_optimized(&design).expect("compiles");
        assert_eq!(c1.ir_fnv128, c2.ir_fnv128);
        assert_eq!(c1.netlist_fnv128, c2.netlist_fnv128);
    }

    #[test]
    fn optimized_tape_stays_well_formed_and_validated_across_the_suite() {
        for bench in all_benchmarks() {
            let (tape, cert) = Tape::compile_optimized(&bench.design).expect("compiles");
            tape.check_well_formed()
                .expect("well-formed after pipeline");
            assert!(
                cert.validated,
                "{}: certificate rejected: {:?}",
                bench.name, cert.reason
            );
            assert!(
                cert.post_instructions < cert.pre_instructions,
                "{}: pipeline removed nothing ({} -> {})",
                bench.name,
                cert.pre_instructions,
                cert.post_instructions
            );
            validate_against(&bench.design, &tape, 1, 4).expect("revalidates");
            eprintln!(
                "{}: {} -> {} instrs, {} -> {} planes",
                bench.name,
                cert.pre_instructions,
                cert.post_instructions,
                cert.pre_planes,
                cert.post_planes
            );
        }
    }
}
