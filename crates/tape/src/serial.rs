//! Serial tape simulation as the 1-lane instantiation of the wide core.
//!
//! There is no serial interpreter anymore: [`TapeSimulator`] wraps
//! [`WideTapeSimulator`]`<bool>` — the lane-word core evaluated with a
//! one-lane word — so the serial and wide engines cannot drift apart.
//! Per-lane semantics are the wide core's, which the differential suite
//! pins to [`pe_sim::Simulator`] bit for bit; this wrapper only fixes
//! the lane index at 0 and keeps the serial engine's metric names.

use crate::wide::WideTapeSimulator;
use crate::Tape;
use pe_rtl::{ClockId, SignalId};
use pe_util::PortError;

/// Serial interpreter over a compiled [`Tape`] — the drop-in
/// counterpart of [`pe_sim::Simulator`], realized as the single-lane
/// (`bool` lane word) instantiation of the wide interpreter.
#[derive(Debug)]
pub struct TapeSimulator<'t> {
    inner: WideTapeSimulator<'t, bool>,
}

impl<'t> TapeSimulator<'t> {
    /// Builds a simulator with the design at power-on state.
    pub fn new(tape: &'t Tape) -> Self {
        Self {
            inner: WideTapeSimulator::new(tape),
        }
    }

    /// The compiled tape under interpretation.
    pub fn tape(&self) -> &'t Tape {
        self.inner.tape()
    }

    /// Number of clock edges stepped so far.
    pub fn cycle(&self) -> u64 {
        self.inner.cycle()
    }

    /// Number of settle passes performed so far.
    pub fn settle_count(&self) -> u64 {
        self.inner.settle_count()
    }

    /// Observes run counters into `registry` (`sim.cycles`,
    /// `sim.settle_passes` — the serial graph engine's histograms, so
    /// dashboards are engine-agnostic).
    pub fn record_metrics(&self, registry: &pe_trace::Registry) {
        registry.histogram("sim.cycles").observe(self.cycle());
        registry
            .histogram("sim.settle_passes")
            .observe(self.settle_count());
    }

    /// Drives a top-level input signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not input-driven or `value` does not fit
    /// its width.
    pub fn set_input(&mut self, signal: SignalId, value: u64) {
        self.inner.set_input_lane(signal, 0, value);
    }

    /// Drives a top-level input by port name.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if no such input port exists, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    pub fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        use pe_sim::SimControl as _;
        self.inner.lane(0).try_set_input_by_name(name, value)
    }

    /// Drives a top-level input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no such input port exists or the value does not fit.
    pub fn set_input_by_name(&mut self, name: &str, value: u64) {
        self.try_set_input_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Current value of a signal (settling first if needed).
    pub fn value(&mut self, signal: SignalId) -> u64 {
        self.inner.value_lane(signal, 0)
    }

    /// Current value of a named output port.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if no such output port exists.
    pub fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        self.inner.try_output_lane(name, 0)
    }

    /// Current value of a named output port.
    ///
    /// # Panics
    ///
    /// Panics if no such output port exists.
    pub fn output(&mut self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Advances one clock edge on **all** clock domains.
    pub fn step(&mut self) {
        self.inner.step();
    }

    /// Advances one clock edge on the given domain only.
    pub fn step_clock(&mut self, clock: ClockId) {
        self.inner.step_clock(clock);
    }

    /// Runs `n` clock edges on all domains.
    pub fn step_n(&mut self, n: u64) {
        self.inner.step_n(n);
    }

    /// Resets to power-on state: registers to `init`, memories to
    /// initial contents, inputs to zero, cycle counter 0.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

impl pe_sim::SimControl for TapeSimulator<'_> {
    fn cycle(&self) -> u64 {
        TapeSimulator::cycle(self)
    }

    fn set_input(&mut self, signal: SignalId, value: u64) {
        TapeSimulator::set_input(self, signal, value);
    }

    fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        TapeSimulator::try_set_input_by_name(self, name, value)
    }

    fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        TapeSimulator::try_output(self, name)
    }

    fn value(&mut self, signal: SignalId) -> u64 {
        TapeSimulator::value(self, signal)
    }
}
