//! Serial instruction-tape interpreter.
//!
//! The compiler lowers each combinational component in topological order
//! to one or more dense instructions over a flat `Vec<u64>` state array
//! indexed by signal id. Masks, widths, slice positions, and table
//! references are resolved at compile time; the interpreter's hot loop
//! is a single `match` over value-carrying instructions with no graph,
//! name, or `HashMap` access. Semantics mirror [`pe_sim::Simulator`]
//! bit for bit: lazy settle, capture-then-commit clock edges,
//! read-first memories, enable-gated registers.

use crate::Tape;
use pe_rtl::{ClockId, ComponentKind, Design, SignalId};
use pe_util::bits;
use pe_util::PortError;

/// One compiled combinational operation. Operand fields are signal
/// indices into the flat state array; masks and widths are pre-resolved.
#[derive(Debug, Clone)]
pub(crate) enum SInstr {
    /// `dst = (a + b) & mask`
    Add { a: u32, b: u32, dst: u32, mask: u64 },
    /// `dst = (a - b) & mask`
    Sub { a: u32, b: u32, dst: u32, mask: u64 },
    /// `dst = (a * b) & mask`
    Mul { a: u32, b: u32, dst: u32, mask: u64 },
    /// `dst = (-a) & mask`
    Neg { a: u32, dst: u32, mask: u64 },
    /// `dst = (a == b)`
    Eq { a: u32, b: u32, dst: u32 },
    /// `dst = (a != b)`
    Ne { a: u32, b: u32, dst: u32 },
    /// `dst = (a < b)` unsigned
    Lt { a: u32, b: u32, dst: u32 },
    /// `dst = (a <= b)` unsigned
    Le { a: u32, b: u32, dst: u32 },
    /// `dst = (a < b)` signed at width `w`
    SLt { a: u32, b: u32, dst: u32, w: u32 },
    /// `dst = (a <= b)` signed at width `w`
    SLe { a: u32, b: u32, dst: u32, w: u32 },
    /// `dst = a & b` (n-ary gates are decomposed into chains)
    And2 { a: u32, b: u32, dst: u32 },
    /// `dst = a | b`
    Or2 { a: u32, b: u32, dst: u32 },
    /// `dst = a ^ b`
    Xor2 { a: u32, b: u32, dst: u32 },
    /// `dst = !a & mask`
    Not { a: u32, dst: u32, mask: u64 },
    /// `dst = (a == mask)` where `mask` covers the input width
    RedAnd { a: u32, dst: u32, mask: u64 },
    /// `dst = (a != 0)`
    RedOr { a: u32, dst: u32 },
    /// `dst = parity(a)`
    RedXor { a: u32, dst: u32 },
    /// Logical shift left by the live value of `amt`
    Shl {
        a: u32,
        amt: u32,
        dst: u32,
        w: u32,
        mask: u64,
    },
    /// Logical shift right by the live value of `amt`
    Shr {
        a: u32,
        amt: u32,
        dst: u32,
        w: u32,
        mask: u64,
    },
    /// Arithmetic shift right by the live value of `amt`
    Sar {
        a: u32,
        amt: u32,
        dst: u32,
        w: u32,
        mask: u64,
    },
    /// `dst = if sel != 0 { b } else { a }`
    Mux2 { sel: u32, a: u32, b: u32, dst: u32 },
    /// `dst = state[pool[min(sel, n-1)]]` — data-leg indices live in the
    /// operand pool
    MuxN {
        sel: u32,
        pool: u32,
        n: u32,
        dst: u32,
    },
    /// `dst = (a >> lo) & mask`
    Slice {
        a: u32,
        lo: u32,
        dst: u32,
        mask: u64,
    },
    /// `dst = a` (zero-extension; first concat part)
    Copy { a: u32, dst: u32 },
    /// `dst |= a << sh` (subsequent concat parts)
    OrShl { a: u32, sh: u32, dst: u32 },
    /// `dst = sign_extend(a, w) & mask`
    Sext { a: u32, dst: u32, w: u32, mask: u64 },
    /// `dst = tables[tbl][a]`
    Tbl { a: u32, tbl: u32, dst: u32 },
}

/// A compiled register (identical record to the graph engine's).
#[derive(Debug, Clone)]
pub(crate) struct SReg {
    pub d: u32,
    pub en: Option<u32>,
    pub q: u32,
    pub clock: u32,
    pub init: u64,
}

/// A compiled memory; the tape owns the initial contents so reset does
/// not need the design.
#[derive(Debug, Clone)]
pub(crate) struct SMem {
    pub raddr: u32,
    pub waddr: u32,
    pub wdata: u32,
    pub wen: u32,
    pub rdata: u32,
    pub words: u32,
    pub clock: u32,
    pub state_index: u32,
    pub init: Vec<u64>,
}

/// The full serial program: instruction tape, operand pool, lookup
/// tables, power-on writes (constant-folded cones and register inits),
/// and sequential records.
#[derive(Debug)]
pub(crate) struct SerialProgram {
    pub instrs: Vec<SInstr>,
    pub pool: Vec<u32>,
    pub tables: Vec<Vec<u64>>,
    /// `(signal, value)` written at power-on/reset: constant-folded
    /// cone outputs (never touched again) and register init values.
    pub resets: Vec<(u32, u64)>,
    pub regs: Vec<SReg>,
    pub mems: Vec<SMem>,
    pub n_signals: u32,
}

pub(crate) fn compile_serial(
    design: &Design,
    order: &[pe_rtl::ComponentId],
    consts: &[Option<u64>],
) -> SerialProgram {
    let mut p = SerialProgram {
        instrs: Vec::new(),
        pool: Vec::new(),
        tables: Vec::new(),
        resets: Vec::new(),
        regs: Vec::new(),
        mems: Vec::new(),
        n_signals: design.signals().len() as u32,
    };
    for (i, c) in consts.iter().enumerate() {
        if let Some(v) = c {
            p.resets.push((i as u32, *v));
        }
    }
    for &id in order {
        let comp = design.component(id);
        let (ins, in_w, dst, out_w) = crate::comp_shape(design, comp);
        if consts[dst as usize].is_some() {
            continue; // whole cone folded at compile time
        }
        let mask = bits::mask(out_w);
        let instr = match comp.kind() {
            ComponentKind::Add => SInstr::Add {
                a: ins[0],
                b: ins[1],
                dst,
                mask,
            },
            ComponentKind::Sub => SInstr::Sub {
                a: ins[0],
                b: ins[1],
                dst,
                mask,
            },
            ComponentKind::Mul => SInstr::Mul {
                a: ins[0],
                b: ins[1],
                dst,
                mask,
            },
            ComponentKind::Neg => SInstr::Neg {
                a: ins[0],
                dst,
                mask,
            },
            ComponentKind::Eq => SInstr::Eq {
                a: ins[0],
                b: ins[1],
                dst,
            },
            ComponentKind::Ne => SInstr::Ne {
                a: ins[0],
                b: ins[1],
                dst,
            },
            ComponentKind::Lt => SInstr::Lt {
                a: ins[0],
                b: ins[1],
                dst,
            },
            ComponentKind::Le => SInstr::Le {
                a: ins[0],
                b: ins[1],
                dst,
            },
            ComponentKind::SLt => SInstr::SLt {
                a: ins[0],
                b: ins[1],
                dst,
                w: in_w[0],
            },
            ComponentKind::SLe => SInstr::SLe {
                a: ins[0],
                b: ins[1],
                dst,
                w: in_w[0],
            },
            ComponentKind::And => {
                push_chain(&mut p.instrs, &ins, dst, |a, b, dst| SInstr::And2 {
                    a,
                    b,
                    dst,
                });
                continue;
            }
            ComponentKind::Or => {
                push_chain(&mut p.instrs, &ins, dst, |a, b, dst| SInstr::Or2 {
                    a,
                    b,
                    dst,
                });
                continue;
            }
            ComponentKind::Xor => {
                push_chain(&mut p.instrs, &ins, dst, |a, b, dst| SInstr::Xor2 {
                    a,
                    b,
                    dst,
                });
                continue;
            }
            ComponentKind::Not => SInstr::Not {
                a: ins[0],
                dst,
                mask,
            },
            ComponentKind::RedAnd => SInstr::RedAnd {
                a: ins[0],
                dst,
                mask: bits::mask(in_w[0]),
            },
            ComponentKind::RedOr => SInstr::RedOr { a: ins[0], dst },
            ComponentKind::RedXor => SInstr::RedXor { a: ins[0], dst },
            ComponentKind::Shl => SInstr::Shl {
                a: ins[0],
                amt: ins[1],
                dst,
                w: out_w,
                mask,
            },
            ComponentKind::Shr => SInstr::Shr {
                a: ins[0],
                amt: ins[1],
                dst,
                w: in_w[0],
                mask,
            },
            ComponentKind::Sar => SInstr::Sar {
                a: ins[0],
                amt: ins[1],
                dst,
                w: in_w[0],
                mask,
            },
            ComponentKind::Mux => {
                if ins.len() == 3 {
                    SInstr::Mux2 {
                        sel: ins[0],
                        a: ins[1],
                        b: ins[2],
                        dst,
                    }
                } else {
                    let pool = p.pool.len() as u32;
                    p.pool.extend_from_slice(&ins[1..]);
                    SInstr::MuxN {
                        sel: ins[0],
                        pool,
                        n: (ins.len() - 1) as u32,
                        dst,
                    }
                }
            }
            ComponentKind::Slice { lo } => SInstr::Slice {
                a: ins[0],
                lo: *lo,
                dst,
                mask,
            },
            ComponentKind::Concat => {
                // Part 0 occupies the LSBs; the output width is exactly
                // the sum of part widths, so no final mask is needed.
                p.instrs.push(SInstr::Copy { a: ins[0], dst });
                let mut sh = in_w[0];
                for (a, w) in ins[1..].iter().zip(&in_w[1..]) {
                    p.instrs.push(SInstr::OrShl { a: *a, sh, dst });
                    sh += w;
                }
                continue;
            }
            ComponentKind::ZeroExt => SInstr::Copy { a: ins[0], dst },
            ComponentKind::SignExt => SInstr::Sext {
                a: ins[0],
                dst,
                w: in_w[0],
                mask,
            },
            ComponentKind::Const { value } => {
                // Unreachable: a Const cone always folds. Kept total for
                // safety.
                p.resets.push((dst, value & mask));
                continue;
            }
            ComponentKind::Table { table } => {
                let tbl = p.tables.len() as u32;
                p.tables.push(table.iter().map(|&v| v & mask).collect());
                SInstr::Tbl {
                    a: ins[0],
                    tbl,
                    dst,
                }
            }
            ComponentKind::Register { .. } | ComponentKind::Memory { .. } => {
                unreachable!("topo order is combinational-only")
            }
        };
        p.instrs.push(instr);
    }
    for comp in design.components() {
        match comp.kind() {
            ComponentKind::Register { init, has_enable } => {
                p.regs.push(SReg {
                    d: comp.inputs()[0].index() as u32,
                    en: has_enable.then(|| comp.inputs()[1].index() as u32),
                    q: comp.output().index() as u32,
                    clock: comp.clock().expect("registers are clocked").index() as u32,
                    init: init.unwrap_or(0),
                });
            }
            ComponentKind::Memory { words, init } => {
                let state_index = p.mems.len() as u32;
                p.mems.push(SMem {
                    raddr: comp.inputs()[0].index() as u32,
                    waddr: comp.inputs()[1].index() as u32,
                    wdata: comp.inputs()[2].index() as u32,
                    wen: comp.inputs()[3].index() as u32,
                    rdata: comp.output().index() as u32,
                    words: *words,
                    clock: comp.clock().expect("memories are clocked").index() as u32,
                    state_index,
                    init: match init {
                        Some(init) => init.clone(),
                        None => vec![0u64; *words as usize],
                    },
                });
            }
            _ => {}
        }
    }
    p
}

/// Decomposes an n-ary gate into a left-fold chain through `dst`.
fn push_chain(
    instrs: &mut Vec<SInstr>,
    ins: &[u32],
    dst: u32,
    make: impl Fn(u32, u32, u32) -> SInstr,
) {
    instrs.push(make(ins[0], ins[1], dst));
    for &a in &ins[2..] {
        instrs.push(make(dst, a, dst));
    }
}

/// Pending memory commit, identical to the graph engine's.
type MemNext = (u32, u64, Option<(usize, usize, u64)>);

/// Serial interpreter over a compiled [`Tape`] — the drop-in
/// counterpart of [`pe_sim::Simulator`], bit-identical cycle for cycle.
#[derive(Debug)]
pub struct TapeSimulator<'t> {
    tape: &'t Tape,
    values: Vec<u64>,
    mem_state: Vec<Vec<u64>>,
    dirty: bool,
    cycle: u64,
    settles: u64,
}

impl<'t> TapeSimulator<'t> {
    /// Builds an interpreter at power-on state. Cheap: allocates the
    /// state array and copies memory contents; all compilation already
    /// happened in [`Tape::compile`].
    pub fn new(tape: &'t Tape) -> Self {
        let p = &tape.serial;
        let mut values = vec![0u64; p.n_signals as usize];
        for &(s, v) in &p.resets {
            values[s as usize] = v;
        }
        for reg in &p.regs {
            values[reg.q as usize] = reg.init;
        }
        let mem_state = p.mems.iter().map(|m| m.init.clone()).collect();
        Self {
            tape,
            values,
            mem_state,
            dirty: true,
            cycle: 0,
            settles: 0,
        }
    }

    /// The compiled tape under interpretation.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Number of clock edges stepped so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of combinational settle passes performed so far.
    pub fn settle_count(&self) -> u64 {
        self.settles
    }

    /// Observes run counters into `registry` (`sim.cycles`,
    /// `sim.settle_passes` — the same histograms the graph engine
    /// publishes, so dashboards are engine-agnostic).
    pub fn record_metrics(&self, registry: &pe_trace::Registry) {
        registry.histogram("sim.cycles").observe(self.cycle);
        registry
            .histogram("sim.settle_passes")
            .observe(self.settles);
    }

    /// Drives a top-level input signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not input-driven or `value` does not fit
    /// its width — both are testbench bugs.
    pub fn set_input(&mut self, signal: SignalId, value: u64) {
        let i = signal.index();
        assert!(
            self.tape.input_driven[i],
            "signal `{}` is not a top-level input",
            self.tape.names[i]
        );
        assert!(
            value <= bits::mask(self.tape.widths[i]),
            "value {:#x} does not fit `{}` ({} bits)",
            value,
            self.tape.names[i],
            self.tape.widths[i]
        );
        if self.values[i] != value {
            self.values[i] = value;
            self.dirty = true;
        }
    }

    /// Drives a top-level input by port name.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchInput`] if no such input port exists, or
    /// [`PortError::ValueTooWide`] if the value does not fit.
    pub fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        let sig = self
            .tape
            .find_input(name)
            .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?;
        if value > self.tape.mask(sig) {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: self.tape.width(sig),
            });
        }
        if self.values[sig as usize] != value {
            self.values[sig as usize] = value;
            self.dirty = true;
        }
        Ok(())
    }

    /// Drives a top-level input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no such input port exists or the value does not fit.
    pub fn set_input_by_name(&mut self, name: &str, value: u64) {
        self.try_set_input_by_name(name, value)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.settles += 1;
        let v = &mut self.values;
        let p = &self.tape.serial;
        for instr in &p.instrs {
            match *instr {
                SInstr::Add { a, b, dst, mask } => {
                    v[dst as usize] = v[a as usize].wrapping_add(v[b as usize]) & mask;
                }
                SInstr::Sub { a, b, dst, mask } => {
                    v[dst as usize] = v[a as usize].wrapping_sub(v[b as usize]) & mask;
                }
                SInstr::Mul { a, b, dst, mask } => {
                    v[dst as usize] = v[a as usize].wrapping_mul(v[b as usize]) & mask;
                }
                SInstr::Neg { a, dst, mask } => {
                    v[dst as usize] = v[a as usize].wrapping_neg() & mask;
                }
                SInstr::Eq { a, b, dst } => {
                    v[dst as usize] = (v[a as usize] == v[b as usize]) as u64;
                }
                SInstr::Ne { a, b, dst } => {
                    v[dst as usize] = (v[a as usize] != v[b as usize]) as u64;
                }
                SInstr::Lt { a, b, dst } => {
                    v[dst as usize] = (v[a as usize] < v[b as usize]) as u64;
                }
                SInstr::Le { a, b, dst } => {
                    v[dst as usize] = (v[a as usize] <= v[b as usize]) as u64;
                }
                SInstr::SLt { a, b, dst, w } => {
                    v[dst as usize] = (bits::sign_extend(v[a as usize], w)
                        < bits::sign_extend(v[b as usize], w))
                        as u64;
                }
                SInstr::SLe { a, b, dst, w } => {
                    v[dst as usize] = (bits::sign_extend(v[a as usize], w)
                        <= bits::sign_extend(v[b as usize], w))
                        as u64;
                }
                SInstr::And2 { a, b, dst } => {
                    v[dst as usize] = v[a as usize] & v[b as usize];
                }
                SInstr::Or2 { a, b, dst } => {
                    v[dst as usize] = v[a as usize] | v[b as usize];
                }
                SInstr::Xor2 { a, b, dst } => {
                    v[dst as usize] = v[a as usize] ^ v[b as usize];
                }
                SInstr::Not { a, dst, mask } => {
                    v[dst as usize] = !v[a as usize] & mask;
                }
                SInstr::RedAnd { a, dst, mask } => {
                    v[dst as usize] = (v[a as usize] == mask) as u64;
                }
                SInstr::RedOr { a, dst } => {
                    v[dst as usize] = (v[a as usize] != 0) as u64;
                }
                SInstr::RedXor { a, dst } => {
                    v[dst as usize] = (v[a as usize].count_ones() & 1) as u64;
                }
                SInstr::Shl {
                    a,
                    amt,
                    dst,
                    w,
                    mask,
                } => {
                    let amt = v[amt as usize];
                    v[dst as usize] = if amt >= w as u64 {
                        0
                    } else {
                        (v[a as usize] << amt) & mask
                    };
                }
                SInstr::Shr {
                    a,
                    amt,
                    dst,
                    w,
                    mask,
                } => {
                    let amt = v[amt as usize];
                    v[dst as usize] = if amt >= w as u64 {
                        0
                    } else {
                        (v[a as usize] >> amt) & mask
                    };
                }
                SInstr::Sar {
                    a,
                    amt,
                    dst,
                    w,
                    mask,
                } => {
                    let sx = bits::sign_extend(v[a as usize], w);
                    let amt = v[amt as usize].min(63);
                    v[dst as usize] = ((sx >> amt) as u64) & mask;
                }
                SInstr::Mux2 { sel, a, b, dst } => {
                    v[dst as usize] = if v[sel as usize] != 0 {
                        v[b as usize]
                    } else {
                        v[a as usize]
                    };
                }
                SInstr::MuxN { sel, pool, n, dst } => {
                    let idx = (v[sel as usize] as usize).min(n as usize - 1);
                    let src = p.pool[pool as usize + idx];
                    v[dst as usize] = v[src as usize];
                }
                SInstr::Slice { a, lo, dst, mask } => {
                    v[dst as usize] = (v[a as usize] >> lo) & mask;
                }
                SInstr::Copy { a, dst } => {
                    v[dst as usize] = v[a as usize];
                }
                SInstr::OrShl { a, sh, dst } => {
                    v[dst as usize] |= v[a as usize] << sh;
                }
                SInstr::Sext { a, dst, w, mask } => {
                    v[dst as usize] = (bits::sign_extend(v[a as usize], w) as u64) & mask;
                }
                SInstr::Tbl { a, tbl, dst } => {
                    v[dst as usize] = p.tables[tbl as usize][v[a as usize] as usize];
                }
            }
        }
        self.dirty = false;
    }

    /// Current value of a signal (settling first if needed).
    pub fn value(&mut self, signal: SignalId) -> u64 {
        self.settle();
        self.values[signal.index()]
    }

    /// Current value of a named output port.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if no such output port exists.
    pub fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        let sig = self
            .tape
            .find_output(name)
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        self.settle();
        Ok(self.values[sig as usize])
    }

    /// Current value of a named output port.
    ///
    /// # Panics
    ///
    /// Panics if no such output port exists.
    pub fn output(&mut self, name: &str) -> u64 {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Settles and returns a consistent snapshot of all signal values,
    /// indexed by [`SignalId::index`].
    pub fn values(&mut self) -> &[u64] {
        self.settle();
        &self.values
    }

    /// Advances one clock edge on **all** clock domains.
    pub fn step(&mut self) {
        self.step_domains(None);
    }

    /// Advances one clock edge on the given domain only.
    pub fn step_clock(&mut self, clock: ClockId) {
        self.step_domains(Some(clock.index() as u32));
    }

    fn step_domains(&mut self, only: Option<u32>) {
        self.settle();
        let p = &self.tape.serial;
        // Capture phase, then commit — models simultaneous edges,
        // identical to the graph engine.
        let mut reg_next: Vec<(u32, u64)> = Vec::with_capacity(p.regs.len());
        for reg in &p.regs {
            if only.is_some_and(|c| c != reg.clock) {
                continue;
            }
            let enabled = reg.en.is_none_or(|en| self.values[en as usize] != 0);
            if enabled {
                reg_next.push((reg.q, self.values[reg.d as usize]));
            }
        }
        let mut mem_next: Vec<MemNext> = Vec::with_capacity(p.mems.len());
        for mem in &p.mems {
            if only.is_some_and(|c| c != mem.clock) {
                continue;
            }
            let raddr = self.values[mem.raddr as usize] as usize % mem.words as usize;
            let read = self.mem_state[mem.state_index as usize][raddr];
            let write = if self.values[mem.wen as usize] != 0 {
                let waddr = self.values[mem.waddr as usize] as usize % mem.words as usize;
                Some((
                    mem.state_index as usize,
                    waddr,
                    self.values[mem.wdata as usize],
                ))
            } else {
                None
            };
            mem_next.push((mem.rdata, read, write));
        }
        for (q, val) in reg_next {
            self.values[q as usize] = val;
        }
        for (rdata, read, write) in mem_next {
            self.values[rdata as usize] = read;
            if let Some((state, addr, data)) = write {
                self.mem_state[state][addr] = data;
            }
        }
        self.cycle += 1;
        self.dirty = true;
    }

    /// Runs `n` clock edges on all domains.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Resets to power-on state: registers to `init`, memories to their
    /// initial contents, inputs to zero, cycle counter to 0.
    pub fn reset(&mut self) {
        let p = &self.tape.serial;
        for v in &mut self.values {
            *v = 0;
        }
        for &(s, val) in &p.resets {
            self.values[s as usize] = val;
        }
        for reg in &p.regs {
            self.values[reg.q as usize] = reg.init;
        }
        for mem in &p.mems {
            self.mem_state[mem.state_index as usize].copy_from_slice(&mem.init);
        }
        self.cycle = 0;
        self.dirty = true;
    }
}

impl pe_sim::SimControl for TapeSimulator<'_> {
    fn cycle(&self) -> u64 {
        TapeSimulator::cycle(self)
    }

    fn set_input(&mut self, signal: SignalId, value: u64) {
        TapeSimulator::set_input(self, signal, value);
    }

    fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        TapeSimulator::try_set_input_by_name(self, name, value)
    }

    fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        TapeSimulator::try_output(self, name)
    }

    fn value(&mut self, signal: SignalId) -> u64 {
        TapeSimulator::value(self, signal)
    }
}
