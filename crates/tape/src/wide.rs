//! Lane-word instruction-tape interpreter.
//!
//! Every signal bit is a *plane*: one [`LaneWord`] whose lane `l` is that
//! signal bit's value in lane `l`. The interpreter is generic over the
//! lane word, so one core covers 1 (`bool`, the serial engine), 64
//! (`u64`), 128 (`[u64; 2]`), and 256 (`[u64; 4]`) lanes; the compiled
//! program itself is width-independent — plane counts and instruction
//! streams are identical at every width. Unlike the graph engine's
//! bit-slice
//! arena (one contiguous slot per signal), the tape compiler maps each
//! signal to an arbitrary list of planes, which turns all pure wiring
//! into compile-time aliasing:
//!
//! * `Slice` = a subrange of the source's plane map,
//! * `ZeroExt` = the source map padded with the reserved all-zero plane,
//! * `SignExt` = the source map padded with repeats of its top plane,
//! * `Concat` = the part maps concatenated,
//! * constant-amount shifts = shifted alias maps,
//! * constant-select muxes = the selected leg's map,
//! * constant-folded cones = the reserved all-zero / all-one planes.
//!
//! None of these cost anything per cycle — the graph engine runs a full
//! barrel-shifter stage chain even when the amount is a constant.
//! Instructions read operands through *pools* of pre-resolved plane
//! indices padded to the exact read width with the zero plane, so the
//! interpreter's inner loops have no width branches at all.
//!
//! Per-lane semantics are bit-identical to [`pe_sim::WideSimulator`]
//! (and therefore to the serial engine): the differential suite
//! enforces it lane for lane, cycle for cycle.

use crate::Tape;
use pe_rtl::{ClockId, ComponentKind, Design, SignalId};
use pe_sim::{SimControl, Testbench};
use pe_util::lanes::{LaneWord, MAX_LANES};
use pe_util::{bits, PortError};

/// Reserved plane: all lanes 0. Never written.
pub(crate) const ZERO: u32 = 0;
/// Reserved plane: all lanes 1. Never written.
pub(crate) const ONE: u32 = 1;
/// Sentinel in `leg_runs`: this leg is not a zero-padded contiguous
/// run and must be read through the pool.
pub(crate) const NOT_RUN: u32 = u32::MAX;

/// One compiled 64-lane operation. `a`/`b`/`amt`/`sel` fields are pool
/// offsets (each pool entry is a plane index, zero-padded to the read
/// width); `dst` is the base of a contiguous freshly-allocated plane
/// run.
#[derive(Debug, Clone)]
pub(crate) enum WInstr {
    /// Ripple-carry add over `w` output bits.
    Add { a: u32, b: u32, dst: u32, w: u32 },
    /// Dense add: both operands are contiguous plane runs (`a`/`b` are
    /// plane bases, not pool offsets) — single indirection.
    AddD { a: u32, b: u32, dst: u32, w: u32 },
    /// Ripple-borrow subtract.
    Sub { a: u32, b: u32, dst: u32, w: u32 },
    /// Dense subtract (plane-base operands).
    SubD { a: u32, b: u32, dst: u32, w: u32 },
    /// Shift-add multiply; `a` is the wider operand (pool of `w`),
    /// `b` the narrower (pool of `bw`).
    Mul {
        a: u32,
        b: u32,
        dst: u32,
        w: u32,
        bw: u32,
    },
    /// Wide multiply evaluated per lane: unpack both operands, 64
    /// native multiplies, pack the product. Chosen at compile time when
    /// the bit-plane shift-add would cost more than the transposes.
    MulS {
        a: u32,
        b: u32,
        dst: u32,
        w: u32,
        bw: u32,
    },
    /// Two's-complement negate (`!a + 1` with rippled initial carry).
    Neg { a: u32, dst: u32, w: u32 },
    /// Lane-mask equality compare into a single plane.
    Eq { a: u32, b: u32, dst: u32, w: u32 },
    /// Negated equality.
    Ne { a: u32, b: u32, dst: u32, w: u32 },
    /// Unsigned less-than borrow chain.
    Lt { a: u32, b: u32, dst: u32, w: u32 },
    /// `a <= b` as `!(b < a)`.
    Le { a: u32, b: u32, dst: u32, w: u32 },
    /// Signed less-than (MSB planes complemented).
    SLt { a: u32, b: u32, dst: u32, w: u32 },
    /// Signed `a <= b`.
    SLe { a: u32, b: u32, dst: u32, w: u32 },
    /// Bitwise AND (n-ary gates decompose into chains through `dst`).
    And2 { a: u32, b: u32, dst: u32, w: u32 },
    /// Bitwise OR.
    Or2 { a: u32, b: u32, dst: u32, w: u32 },
    /// Bitwise XOR.
    Xor2 { a: u32, b: u32, dst: u32, w: u32 },
    /// Bitwise NOT.
    Not { a: u32, dst: u32, w: u32 },
    /// AND-fold of the input planes into one plane.
    RedAnd { a: u32, dst: u32, w: u32 },
    /// OR-fold.
    RedOr { a: u32, dst: u32, w: u32 },
    /// XOR-fold (parity).
    RedXor { a: u32, dst: u32, w: u32 },
    /// Barrel shift left by a live amount.
    Shl {
        a: u32,
        amt: u32,
        dst: u32,
        w: u32,
        amt_w: u32,
    },
    /// Barrel shift right.
    Shr {
        a: u32,
        amt: u32,
        dst: u32,
        w: u32,
        amt_w: u32,
    },
    /// Barrel arithmetic shift right (fill = source sign plane).
    Sar {
        a: u32,
        amt: u32,
        dst: u32,
        w: u32,
        amt_w: u32,
    },
    /// Two-leg mux; operands live in the side table.
    Mux2 { idx: u32 },
    /// N-leg mux; operands live in the side table.
    MuxN { idx: u32 },
    /// Computes the one-hot leg masks for a select-mask group into the
    /// mask arena. Emitted once per distinct `(select planes, n)` pair,
    /// right before the first mux that consumes it — muxes sharing a
    /// select (phase counters feeding hundreds of register-file reads)
    /// share one mask computation per settle instead of each paying
    /// their own.
    SelMasks { group: u32 },
    /// Lookup table; operands live in the side table.
    Tbl { idx: u32 },
}

/// A shared select: the one-hot masks for legs `0..n` (last leg
/// absorbing out-of-range values) land in the interpreter's mask arena
/// at `base`. When exactly one mask is non-zero — every lane agrees on
/// the select, the overwhelmingly common case for FSM/phase-counter
/// selects — the interpreter records the winning leg so consuming muxes
/// reduce to a straight plane copy.
#[derive(Debug, Clone)]
pub(crate) struct WMaskGroup {
    pub sel: u32,
    pub sel_w: u32,
    pub n: u32,
    pub base: u32,
}

/// Side table for an n-leg mux. Select masks come precomputed from the
/// mux's [`WMaskGroup`]; the mux itself only accumulates legs.
#[derive(Debug, Clone)]
pub(crate) struct WMux {
    /// Index of the mask group carrying this mux's select masks.
    pub group: u32,
    /// Mask arena base (copied from the group, saves an indirection).
    pub masks: u32,
    /// Pool offset of `n * w` leg plane indices, leg-major.
    pub legs: u32,
    /// Offset of `n` per-leg `(base, len)` runs in `leg_runs`.
    pub runs: u32,
    pub n: u32,
    pub dst: u32,
    pub w: u32,
}

/// Side table for a two-leg mux. The OR-folded select picks leg `b`
/// (the serial clamp-to-last rule makes any non-zero select equivalent
/// to 1). Legs carry their `(base, len)` runs so the blend reads
/// contiguous plane slices when the operands allow it.
#[derive(Debug, Clone)]
pub(crate) struct WMux2 {
    pub sel: u32,
    pub sel_w: u32,
    /// Pool offsets of the two legs' plane indices.
    pub a: u32,
    pub b: u32,
    /// `(base, len)` contiguous-prefix runs, [`NOT_RUN`] when irregular.
    pub a_run: (u32, u32),
    pub b_run: (u32, u32),
    pub dst: u32,
    pub w: u32,
}

/// Side table for a lookup table. Small tables (≤ 64 entries) evaluate
/// bit-parallel via one-hot address masks; larger ones unpack addresses
/// per lane.
#[derive(Debug, Clone)]
pub(crate) struct WTable {
    pub addr: u32,
    pub addr_w: u32,
    pub table: Vec<u64>,
    pub dst: u32,
    pub w: u32,
}

/// A compiled register.
#[derive(Debug, Clone)]
pub(crate) struct WReg {
    /// Pool offset of the `w` D-input planes.
    pub d: u32,
    /// `(base, len)` when the D input is a zero-padded contiguous plane
    /// run — the capture becomes a `memcpy` plus zero fill for
    /// always-enabled registers — else [`NOT_RUN`] twice.
    pub d_run: (u32, u32),
    /// Enable plane, if any.
    pub en: Option<u32>,
    /// Contiguous Q plane base.
    pub q: u32,
    pub w: u32,
    pub clock: u32,
    /// Offset into the register scratch arena.
    pub scratch: u32,
    pub init: u64,
}

/// A compiled memory. State is `state[word * LANES + lane]`, exactly
/// the graph engine's layout.
#[derive(Debug, Clone)]
pub(crate) struct WMem {
    pub raddr: u32,
    pub waddr: u32,
    pub wdata: u32,
    pub addr_w: u32,
    pub data_w: u32,
    /// Write-enable plane.
    pub wen: u32,
    /// Contiguous read-data plane base.
    pub rdata: u32,
    pub words: u32,
    pub clock: u32,
    pub state_index: u32,
    pub init: Vec<u64>,
}

/// A top-level input port. Ports are packed into *stage groups* of up
/// to 64 bits: drives store per-port lane values (a plain compare-and-
/// store, like the graph engine's), and a dirty group merges its ports
/// into one packed word per lane at settle — paying **one** 64×64
/// transpose per settle for all its ports, where the graph engine
/// transposes per port.
#[derive(Debug, Clone)]
pub(crate) struct WStagedPort {
    pub name: String,
    /// Bit offset of this port inside the group word.
    pub off: u32,
    pub width: u32,
    pub mask: u64,
}

/// A stage group: `width` total bits across the `n_ports` consecutive
/// input ports starting at `first_port`, packing into the contiguous
/// plane run at `base`.
#[derive(Debug, Clone)]
pub(crate) struct WStageGroup {
    pub base: u32,
    pub width: u32,
    pub first_port: u32,
    pub n_ports: u32,
}

/// The full 64-lane program.
#[derive(Debug, Clone)]
pub(crate) struct WideProgram {
    pub instrs: Vec<WInstr>,
    /// Operand pools: plane indices, zero-plane padded to read widths.
    pub pool: Vec<u32>,
    /// Per-signal offset into `plane_map`; signal `s` occupies
    /// `plane_map[plane_base[s] .. plane_base[s] + width(s)]`.
    pub plane_base: Vec<u32>,
    pub plane_map: Vec<u32>,
    pub n_planes: u32,
    pub mux2s: Vec<WMux2>,
    pub muxes: Vec<WMux>,
    /// Per mux leg: `(plane base, run length)` when the leg is a
    /// contiguous ascending plane run followed by nothing but zero
    /// planes (`len < w` ⇒ the tail bits are constant 0 and cost no
    /// reads at all), or [`NOT_RUN`] twice when it needs pooled reads.
    pub leg_runs: Vec<(u32, u32)>,
    pub mask_groups: Vec<WMaskGroup>,
    /// Total mask arena length (sum of group `n`s).
    pub masks_len: u32,
    pub tables: Vec<WTable>,
    pub regs: Vec<WReg>,
    pub mems: Vec<WMem>,
    pub staged: Vec<WStagedPort>,
    pub stage_groups: Vec<WStageGroup>,
    /// Signal index → index into `staged`, for input-driven signals.
    pub staged_of: Vec<Option<u32>>,
    pub scratch_len: u32,
}

/// A pooled operand whose planes form a contiguous ascending run can
/// be read with single indirection; returns its base plane.
pub(crate) fn dense_base(pool: &[u32], off: u32, w: u32) -> Option<u32> {
    let b = pool[off as usize];
    (1..w)
        .all(|i| pool[(off + i) as usize] == b + i)
        .then_some(b)
}

/// The longest ascending prefix run of a pooled operand, accepted only
/// when everything past it is the zero plane — then the tail bits are
/// constant 0 and never need reading.
pub(crate) fn leg_run(pool: &[u32], off: u32, w: u32) -> (u32, u32) {
    let b = pool[off as usize];
    let mut k = 1;
    while k < w && pool[(off + k) as usize] == b + k {
        k += 1;
    }
    if (k..w).all(|i| pool[(off + i) as usize] == ZERO) {
        (b, k)
    } else {
        (NOT_RUN, NOT_RUN)
    }
}

pub(crate) fn compile_wide(
    design: &Design,
    order: &[pe_rtl::ComponentId],
    consts: &[Option<u64>],
) -> WideProgram {
    let n_signals = design.signals().len();
    let mut maps: Vec<Vec<u32>> = vec![Vec::new(); n_signals];
    let mut n_planes: u32 = 2; // ZERO and ONE are pre-allocated

    // Inputs get fresh contiguous planes, packed into stage groups of
    // up to 64 bits so a whole group settles with a single transpose.
    let mut staged = Vec::with_capacity(design.inputs().len());
    let mut stage_groups: Vec<WStageGroup> = Vec::new();
    let mut staged_of = vec![None; n_signals];
    for port in design.inputs() {
        let sig = port.signal();
        let w = design.signal(sig).width();
        let base = n_planes;
        n_planes += w;
        maps[sig.index()] = (base..base + w).collect();
        let fits = stage_groups.last().is_some_and(|g| g.width + w <= 64);
        if !fits {
            stage_groups.push(WStageGroup {
                base,
                width: 0,
                first_port: staged.len() as u32,
                n_ports: 0,
            });
        }
        let g = stage_groups.last_mut().expect("pushed above");
        let off = g.width;
        g.width += w;
        g.n_ports += 1;
        staged_of[sig.index()] = Some(staged.len() as u32);
        staged.push(WStagedPort {
            name: port.name().to_string(),
            off,
            width: w,
            mask: bits::mask(w),
        });
    }
    // Sequential outputs are sources for the combinational walk.
    for comp in design.components() {
        if comp.kind().is_sequential() {
            let q = comp.output();
            let w = design.signal(q).width();
            let base = n_planes;
            n_planes += w;
            maps[q.index()] = (base..base + w).collect();
        }
    }

    let mut p = WideProgram {
        instrs: Vec::new(),
        pool: Vec::new(),
        plane_base: Vec::new(),
        plane_map: Vec::new(),
        n_planes: 0,
        mux2s: Vec::new(),
        muxes: Vec::new(),
        leg_runs: Vec::new(),
        mask_groups: Vec::new(),
        masks_len: 0,
        tables: Vec::new(),
        regs: Vec::new(),
        mems: Vec::new(),
        staged,
        stage_groups,
        staged_of,
        scratch_len: 0,
    };

    // Pushes `read_w` operand planes for `sig` (zero-padded past its
    // width) and returns the pool offset.
    fn pool_of(pool: &mut Vec<u32>, maps: &[Vec<u32>], sig: u32, read_w: u32) -> u32 {
        let off = pool.len() as u32;
        let m = &maps[sig as usize];
        for i in 0..read_w as usize {
            pool.push(m.get(i).copied().unwrap_or(ZERO));
        }
        off
    }
    fn pool_of_planes(pool: &mut Vec<u32>, base: u32, w: u32) -> u32 {
        let off = pool.len() as u32;
        pool.extend(base..base + w);
        off
    }
    // Select-mask groups: distinct `(select planes, n)` pairs seen so
    // far, so muxes sharing a select share one mask computation.
    let mut group_of: std::collections::HashMap<(Vec<u32>, u32), u32> =
        std::collections::HashMap::new();

    for &id in order {
        let comp = design.component(id);
        let (ins, in_w, dst, out_w) = crate::comp_shape(design, comp);
        if let Some(v) = consts[dst as usize] {
            maps[dst as usize] = (0..out_w)
                .map(|i| if (v >> i) & 1 == 1 { ONE } else { ZERO })
                .collect();
            continue;
        }
        // Wiring elisions: build an alias map, emit no instruction.
        let alias: Option<Vec<u32>> = match comp.kind() {
            ComponentKind::Slice { lo } => {
                let a = &maps[ins[0] as usize];
                Some(a[*lo as usize..(*lo + out_w) as usize].to_vec())
            }
            ComponentKind::ZeroExt => {
                let mut m = maps[ins[0] as usize].clone();
                m.resize(out_w as usize, ZERO);
                Some(m)
            }
            ComponentKind::SignExt => {
                let mut m = maps[ins[0] as usize].clone();
                let sign = *m.last().expect("signals are at least 1 bit");
                m.resize(out_w as usize, sign);
                Some(m)
            }
            ComponentKind::Concat => {
                let mut m = Vec::with_capacity(out_w as usize);
                for &s in &ins {
                    m.extend_from_slice(&maps[s as usize]);
                }
                Some(m)
            }
            ComponentKind::Mux if consts[ins[0] as usize].is_some() => {
                let sel = consts[ins[0] as usize].expect("checked") as usize;
                let idx = sel.min(ins.len() - 2);
                Some(maps[ins[1 + idx] as usize].clone())
            }
            ComponentKind::Shl if consts[ins[1] as usize].is_some() => {
                let k = consts[ins[1] as usize].expect("checked");
                Some(
                    (0..out_w as u64)
                        .map(|i| {
                            if k >= out_w as u64 || i < k {
                                ZERO
                            } else {
                                maps[ins[0] as usize][(i - k) as usize]
                            }
                        })
                        .collect(),
                )
            }
            ComponentKind::Shr if consts[ins[1] as usize].is_some() => {
                let k = consts[ins[1] as usize].expect("checked");
                Some(
                    (0..out_w as u64)
                        .map(|i| {
                            if i + k >= in_w[0] as u64 {
                                ZERO
                            } else {
                                maps[ins[0] as usize][(i + k) as usize]
                            }
                        })
                        .collect(),
                )
            }
            ComponentKind::Sar if consts[ins[1] as usize].is_some() => {
                let k = consts[ins[1] as usize].expect("checked").min(63);
                let a = &maps[ins[0] as usize];
                Some(
                    (0..out_w as u64)
                        .map(|i| a[((i + k).min(in_w[0] as u64 - 1)) as usize])
                        .collect(),
                )
            }
            _ => None,
        };
        if let Some(m) = alias {
            maps[dst as usize] = m;
            continue;
        }

        // Computed output: fresh contiguous planes.
        let base = n_planes;
        n_planes += out_w;
        maps[dst as usize] = (base..base + out_w).collect();
        let instr = match comp.kind() {
            ComponentKind::Add => {
                let a = pool_of(&mut p.pool, &maps, ins[0], out_w);
                let b = pool_of(&mut p.pool, &maps, ins[1], out_w);
                match (dense_base(&p.pool, a, out_w), dense_base(&p.pool, b, out_w)) {
                    (Some(a), Some(b)) => WInstr::AddD {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                    _ => WInstr::Add {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                }
            }
            ComponentKind::Sub => {
                let a = pool_of(&mut p.pool, &maps, ins[0], out_w);
                let b = pool_of(&mut p.pool, &maps, ins[1], out_w);
                match (dense_base(&p.pool, a, out_w), dense_base(&p.pool, b, out_w)) {
                    (Some(a), Some(b)) => WInstr::SubD {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                    _ => WInstr::Sub {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                }
            }
            ComponentKind::Mul => {
                // Wider operand drives the partial-product loop (ties
                // resolve like the graph engine: `in0 <= in1` picks in1).
                let (wa, nb, nbw) = if in_w[0] <= in_w[1] {
                    (ins[1], ins[0], in_w[0])
                } else {
                    (ins[0], ins[1], in_w[1])
                };
                let bw = nbw.min(out_w);
                let a = pool_of(&mut p.pool, &maps, wa, out_w);
                let b = pool_of(&mut p.pool, &maps, nb, bw);
                // Cost model: the shift-add runs ~6 plane-ops per
                // surviving partial-product bit; the per-lane path pays
                // three 64×64 transposes plus 64 native multiplies
                // (~1300 word-ops) regardless of width. Pick per
                // instruction.
                let bit_cost = 6 * (out_w * bw - bw * bw.saturating_sub(1) / 2);
                if bit_cost > 1300 {
                    WInstr::MulS {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                        bw,
                    }
                } else {
                    WInstr::Mul {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                        bw,
                    }
                }
            }
            ComponentKind::Neg => WInstr::Neg {
                a: pool_of(&mut p.pool, &maps, ins[0], out_w),
                dst: base,
                w: out_w,
            },
            ComponentKind::Eq
            | ComponentKind::Ne
            | ComponentKind::Lt
            | ComponentKind::Le
            | ComponentKind::SLt
            | ComponentKind::SLe => {
                let w = in_w[0];
                let a = pool_of(&mut p.pool, &maps, ins[0], w);
                let b = pool_of(&mut p.pool, &maps, ins[1], w);
                match comp.kind() {
                    ComponentKind::Eq => WInstr::Eq { a, b, dst: base, w },
                    ComponentKind::Ne => WInstr::Ne { a, b, dst: base, w },
                    ComponentKind::Lt => WInstr::Lt { a, b, dst: base, w },
                    ComponentKind::Le => WInstr::Le { a, b, dst: base, w },
                    ComponentKind::SLt => WInstr::SLt { a, b, dst: base, w },
                    _ => WInstr::SLe { a, b, dst: base, w },
                }
            }
            ComponentKind::And | ComponentKind::Or | ComponentKind::Xor => {
                let make = |a: u32, b: u32| match comp.kind() {
                    ComponentKind::And => WInstr::And2 {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                    ComponentKind::Or => WInstr::Or2 {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                    _ => WInstr::Xor2 {
                        a,
                        b,
                        dst: base,
                        w: out_w,
                    },
                };
                let a0 = pool_of(&mut p.pool, &maps, ins[0], out_w);
                let b0 = pool_of(&mut p.pool, &maps, ins[1], out_w);
                p.instrs.push(make(a0, b0));
                for &s in &ins[2..] {
                    let a = pool_of_planes(&mut p.pool, base, out_w);
                    let b = pool_of(&mut p.pool, &maps, s, out_w);
                    p.instrs.push(make(a, b));
                }
                continue;
            }
            ComponentKind::Not => WInstr::Not {
                a: pool_of(&mut p.pool, &maps, ins[0], out_w),
                dst: base,
                w: out_w,
            },
            ComponentKind::RedAnd | ComponentKind::RedOr | ComponentKind::RedXor => {
                let w = in_w[0];
                let a = pool_of(&mut p.pool, &maps, ins[0], w);
                match comp.kind() {
                    ComponentKind::RedAnd => WInstr::RedAnd { a, dst: base, w },
                    ComponentKind::RedOr => WInstr::RedOr { a, dst: base, w },
                    _ => WInstr::RedXor { a, dst: base, w },
                }
            }
            ComponentKind::Shl | ComponentKind::Shr | ComponentKind::Sar => {
                let a = pool_of(&mut p.pool, &maps, ins[0], out_w);
                let amt = pool_of(&mut p.pool, &maps, ins[1], in_w[1]);
                let (w, amt_w) = (out_w, in_w[1]);
                match comp.kind() {
                    ComponentKind::Shl => WInstr::Shl {
                        a,
                        amt,
                        dst: base,
                        w,
                        amt_w,
                    },
                    ComponentKind::Shr => WInstr::Shr {
                        a,
                        amt,
                        dst: base,
                        w,
                        amt_w,
                    },
                    _ => WInstr::Sar {
                        a,
                        amt,
                        dst: base,
                        w,
                        amt_w,
                    },
                }
            }
            ComponentKind::Mux => {
                let sel_w = in_w[0];
                let sel = pool_of(&mut p.pool, &maps, ins[0], sel_w);
                if ins.len() == 3 {
                    let a = pool_of(&mut p.pool, &maps, ins[1], out_w);
                    let b = pool_of(&mut p.pool, &maps, ins[2], out_w);
                    let idx = p.mux2s.len() as u32;
                    p.mux2s.push(WMux2 {
                        sel,
                        sel_w,
                        a,
                        b,
                        a_run: leg_run(&p.pool, a, out_w),
                        b_run: leg_run(&p.pool, b, out_w),
                        dst: base,
                        w: out_w,
                    });
                    WInstr::Mux2 { idx }
                } else {
                    let n = (ins.len() - 1) as u32;
                    let key = (p.pool[sel as usize..(sel + sel_w) as usize].to_vec(), n);
                    let group = *group_of.entry(key).or_insert_with(|| {
                        let g = p.mask_groups.len() as u32;
                        p.mask_groups.push(WMaskGroup {
                            sel,
                            sel_w,
                            n,
                            base: p.masks_len,
                        });
                        p.masks_len += n;
                        p.instrs.push(WInstr::SelMasks { group: g });
                        g
                    });
                    let legs = p.pool.len() as u32;
                    for &s in &ins[1..] {
                        pool_of(&mut p.pool, &maps, s, out_w);
                    }
                    let runs = p.leg_runs.len() as u32;
                    for d in 0..n {
                        p.leg_runs.push(leg_run(&p.pool, legs + d * out_w, out_w));
                    }
                    let idx = p.muxes.len() as u32;
                    p.muxes.push(WMux {
                        group,
                        masks: p.mask_groups[group as usize].base,
                        legs,
                        runs,
                        n,
                        dst: base,
                        w: out_w,
                    });
                    WInstr::MuxN { idx }
                }
            }
            ComponentKind::Table { table } => {
                let idx = p.tables.len() as u32;
                let mask = bits::mask(out_w);
                p.tables.push(WTable {
                    addr: pool_of(&mut p.pool, &maps, ins[0], in_w[0]),
                    addr_w: in_w[0],
                    table: table.iter().map(|&v| v & mask).collect(),
                    dst: base,
                    w: out_w,
                });
                WInstr::Tbl { idx }
            }
            ComponentKind::Slice { .. }
            | ComponentKind::Concat
            | ComponentKind::ZeroExt
            | ComponentKind::SignExt
            | ComponentKind::Const { .. } => unreachable!("elided or folded above"),
            ComponentKind::Register { .. } | ComponentKind::Memory { .. } => {
                unreachable!("topo order is combinational-only")
            }
        };
        p.instrs.push(instr);
    }

    // Sequential records: operand pools resolve against the now-complete
    // maps (a register's D input may itself be an alias).
    for comp in design.components() {
        match comp.kind() {
            ComponentKind::Register { init, has_enable } => {
                let w = design.signal(comp.output()).width();
                let scratch = p.scratch_len;
                p.scratch_len += w;
                let d = pool_of(&mut p.pool, &maps, comp.inputs()[0].index() as u32, w);
                p.regs.push(WReg {
                    d,
                    d_run: leg_run(&p.pool, d, w),
                    en: has_enable.then(|| maps[comp.inputs()[1].index()][0]),
                    q: maps[comp.output().index()][0],
                    w,
                    clock: comp.clock().expect("registers are clocked").index() as u32,
                    scratch,
                    init: init.unwrap_or(0),
                });
            }
            ComponentKind::Memory { words, init } => {
                let addr_w = design.signal(comp.inputs()[0]).width();
                let data_w = design.signal(comp.output()).width();
                let state_index = p.mems.len() as u32;
                p.mems.push(WMem {
                    raddr: pool_of(&mut p.pool, &maps, comp.inputs()[0].index() as u32, addr_w),
                    waddr: pool_of(&mut p.pool, &maps, comp.inputs()[1].index() as u32, addr_w),
                    wdata: pool_of(&mut p.pool, &maps, comp.inputs()[2].index() as u32, data_w),
                    addr_w,
                    data_w,
                    wen: maps[comp.inputs()[3].index()][0],
                    rdata: maps[comp.output().index()][0],
                    words: *words,
                    clock: comp.clock().expect("memories are clocked").index() as u32,
                    state_index,
                    init: match init {
                        Some(init) => init.clone(),
                        None => vec![0u64; *words as usize],
                    },
                });
            }
            _ => {}
        }
    }

    // Flatten the per-signal plane maps.
    p.plane_base = Vec::with_capacity(n_signals);
    for m in &maps {
        p.plane_base.push(p.plane_map.len() as u32);
        p.plane_map.extend_from_slice(m);
    }
    p.n_planes = n_planes;
    p
}

/// Pending per-memory capture, mirroring the graph engine's commit
/// ordering.
type MemCapture = (u32, Vec<u64>);
type MemWrite<W> = (usize, Vec<u64>, Vec<u64>, W);

/// Lane-word interpreter over a compiled [`Tape`] — the drop-in
/// counterpart of [`pe_sim::WideSimulator`], bit-identical per lane at
/// every [`LaneWord`] width. `W = bool` is the serial engine (wrapped
/// by [`crate::TapeSimulator`]), `u64` the classic 64-lane pack,
/// `[u64; 2]` / `[u64; 4]` the 128- and 256-lane packs.
#[derive(Debug)]
pub struct WideTapeSimulator<'t, W: LaneWord = u64> {
    tape: &'t Tape,
    planes: Vec<W>,
    /// One-hot select masks, filled by `SelMasks` instructions.
    masks: Vec<W>,
    /// Per mask group: the single active leg when all lanes agree on
    /// the select this settle, else -1.
    uniform: Vec<i32>,
    mem_state: Vec<Vec<u64>>,
    /// Per memory: last captured read-address planes, valid when the
    /// matching `mem_clean` flag is set. A capture whose address planes
    /// match the cache — and with no intervening write — leaves the
    /// read-data planes untouched, skipping both transposes.
    mem_raddr_cache: Vec<Vec<W>>,
    mem_clean: Vec<bool>,
    reg_scratch: Vec<W>,
    /// Per *port*: staged per-lane values, flattened at stride
    /// `W::LANES`. Drives are a plain compare-and-store; a dirty group
    /// merges its ports' lanes into one packed word per lane at settle,
    /// where the loop vectorizes.
    staged_lanes: Vec<u64>,
    /// Per *port* — settle folds members into the owning group's merge
    /// decision, so the drive path never touches port metadata.
    staged_dirty: Vec<bool>,
    /// Rotating guess for the next by-name input lookup — testbenches
    /// drive the same ports in the same order every cycle, so this hits
    /// almost always and the lookup is one string compare.
    stage_hint: usize,
    dirty: bool,
    cycle: u64,
    settles: u64,
}

impl<'t, W: LaneWord> WideTapeSimulator<'t, W> {
    /// Builds an interpreter with every lane at power-on state. Cheap
    /// relative to `WideSimulator::new`: no validation, no topological
    /// sort, no per-component lowering — just arena allocation.
    pub fn new(tape: &'t Tape) -> Self {
        let p = &tape.wide;
        let mut sim = Self {
            tape,
            planes: vec![W::zero(); p.n_planes as usize],
            masks: vec![W::zero(); p.masks_len as usize],
            uniform: vec![-1; p.mask_groups.len()],
            mem_state: p
                .mems
                .iter()
                .map(|m| vec![0u64; m.words as usize * W::LANES])
                .collect(),
            mem_raddr_cache: p
                .mems
                .iter()
                .map(|m| vec![W::zero(); m.addr_w as usize])
                .collect(),
            mem_clean: vec![false; p.mems.len()],
            reg_scratch: vec![W::zero(); p.scratch_len as usize],
            staged_lanes: vec![0u64; p.staged.len() * W::LANES],
            staged_dirty: vec![false; p.staged.len()],
            stage_hint: 0,
            dirty: true,
            cycle: 0,
            settles: 0,
        };
        sim.load_power_on_state();
        sim
    }

    fn load_power_on_state(&mut self) {
        let p = &self.tape.wide;
        self.planes[ONE as usize] = W::ones();
        for reg in &p.regs {
            for i in 0..reg.w {
                self.planes[(reg.q + i) as usize] = W::splat((reg.init >> i) & 1 == 1);
            }
        }
        for mem in &p.mems {
            let state = &mut self.mem_state[mem.state_index as usize];
            for (w, &v) in mem.init.iter().enumerate() {
                state[w * W::LANES..(w + 1) * W::LANES].fill(v);
            }
        }
    }

    /// The compiled tape under interpretation.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Number of clock edges stepped so far (shared by all lanes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of wide settle passes performed so far.
    pub fn settle_count(&self) -> u64 {
        self.settles
    }

    /// Number of lanes this instantiation evaluates per pass.
    pub fn lanes(&self) -> usize {
        W::LANES
    }

    /// Observes run counters into `registry` (`sim.wide_cycles`,
    /// `sim.wide_settle_passes` — the graph engine's histograms, so
    /// dashboards are engine-agnostic).
    pub fn record_metrics(&self, registry: &pe_trace::Registry) {
        registry.histogram("sim.wide_cycles").observe(self.cycle);
        registry
            .histogram("sim.wide_settle_passes")
            .observe(self.settles);
    }

    /// Drives a top-level input signal in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not input-driven, `value` does not fit its
    /// width, or `lane >= W::LANES`.
    pub fn set_input_lane(&mut self, signal: SignalId, lane: usize, value: u64) {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        let p = &self.tape.wide;
        let Some(si) = p.staged_of[signal.index()] else {
            panic!(
                "signal `{}` is not a top-level input",
                self.tape.names[signal.index()]
            );
        };
        let st = &p.staged[si as usize];
        assert!(
            value & !st.mask == 0,
            "value {:#x} does not fit `{}` ({} bits)",
            value,
            self.tape.names[signal.index()],
            st.width
        );
        self.stage_port(si as usize, lane, value);
    }

    /// Stages one port's value in one lane: compare-and-store, with the
    /// group merge deferred to settle.
    #[inline]
    fn stage_port(&mut self, si: usize, lane: usize, value: u64) {
        let v = &mut self.staged_lanes[si * W::LANES + lane];
        if *v != value {
            *v = value;
            self.staged_dirty[si] = true;
            self.dirty = true;
        }
    }

    /// Drives a named top-level input in one lane (the by-name path
    /// used by [`TapeLane`]).
    fn stage_by_name(&mut self, name: &str, lane: usize, value: u64) -> Result<(), PortError> {
        let staged = &self.tape.wide.staged;
        let hint = self.stage_hint;
        let si = if staged.get(hint).is_some_and(|s| s.name == name) {
            hint
        } else {
            staged
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| PortError::NoSuchInput(name.to_string()))?
        };
        self.stage_hint = if si + 1 == staged.len() { 0 } else { si + 1 };
        let st = &staged[si];
        if value & !st.mask != 0 {
            return Err(PortError::ValueTooWide {
                port: name.to_string(),
                value,
                width: st.width,
            });
        }
        self.stage_port(si, lane, value);
        Ok(())
    }

    /// Drives a top-level input signal to the same value in **all**
    /// lanes.
    ///
    /// # Panics
    ///
    /// As [`WideTapeSimulator::set_input_lane`].
    pub fn broadcast_input(&mut self, signal: SignalId, value: u64) {
        let p = &self.tape.wide;
        let Some(si) = p.staged_of[signal.index()] else {
            panic!(
                "signal `{}` is not a top-level input",
                self.tape.names[signal.index()]
            );
        };
        let st = &p.staged[si as usize];
        assert!(
            value & !st.mask == 0,
            "value {:#x} does not fit `{}` ({} bits)",
            value,
            self.tape.names[signal.index()],
            st.width
        );
        let si = si as usize;
        let lanes = &mut self.staged_lanes[si * W::LANES..(si + 1) * W::LANES];
        if lanes.iter().any(|&v| v != value) {
            lanes.fill(value);
            self.staged_dirty[si] = true;
            self.dirty = true;
        }
    }

    fn settle(&mut self) {
        if !self.dirty {
            return;
        }
        self.settles += 1;
        let p = &self.tape.wide;
        for grp in &p.stage_groups {
            let first = grp.first_port as usize;
            let members = first..first + grp.n_ports as usize;
            if !self.staged_dirty[members.clone()].iter().any(|&d| d) {
                continue;
            }
            self.staged_dirty[members].fill(false);
            let mut merged = [0u64; MAX_LANES];
            let merged = &mut merged[..W::LANES];
            merged.copy_from_slice(&self.staged_lanes[first * W::LANES..(first + 1) * W::LANES]);
            for si in first + 1..first + grp.n_ports as usize {
                let off = p.staged[si].off;
                let lanes = &self.staged_lanes[si * W::LANES..(si + 1) * W::LANES];
                for (m, &v) in merged.iter_mut().zip(lanes.iter()) {
                    *m |= v << off;
                }
            }
            let range = grp.base as usize..(grp.base + grp.width) as usize;
            pe_util::lanes::pack::<W>(merged, grp.width, &mut self.planes[range]);
        }
        let pl = &mut self.planes;
        let masks = &mut self.masks;
        let uni = &mut self.uniform;
        let pool = &p.pool;
        for instr in &p.instrs {
            match *instr {
                WInstr::Add { a, b, dst, w } => {
                    let mut carry = W::zero();
                    for i in 0..w {
                        let ai = pl[pool[(a + i) as usize] as usize];
                        let bi = pl[pool[(b + i) as usize] as usize];
                        pl[(dst + i) as usize] = ai.xor(bi).xor(carry);
                        carry = ai.and(bi).or(carry.and(ai.xor(bi)));
                    }
                }
                WInstr::AddD { a, b, dst, w } => {
                    let (a, b, dst, w) = (a as usize, b as usize, dst as usize, w as usize);
                    assert!(a + w <= pl.len() && b + w <= pl.len() && dst + w <= pl.len());
                    let mut carry = W::zero();
                    for i in 0..w {
                        let ai = pl[a + i];
                        let bi = pl[b + i];
                        pl[dst + i] = ai.xor(bi).xor(carry);
                        carry = ai.and(bi).or(carry.and(ai.xor(bi)));
                    }
                }
                WInstr::Sub { a, b, dst, w } => {
                    let mut borrow = W::zero();
                    for i in 0..w {
                        let ai = pl[pool[(a + i) as usize] as usize];
                        let bi = pl[pool[(b + i) as usize] as usize];
                        pl[(dst + i) as usize] = ai.xor(bi).xor(borrow);
                        borrow = ai.not().and(bi).or(borrow.and(ai.xor(bi).not()));
                    }
                }
                WInstr::SubD { a, b, dst, w } => {
                    let (a, b, dst, w) = (a as usize, b as usize, dst as usize, w as usize);
                    assert!(a + w <= pl.len() && b + w <= pl.len() && dst + w <= pl.len());
                    let mut borrow = W::zero();
                    for i in 0..w {
                        let ai = pl[a + i];
                        let bi = pl[b + i];
                        pl[dst + i] = ai.xor(bi).xor(borrow);
                        borrow = ai.not().and(bi).or(borrow.and(ai.xor(bi).not()));
                    }
                }
                WInstr::Mul { a, b, dst, w, bw } => {
                    for i in 0..w {
                        pl[(dst + i) as usize] = W::zero();
                    }
                    for j in 0..bw {
                        let bj = pl[pool[(b + j) as usize] as usize];
                        let mut carry = W::zero();
                        for i in 0..(w - j) {
                            let pp = pl[pool[(a + i) as usize] as usize].and(bj);
                            let acc = pl[(dst + j + i) as usize];
                            pl[(dst + j + i) as usize] = acc.xor(pp).xor(carry);
                            carry = acc.and(pp).or(carry.and(acc.xor(pp)));
                        }
                    }
                }
                WInstr::MulS { a, b, dst, w, bw } => {
                    let mut av = [0u64; MAX_LANES];
                    let mut bv = [0u64; MAX_LANES];
                    unpack_pool(pl, pool, a, w, &mut av[..W::LANES]);
                    unpack_pool(pl, pool, b, bw, &mut bv[..W::LANES]);
                    let m = bits::mask(w);
                    let mut prod = [0u64; MAX_LANES];
                    for l in 0..W::LANES {
                        prod[l] = av[l].wrapping_mul(bv[l]) & m;
                    }
                    let range = dst as usize..(dst + w) as usize;
                    pe_util::lanes::pack::<W>(&prod[..W::LANES], w, &mut pl[range]);
                }
                WInstr::Neg { a, dst, w } => {
                    let mut carry = W::ones();
                    for i in 0..w {
                        let ai = pl[pool[(a + i) as usize] as usize].not();
                        pl[(dst + i) as usize] = ai.xor(carry);
                        carry = carry.and(ai);
                    }
                }
                WInstr::Eq { a, b, dst, w } => {
                    pl[dst as usize] = eq_chain(pl, pool, a, b, w);
                }
                WInstr::Ne { a, b, dst, w } => {
                    pl[dst as usize] = eq_chain(pl, pool, a, b, w).not();
                }
                WInstr::Lt { a, b, dst, w } => {
                    pl[dst as usize] = lt_chain(pl, pool, a, b, w, false);
                }
                WInstr::Le { a, b, dst, w } => {
                    pl[dst as usize] = lt_chain(pl, pool, b, a, w, false).not();
                }
                WInstr::SLt { a, b, dst, w } => {
                    pl[dst as usize] = lt_chain(pl, pool, a, b, w, true);
                }
                WInstr::SLe { a, b, dst, w } => {
                    pl[dst as usize] = lt_chain(pl, pool, b, a, w, true).not();
                }
                WInstr::And2 { a, b, dst, w } => {
                    for i in 0..w {
                        pl[(dst + i) as usize] = pl[pool[(a + i) as usize] as usize]
                            .and(pl[pool[(b + i) as usize] as usize]);
                    }
                }
                WInstr::Or2 { a, b, dst, w } => {
                    for i in 0..w {
                        pl[(dst + i) as usize] = pl[pool[(a + i) as usize] as usize]
                            .or(pl[pool[(b + i) as usize] as usize]);
                    }
                }
                WInstr::Xor2 { a, b, dst, w } => {
                    for i in 0..w {
                        pl[(dst + i) as usize] = pl[pool[(a + i) as usize] as usize]
                            .xor(pl[pool[(b + i) as usize] as usize]);
                    }
                }
                WInstr::Not { a, dst, w } => {
                    for i in 0..w {
                        pl[(dst + i) as usize] = pl[pool[(a + i) as usize] as usize].not();
                    }
                }
                WInstr::RedAnd { a, dst, w } => {
                    let mut acc = W::ones();
                    for i in 0..w {
                        acc = acc.and(pl[pool[(a + i) as usize] as usize]);
                    }
                    pl[dst as usize] = acc;
                }
                WInstr::RedOr { a, dst, w } => {
                    let mut acc = W::zero();
                    for i in 0..w {
                        acc = acc.or(pl[pool[(a + i) as usize] as usize]);
                    }
                    pl[dst as usize] = acc;
                }
                WInstr::RedXor { a, dst, w } => {
                    let mut acc = W::zero();
                    for i in 0..w {
                        acc = acc.xor(pl[pool[(a + i) as usize] as usize]);
                    }
                    pl[dst as usize] = acc;
                }
                WInstr::Shl {
                    a,
                    amt,
                    dst,
                    w,
                    amt_w,
                } => {
                    for i in 0..w {
                        pl[(dst + i) as usize] = pl[pool[(a + i) as usize] as usize];
                    }
                    for j in 0..amt_w {
                        let aj = pl[pool[(amt + j) as usize] as usize];
                        if aj.is_zero() {
                            continue;
                        }
                        let dist = (1u64 << j.min(32)).min(w as u64) as u32;
                        for i in (0..w).rev() {
                            let src = if i >= dist {
                                pl[(dst + i - dist) as usize]
                            } else {
                                W::zero()
                            };
                            let cur = pl[(dst + i) as usize];
                            pl[(dst + i) as usize] = W::blend(aj, src, cur);
                        }
                    }
                }
                WInstr::Shr {
                    a,
                    amt,
                    dst,
                    w,
                    amt_w,
                }
                | WInstr::Sar {
                    a,
                    amt,
                    dst,
                    w,
                    amt_w,
                } => {
                    let fill = if matches!(instr, WInstr::Sar { .. }) {
                        pl[pool[(a + w - 1) as usize] as usize]
                    } else {
                        W::zero()
                    };
                    for i in 0..w {
                        pl[(dst + i) as usize] = pl[pool[(a + i) as usize] as usize];
                    }
                    for j in 0..amt_w {
                        let aj = pl[pool[(amt + j) as usize] as usize];
                        if aj.is_zero() {
                            continue;
                        }
                        let dist = (1u64 << j.min(32)).min(w as u64) as u32;
                        for i in 0..w {
                            let src = if i + dist < w {
                                pl[(dst + i + dist) as usize]
                            } else {
                                fill
                            };
                            let cur = pl[(dst + i) as usize];
                            pl[(dst + i) as usize] = W::blend(aj, src, cur);
                        }
                    }
                }
                WInstr::Mux2 { idx } => {
                    let mx = &p.mux2s[idx as usize];
                    let w = mx.w as usize;
                    let dst = mx.dst as usize;
                    let mut m1 = W::zero();
                    for j in 0..mx.sel_w {
                        m1 = m1.or(pl[pool[(mx.sel + j) as usize] as usize]);
                    }
                    if m1.is_zero() || m1.is_ones() {
                        // Every lane picks the same leg: straight copy.
                        let (run, off) = if m1.is_zero() {
                            (mx.a_run, mx.a)
                        } else {
                            (mx.b_run, mx.b)
                        };
                        if run.0 != NOT_RUN {
                            let (rb, rl) = (run.0 as usize, run.1 as usize);
                            pl.copy_within(rb..rb + rl, dst);
                            pl[dst + rl..dst + w].fill(W::zero());
                        } else {
                            for i in 0..w as u32 {
                                pl[dst + i as usize] = pl[pool[(off + i) as usize] as usize];
                            }
                        }
                    } else {
                        // Blend through a stack accumulator disjoint from
                        // the plane arena, so the per-leg loops vectorize
                        // (reading and writing `pl` in one loop defeats
                        // the optimizer's aliasing analysis).
                        let mut acc = [W::zero(); 64];
                        if mx.a_run.0 != NOT_RUN {
                            let (ab, al) = (mx.a_run.0 as usize, mx.a_run.1 as usize);
                            for (x, &s) in acc[..al].iter_mut().zip(&pl[ab..ab + al]) {
                                *x = s.andn(m1);
                            }
                        } else {
                            for (i, x) in acc[..w].iter_mut().enumerate() {
                                *x = pl[pool[mx.a as usize + i] as usize].andn(m1);
                            }
                        }
                        if mx.b_run.0 != NOT_RUN {
                            let (bb, bl) = (mx.b_run.0 as usize, mx.b_run.1 as usize);
                            for (x, &s) in acc[..bl].iter_mut().zip(&pl[bb..bb + bl]) {
                                *x = x.or(m1.and(s));
                            }
                        } else {
                            for (i, x) in acc[..w].iter_mut().enumerate() {
                                *x = x.or(m1.and(pl[pool[mx.b as usize + i] as usize]));
                            }
                        }
                        pl[dst..dst + w].copy_from_slice(&acc[..w]);
                    }
                }
                WInstr::SelMasks { group } => {
                    let g = &p.mask_groups[group as usize];
                    let base = g.base as usize;
                    let mut used = W::zero();
                    let mut nonzero = 0u32;
                    let mut win = -1i32;
                    for d in 0..g.n {
                        let m = if d + 1 == g.n {
                            used.not()
                        } else {
                            let m = eq_const_pool(pl, pool, g.sel, g.sel_w, d as u64);
                            used = used.or(m);
                            m
                        };
                        masks[base + d as usize] = m;
                        if !m.is_zero() {
                            nonzero += 1;
                            win = d as i32;
                        }
                    }
                    uni[group as usize] = if nonzero == 1 { win } else { -1 };
                }
                WInstr::MuxN { idx } => {
                    let mx = &p.muxes[idx as usize];
                    let w = mx.w as usize;
                    let dst = mx.dst as usize;
                    let u = uni[mx.group as usize];
                    if u >= 0 {
                        // Every lane agrees on the select — the mux is a
                        // straight copy of the winning leg.
                        let leg = (mx.legs + u as u32 * mx.w) as usize;
                        let (lb, len) = p.leg_runs[mx.runs as usize + u as usize];
                        if lb != NOT_RUN {
                            let (lb, len) = (lb as usize, len as usize);
                            pl.copy_within(lb..lb + len, dst);
                            pl[dst + len..dst + w].fill(W::zero());
                        } else {
                            for i in 0..w {
                                pl[dst + i] = pl[pool[leg + i] as usize];
                            }
                        }
                    } else {
                        // Accumulate active legs into a stack buffer
                        // disjoint from the plane arena — the run loops
                        // vectorize, and the result stores once.
                        let mbase = mx.masks as usize;
                        let mut acc = [W::zero(); 64];
                        for d in 0..mx.n as usize {
                            let m = masks[mbase + d];
                            if m.is_zero() {
                                continue;
                            }
                            let (lb, len) = p.leg_runs[mx.runs as usize + d];
                            if lb != NOT_RUN {
                                let (lb, len) = (lb as usize, len as usize);
                                for (x, &s) in acc[..len].iter_mut().zip(&pl[lb..lb + len]) {
                                    *x = x.or(m.and(s));
                                }
                            } else {
                                let leg = mx.legs as usize + d * w;
                                for (i, x) in acc[..w].iter_mut().enumerate() {
                                    *x = x.or(m.and(pl[pool[leg + i] as usize]));
                                }
                            }
                        }
                        pl[dst..dst + w].copy_from_slice(&acc[..w]);
                    }
                }
                WInstr::Tbl { idx } => {
                    let t = &p.tables[idx as usize];
                    if t.table.len() <= 64 {
                        for i in 0..t.w {
                            pl[(t.dst + i) as usize] = W::zero();
                        }
                        for (entry, &tv) in t.table.iter().enumerate() {
                            if tv == 0 {
                                continue;
                            }
                            let m = eq_const_pool(pl, pool, t.addr, t.addr_w, entry as u64);
                            if m.is_zero() {
                                continue;
                            }
                            let mut v = tv;
                            while v != 0 {
                                let i = v.trailing_zeros();
                                v &= v - 1;
                                if i < t.w {
                                    pl[(t.dst + i) as usize] = pl[(t.dst + i) as usize].or(m);
                                }
                            }
                        }
                    } else {
                        let mut buf = [W::zero(); 64];
                        for i in 0..t.addr_w as usize {
                            buf[i] = pl[pool[t.addr as usize + i] as usize];
                        }
                        let mut addrs = [0u64; MAX_LANES];
                        pe_util::lanes::unpack::<W>(
                            &buf[..t.addr_w as usize],
                            &mut addrs[..W::LANES],
                        );
                        let mut vals = [0u64; MAX_LANES];
                        for l in 0..W::LANES {
                            vals[l] = t.table[addrs[l] as usize];
                        }
                        let range = t.dst as usize..(t.dst + t.w) as usize;
                        pe_util::lanes::pack::<W>(&vals[..W::LANES], t.w, &mut pl[range]);
                    }
                }
            }
        }
        self.dirty = false;
    }

    /// Current value of a signal in one lane (settling first if
    /// needed).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn value_lane(&mut self, signal: SignalId, lane: usize) -> u64 {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        self.settle();
        let p = &self.tape.wide;
        let base = p.plane_base[signal.index()] as usize;
        let w = self.tape.widths[signal.index()] as usize;
        let mut v = 0u64;
        for i in 0..w {
            v |= (self.planes[p.plane_map[base + i] as usize].lane(lane) as u64) << i;
        }
        v
    }

    /// Current value of a named output port in one lane.
    ///
    /// # Errors
    ///
    /// [`PortError::NoSuchOutput`] if no such output port exists.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn try_output_lane(&mut self, name: &str, lane: usize) -> Result<u64, PortError> {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        let sig = self
            .tape
            .find_output(name)
            .ok_or_else(|| PortError::NoSuchOutput(name.to_string()))?;
        self.settle();
        let p = &self.tape.wide;
        let base = p.plane_base[sig as usize] as usize;
        let w = self.tape.widths[sig as usize] as usize;
        let mut v = 0u64;
        for i in 0..w {
            v |= (self.planes[p.plane_map[base + i] as usize].lane(lane) as u64) << i;
        }
        Ok(v)
    }

    /// Current value of a named output port in one lane.
    ///
    /// # Panics
    ///
    /// Panics if no such output port exists.
    pub fn output_lane(&mut self, name: &str, lane: usize) -> u64 {
        self.try_output_lane(name, lane)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Settles and returns the whole plane arena — the zero-copy read
    /// path for per-cycle digesting. Pair with
    /// [`WideTapeSimulator::plane_indices`] to locate a signal's bits;
    /// this is the tape counterpart of the graph engine's `slices()`
    /// borrow.
    pub fn settled_planes(&mut self) -> &[W] {
        self.settle();
        &self.planes
    }

    /// The plane index of each bit of `signal` (length = signal width).
    /// Indices are stable for the lifetime of the tape, so callers can
    /// resolve them once and read [`settled_planes`] each cycle.
    ///
    /// [`settled_planes`]: WideTapeSimulator::settled_planes
    pub fn plane_indices(&self, signal: SignalId) -> &[u32] {
        let p = &self.tape.wide;
        let base = p.plane_base[signal.index()] as usize;
        let w = self.tape.widths[signal.index()] as usize;
        &p.plane_map[base..base + w]
    }

    /// Settles and copies the bit planes of `signal` into `out`
    /// (`out[i]` = bit `i` across all lanes). The tape's aliasing
    /// means a signal's planes are not generally contiguous, so this
    /// replaces the graph engine's `slices()` borrow for packed
    /// digesting and transition detection.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the signal's width.
    pub fn read_planes_into(&mut self, signal: SignalId, out: &mut [W]) {
        self.settle();
        let p = &self.tape.wide;
        let base = p.plane_base[signal.index()] as usize;
        let w = self.tape.widths[signal.index()] as usize;
        assert_eq!(out.len(), w, "plane buffer width mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.planes[p.plane_map[base + i] as usize];
        }
    }

    /// Advances one clock edge on **all** clock domains in every lane.
    pub fn step(&mut self) {
        self.step_domains(None);
    }

    /// Advances one clock edge on the given domain only.
    pub fn step_clock(&mut self, clock: ClockId) {
        self.step_domains(Some(clock.index() as u32));
    }

    fn step_domains(&mut self, only: Option<u32>) {
        self.settle();
        let p = &self.tape.wide;
        // Capture phase (registers into scratch, memories into lane
        // buffers), then commit — simultaneous edges, exactly as the
        // graph engine.
        for reg in &p.regs {
            if only.is_some_and(|c| c != reg.clock) {
                continue;
            }
            let s0 = reg.scratch as usize;
            match reg.en {
                None => {
                    let (d, len) = reg.d_run;
                    if d != NOT_RUN {
                        let (d, len, w) = (d as usize, len as usize, reg.w as usize);
                        self.reg_scratch[s0..s0 + len].copy_from_slice(&self.planes[d..d + len]);
                        self.reg_scratch[s0 + len..s0 + w].fill(W::zero());
                    } else {
                        for i in 0..reg.w {
                            self.reg_scratch[s0 + i as usize] =
                                self.planes[p.pool[(reg.d + i) as usize] as usize];
                        }
                    }
                }
                Some(e) => {
                    let en = self.planes[e as usize];
                    if en.is_zero() {
                        // No lane captures: hold Q.
                        let (q, w) = (reg.q as usize, reg.w as usize);
                        self.reg_scratch[s0..s0 + w].copy_from_slice(&self.planes[q..q + w]);
                    } else if en.is_ones() {
                        let (d, len) = reg.d_run;
                        if d != NOT_RUN {
                            let (d, len, w) = (d as usize, len as usize, reg.w as usize);
                            self.reg_scratch[s0..s0 + len]
                                .copy_from_slice(&self.planes[d..d + len]);
                            self.reg_scratch[s0 + len..s0 + w].fill(W::zero());
                        } else {
                            for i in 0..reg.w {
                                self.reg_scratch[s0 + i as usize] =
                                    self.planes[p.pool[(reg.d + i) as usize] as usize];
                            }
                        }
                    } else {
                        for i in 0..reg.w {
                            let d = self.planes[p.pool[(reg.d + i) as usize] as usize];
                            let q = self.planes[(reg.q + i) as usize];
                            self.reg_scratch[s0 + i as usize] = W::blend(en, d, q);
                        }
                    }
                }
            }
        }
        let mut mem_rdata: Vec<Option<MemCapture>> = Vec::with_capacity(p.mems.len());
        let mut mem_writes: Vec<MemWrite<W>> = Vec::with_capacity(p.mems.len());
        for mem in &p.mems {
            if only.is_some_and(|c| c != mem.clock) {
                continue;
            }
            let mi = mem.state_index as usize;
            let cache = &mut self.mem_raddr_cache[mi];
            let same_addr = self.mem_clean[mi]
                && (0..mem.addr_w as usize)
                    .all(|i| cache[i] == self.planes[p.pool[mem.raddr as usize + i] as usize]);
            if same_addr {
                // Address and contents unchanged since the last capture:
                // the committed read-data planes are already correct.
                mem_rdata.push(None);
            } else {
                for (i, c) in cache.iter_mut().enumerate() {
                    *c = self.planes[p.pool[mem.raddr as usize + i] as usize];
                }
                self.mem_clean[mi] = true;
                let mut raddr = vec![0u64; W::LANES];
                unpack_pool(&self.planes, &p.pool, mem.raddr, mem.addr_w, &mut raddr);
                let state = &self.mem_state[mi];
                let words = mem.words as usize;
                let mut read = vec![0u64; W::LANES];
                for (l, r) in read.iter_mut().enumerate() {
                    *r = state[(raddr[l] as usize % words) * W::LANES + l];
                }
                mem_rdata.push(Some((mem.rdata, read)));
            }
            let wen = self.planes[mem.wen as usize];
            if !wen.is_zero() {
                let mut waddr = vec![0u64; W::LANES];
                let mut wdata = vec![0u64; W::LANES];
                if wen.count_lanes() <= 8 {
                    // Few lanes write: gathering their bits directly is
                    // cheaper than full per-word transposes.
                    wen.for_each_lane(|l| {
                        let mut a = 0u64;
                        for i in 0..mem.addr_w as usize {
                            a |= (self.planes[p.pool[mem.waddr as usize + i] as usize].lane(l)
                                as u64)
                                << i;
                        }
                        let mut d = 0u64;
                        for i in 0..mem.data_w as usize {
                            d |= (self.planes[p.pool[mem.wdata as usize + i] as usize].lane(l)
                                as u64)
                                << i;
                        }
                        waddr[l] = a;
                        wdata[l] = d;
                    });
                } else {
                    unpack_pool(&self.planes, &p.pool, mem.waddr, mem.addr_w, &mut waddr);
                    unpack_pool(&self.planes, &p.pool, mem.wdata, mem.data_w, &mut wdata);
                }
                mem_writes.push((mi, waddr, wdata, wen));
                self.mem_clean[mi] = false;
            }
        }
        // Commit phase.
        for reg in &p.regs {
            if only.is_some_and(|c| c != reg.clock) {
                continue;
            }
            let (q0, s0) = (reg.q as usize, reg.scratch as usize);
            let w = reg.w as usize;
            self.planes[q0..q0 + w].copy_from_slice(&self.reg_scratch[s0..s0 + w]);
        }
        let mut next_read = mem_rdata.into_iter();
        for mem in &p.mems {
            if only.is_some_and(|c| c != mem.clock) {
                continue;
            }
            let Some((rdata, read)) = next_read.next().expect("captured above") else {
                continue;
            };
            let range = rdata as usize..rdata as usize + mem.data_w as usize;
            pe_util::lanes::pack::<W>(&read, mem.data_w, &mut self.planes[range]);
        }
        for (state_index, waddr, wdata, wen) in mem_writes {
            let words = p.mems[state_index].words as usize;
            let state = &mut self.mem_state[state_index];
            wen.for_each_lane(|l| {
                state[(waddr[l] as usize % words) * W::LANES + l] = wdata[l];
            });
        }
        self.cycle += 1;
        self.dirty = true;
    }

    /// Runs `n` clock edges on all domains.
    pub fn step_n(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Resets every lane to power-on state: registers to `init`,
    /// memories to initial contents, inputs to zero, cycle counter 0.
    pub fn reset(&mut self) {
        self.planes.fill(W::zero());
        self.masks.fill(W::zero());
        self.uniform.fill(-1);
        self.mem_state.iter_mut().for_each(|s| s.fill(0));
        self.mem_clean.fill(false);
        self.staged_lanes.fill(0);
        self.staged_dirty.fill(false);
        self.stage_hint = 0;
        self.load_power_on_state();
        self.cycle = 0;
        self.dirty = true;
    }

    /// A [`SimControl`] view of one lane, for driving with an
    /// unmodified [`Testbench`].
    ///
    /// # Panics
    ///
    /// Panics if `lane >= W::LANES`.
    pub fn lane<'s>(&'s mut self, lane: usize) -> TapeLane<'s, 't, W> {
        assert!(lane < W::LANES, "lane {lane} out of range 0..{}", W::LANES);
        TapeLane { sim: self, lane }
    }
}

impl<W: LaneWord> pe_sim::WideControl for WideTapeSimulator<'_, W> {
    fn try_output_lane(&mut self, name: &str, lane: usize) -> Result<u64, PortError> {
        WideTapeSimulator::try_output_lane(self, name, lane)
    }

    fn lanes(&self) -> usize {
        W::LANES
    }
}

/// One lane of a [`WideTapeSimulator`], exposed through [`SimControl`]
/// so a [`Testbench`] written for the serial engine can drive it
/// unchanged.
#[derive(Debug)]
pub struct TapeLane<'s, 't, W: LaneWord = u64> {
    sim: &'s mut WideTapeSimulator<'t, W>,
    lane: usize,
}

impl<W: LaneWord> SimControl for TapeLane<'_, '_, W> {
    fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    fn set_input(&mut self, signal: SignalId, value: u64) {
        self.sim.set_input_lane(signal, self.lane, value);
    }

    fn try_set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), PortError> {
        self.sim.stage_by_name(name, self.lane, value)
    }

    fn try_output(&mut self, name: &str) -> Result<u64, PortError> {
        self.sim.try_output_lane(name, self.lane)
    }

    fn value(&mut self, signal: SignalId) -> u64 {
        self.sim.value_lane(signal, self.lane)
    }
}

/// Runs up to `W::LANES` testbenches in lock-step, one per lane — the
/// tape counterpart of [`pe_sim::run_lanes`].
///
/// # Panics
///
/// Panics if more than `W::LANES` testbenches are supplied.
pub fn run_lanes<W: LaneWord>(
    sim: &mut WideTapeSimulator<'_, W>,
    tbs: &mut [Box<dyn Testbench>],
) -> u64 {
    assert!(
        tbs.len() <= W::LANES,
        "at most {} lanes, got {}",
        W::LANES,
        tbs.len()
    );
    let cycles = tbs.iter().map(|t| t.cycles()).max().unwrap_or(0);
    for cycle in 0..cycles {
        for (lane, tb) in tbs.iter_mut().enumerate() {
            if cycle < tb.cycles() {
                tb.apply(cycle, &mut sim.lane(lane));
            }
        }
        for (lane, tb) in tbs.iter_mut().enumerate() {
            if cycle < tb.cycles() {
                tb.observe(cycle, &mut sim.lane(lane));
            }
        }
        sim.step();
    }
    cycles
}

/// All-lanes mask of pooled operands `a == b` over `w` bits.
fn eq_chain<W: LaneWord>(planes: &[W], pool: &[u32], a: u32, b: u32, w: u32) -> W {
    let mut m = W::ones();
    for i in 0..w {
        let ai = planes[pool[(a + i) as usize] as usize];
        let bi = planes[pool[(b + i) as usize] as usize];
        m = m.and(ai.xor(bi).not());
    }
    m
}

/// Lane-mask of `a < b` via the final borrow of `a - b`; `signed`
/// complements the MSB planes (two's-complement order is unsigned
/// order with the sign bit inverted).
fn lt_chain<W: LaneWord>(planes: &[W], pool: &[u32], a: u32, b: u32, w: u32, signed: bool) -> W {
    let mut borrow = W::zero();
    for i in 0..w {
        let mut ai = planes[pool[(a + i) as usize] as usize];
        let mut bi = planes[pool[(b + i) as usize] as usize];
        if signed && i == w - 1 {
            ai = ai.not();
            bi = bi.not();
        }
        borrow = ai.not().and(bi).or(borrow.and(ai.xor(bi).not()));
    }
    borrow
}

/// All-lanes mask of `pooled operand == value` for a constant, exiting
/// as soon as no lane can match.
fn eq_const_pool<W: LaneWord>(planes: &[W], pool: &[u32], sel: u32, w: u32, value: u64) -> W {
    let mut m = W::ones();
    for i in 0..w {
        let bit = planes[pool[(sel + i) as usize] as usize];
        m = m.and(if (value >> i) & 1 == 1 {
            bit
        } else {
            bit.not()
        });
        if m.is_zero() {
            return W::zero();
        }
    }
    m
}

/// Unpacks a pooled (possibly non-contiguous) operand into per-lane
/// scalars via a staging copy and the per-word 64×64 transpose.
fn unpack_pool<W: LaneWord>(planes: &[W], pool: &[u32], off: u32, w: u32, lanes: &mut [u64]) {
    let mut buf = [W::zero(); 64];
    for i in 0..w as usize {
        buf[i] = planes[pool[off as usize + i] as usize];
    }
    pe_util::lanes::unpack::<W>(&buf[..w as usize], lanes);
}
