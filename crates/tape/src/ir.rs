//! Def/use analysis over the compiled wide program — the tape IR.
//!
//! The tape's executable form ([`crate::wide::WideProgram`]) is already
//! an IR: a flat instruction list whose operands are plane indices
//! resolved through pools, plus side tables for muxes, lookup tables,
//! and sequential state. This module gives the optimizer and the
//! verifier a uniform view of that program:
//!
//! * [`instr_def`] — the contiguous plane run an instruction writes;
//! * [`instr_uses`] — every plane an instruction reads (through its
//!   pools and side tables);
//! * [`root_uses`] — the planes read *outside* the instruction stream:
//!   the per-signal alias maps (any signal is observable through
//!   [`crate::WideTapeSimulator::value_lane`]) and the sequential
//!   capture pools (register D/enable, memory address/data/enable);
//! * [`program_digest`] — an FNV-1a-128 fingerprint of the entire
//!   program, the "IR digest" carried by a
//!   [`crate::TapeCertificate`].
//!
//! Select-mask arena slots are modelled as *virtual planes* offset by
//! [`MASK_PLANE_BASE`], so the `SelMasks` → `MuxN` producer/consumer
//! relationship falls out of ordinary def-before-use reasoning instead
//! of needing a special case in every analysis.

use crate::wide::{WInstr, WideProgram};
use pe_util::hash::Fnv128;

/// Virtual-plane namespace for select-mask arena slots: mask slot `s`
/// is plane `MASK_PLANE_BASE + s`. Real plane indices stay below this
/// (the compiler allocates planes as dense `u32`s from 0).
pub(crate) const MASK_PLANE_BASE: u32 = 1 << 31;

/// Whether `plane` is a virtual select-mask slot.
pub(crate) fn is_mask_plane(plane: u32) -> bool {
    plane >= MASK_PLANE_BASE
}

/// The contiguous run of planes `instrs[i]` writes, as `(base, len)`.
/// `SelMasks` writes virtual mask planes (see [`MASK_PLANE_BASE`]).
pub(crate) fn instr_def(p: &WideProgram, i: usize) -> (u32, u32) {
    match p.instrs[i] {
        WInstr::Add { dst, w, .. }
        | WInstr::AddD { dst, w, .. }
        | WInstr::Sub { dst, w, .. }
        | WInstr::SubD { dst, w, .. }
        | WInstr::Mul { dst, w, .. }
        | WInstr::MulS { dst, w, .. }
        | WInstr::Neg { dst, w, .. }
        | WInstr::And2 { dst, w, .. }
        | WInstr::Or2 { dst, w, .. }
        | WInstr::Xor2 { dst, w, .. }
        | WInstr::Not { dst, w, .. }
        | WInstr::Shl { dst, w, .. }
        | WInstr::Shr { dst, w, .. }
        | WInstr::Sar { dst, w, .. } => (dst, w),
        WInstr::Eq { dst, .. }
        | WInstr::Ne { dst, .. }
        | WInstr::Lt { dst, .. }
        | WInstr::Le { dst, .. }
        | WInstr::SLt { dst, .. }
        | WInstr::SLe { dst, .. }
        | WInstr::RedAnd { dst, .. }
        | WInstr::RedOr { dst, .. }
        | WInstr::RedXor { dst, .. } => (dst, 1),
        WInstr::Mux2 { idx } => {
            let mx = &p.mux2s[idx as usize];
            (mx.dst, mx.w)
        }
        WInstr::MuxN { idx } => {
            let mx = &p.muxes[idx as usize];
            (mx.dst, mx.w)
        }
        WInstr::SelMasks { group } => {
            let g = &p.mask_groups[group as usize];
            (MASK_PLANE_BASE + g.base, g.n)
        }
        WInstr::Tbl { idx } => {
            let t = &p.tables[idx as usize];
            (t.dst, t.w)
        }
    }
}

/// Appends the pool slice `pool[off .. off + w]` to `out`.
fn pooled(p: &WideProgram, off: u32, w: u32, out: &mut Vec<u32>) {
    out.extend_from_slice(&p.pool[off as usize..(off + w) as usize]);
}

/// Appends every plane `instrs[i]` reads to `out` — pooled operands,
/// dense plane-run operands, side-table legs and selects, and (for
/// `MuxN`) the virtual mask planes its group provides. Self-reads of
/// planes the instruction writes first within one dispatch (barrel
/// blends, multiply accumulation) are *not* uses; an n-ary chain link
/// reading a prior link's output through its pool *is*.
pub(crate) fn instr_uses(p: &WideProgram, i: usize, out: &mut Vec<u32>) {
    match p.instrs[i] {
        WInstr::Add { a, b, w, .. } | WInstr::Sub { a, b, w, .. } => {
            pooled(p, a, w, out);
            pooled(p, b, w, out);
        }
        WInstr::AddD { a, b, w, .. } | WInstr::SubD { a, b, w, .. } => {
            out.extend(a..a + w);
            out.extend(b..b + w);
        }
        WInstr::Mul { a, b, w, bw, .. } | WInstr::MulS { a, b, w, bw, .. } => {
            pooled(p, a, w, out);
            pooled(p, b, bw, out);
        }
        WInstr::Neg { a, w, .. }
        | WInstr::Not { a, w, .. }
        | WInstr::RedAnd { a, w, .. }
        | WInstr::RedOr { a, w, .. }
        | WInstr::RedXor { a, w, .. } => pooled(p, a, w, out),
        WInstr::Eq { a, b, w, .. }
        | WInstr::Ne { a, b, w, .. }
        | WInstr::Lt { a, b, w, .. }
        | WInstr::Le { a, b, w, .. }
        | WInstr::SLt { a, b, w, .. }
        | WInstr::SLe { a, b, w, .. }
        | WInstr::And2 { a, b, w, .. }
        | WInstr::Or2 { a, b, w, .. }
        | WInstr::Xor2 { a, b, w, .. } => {
            pooled(p, a, w, out);
            pooled(p, b, w, out);
        }
        WInstr::Shl {
            a, amt, w, amt_w, ..
        }
        | WInstr::Shr {
            a, amt, w, amt_w, ..
        }
        | WInstr::Sar {
            a, amt, w, amt_w, ..
        } => {
            pooled(p, a, w, out);
            pooled(p, amt, amt_w, out);
        }
        WInstr::Mux2 { idx } => {
            let mx = &p.mux2s[idx as usize];
            pooled(p, mx.sel, mx.sel_w, out);
            pooled(p, mx.a, mx.w, out);
            pooled(p, mx.b, mx.w, out);
        }
        WInstr::MuxN { idx } => {
            let mx = &p.muxes[idx as usize];
            pooled(p, mx.legs, mx.n * mx.w, out);
            let g = &p.mask_groups[mx.group as usize];
            out.extend((g.base..g.base + g.n).map(|s| MASK_PLANE_BASE + s));
        }
        WInstr::SelMasks { group } => {
            let g = &p.mask_groups[group as usize];
            pooled(p, g.sel, g.sel_w, out);
        }
        WInstr::Tbl { idx } => {
            let t = &p.tables[idx as usize];
            pooled(p, t.addr, t.addr_w, out);
        }
    }
}

/// Appends every plane read *outside* the instruction stream: the full
/// per-signal alias map (any signal is observable after settle) and the
/// sequential capture pools.
pub(crate) fn root_uses(p: &WideProgram, out: &mut Vec<u32>) {
    out.extend_from_slice(&p.plane_map);
    for reg in &p.regs {
        pooled(p, reg.d, reg.w, out);
        if let Some(en) = reg.en {
            out.push(en);
        }
    }
    for mem in &p.mems {
        pooled(p, mem.raddr, mem.addr_w, out);
        pooled(p, mem.waddr, mem.addr_w, out);
        pooled(p, mem.wdata, mem.data_w, out);
        out.push(mem.wen);
    }
}

/// The planes holding pre-settle *state* — defined before any
/// instruction runs and never legally written by one: the reserved
/// zero/one planes, every stage-group (input) plane, every register Q
/// run, and every memory read-data run.
pub(crate) fn state_planes(p: &WideProgram) -> Vec<bool> {
    let mut state = vec![false; p.n_planes as usize];
    state[0] = true;
    state[1] = true;
    for g in &p.stage_groups {
        for pl in g.base..g.base + g.width {
            state[pl as usize] = true;
        }
    }
    for reg in &p.regs {
        for pl in reg.q..reg.q + reg.w {
            state[pl as usize] = true;
        }
    }
    for mem in &p.mems {
        for pl in mem.rdata..mem.rdata + mem.data_w {
            state[pl as usize] = true;
        }
    }
    state
}

/// A stable discriminant for hashing and value-numbering instructions.
pub(crate) fn instr_tag(i: &WInstr) -> u8 {
    match i {
        WInstr::Add { .. } => 0,
        WInstr::AddD { .. } => 1,
        WInstr::Sub { .. } => 2,
        WInstr::SubD { .. } => 3,
        WInstr::Mul { .. } => 4,
        WInstr::MulS { .. } => 5,
        WInstr::Neg { .. } => 6,
        WInstr::Eq { .. } => 7,
        WInstr::Ne { .. } => 8,
        WInstr::Lt { .. } => 9,
        WInstr::Le { .. } => 10,
        WInstr::SLt { .. } => 11,
        WInstr::SLe { .. } => 12,
        WInstr::And2 { .. } => 13,
        WInstr::Or2 { .. } => 14,
        WInstr::Xor2 { .. } => 15,
        WInstr::Not { .. } => 16,
        WInstr::RedAnd { .. } => 17,
        WInstr::RedOr { .. } => 18,
        WInstr::RedXor { .. } => 19,
        WInstr::Shl { .. } => 20,
        WInstr::Shr { .. } => 21,
        WInstr::Sar { .. } => 22,
        WInstr::Mux2 { .. } => 23,
        WInstr::MuxN { .. } => 24,
        WInstr::SelMasks { .. } => 25,
        WInstr::Tbl { .. } => 26,
    }
}

/// FNV-1a-128 fingerprint of the whole compiled program: instruction
/// stream (with defs and uses fully resolved), alias maps, side tables,
/// and sequential records. Two tapes with the same digest execute
/// identically; any pass that changes the program changes the digest.
pub(crate) fn program_digest(p: &WideProgram) -> String {
    let mut h = Fnv128::new();
    let mut scratch = Vec::new();
    h.update(b"instrs")
        .update_field(&(p.instrs.len() as u64).to_le_bytes());
    for i in 0..p.instrs.len() {
        h.update(&[instr_tag(&p.instrs[i])]);
        let (dst, w) = instr_def(p, i);
        h.update(&dst.to_le_bytes());
        h.update(&w.to_le_bytes());
        scratch.clear();
        instr_uses(p, i, &mut scratch);
        for &u in &scratch {
            h.update(&u.to_le_bytes());
        }
    }
    h.update(b"planes").update_field(&p.n_planes.to_le_bytes());
    h.update(b"map")
        .update_field(&(p.plane_map.len() as u64).to_le_bytes());
    for &m in &p.plane_map {
        h.update(&m.to_le_bytes());
    }
    for &b in &p.plane_base {
        h.update(&b.to_le_bytes());
    }
    h.update(b"tables")
        .update_field(&(p.tables.len() as u64).to_le_bytes());
    for t in &p.tables {
        h.update(&t.w.to_le_bytes());
        for &v in &t.table {
            h.update(&v.to_le_bytes());
        }
    }
    h.update(b"regs")
        .update_field(&(p.regs.len() as u64).to_le_bytes());
    for r in &p.regs {
        for f in [r.d, r.q, r.w, r.clock, r.scratch, r.en.unwrap_or(u32::MAX)] {
            h.update(&f.to_le_bytes());
        }
        h.update(&r.init.to_le_bytes());
    }
    h.update(b"mems")
        .update_field(&(p.mems.len() as u64).to_le_bytes());
    for m in &p.mems {
        for f in [
            m.raddr, m.waddr, m.wdata, m.addr_w, m.data_w, m.wen, m.rdata, m.words, m.clock,
        ] {
            h.update(&f.to_le_bytes());
        }
        for &v in &m.init {
            h.update(&v.to_le_bytes());
        }
    }
    h.update(b"staged")
        .update_field(&(p.staged.len() as u64).to_le_bytes());
    for s in &p.staged {
        h.update(s.name.as_bytes());
        h.update(&s.off.to_le_bytes());
        h.update(&s.width.to_le_bytes());
    }
    h.hex()
}
