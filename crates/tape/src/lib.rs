//! # pe-tape — compiled instruction-tape simulation
//!
//! The graph engines in `pe-sim` re-traverse the netlist every settle
//! pass: each combinational component is fetched from the design, its
//! kind matched, and its operands gathered through `SignalId`
//! indirection. This crate does what the Berkeley Emulation Engine does
//! for netlists in hardware — compile the design **once** into a flat,
//! cache-friendly instruction tape and interpret that instead:
//!
//! * [`Tape::compile`] validates the design (the same diagnosed
//!   [`pe_rtl::DesignError`]s lint reports: undriven signals,
//!   combinational cycles), topologically schedules every combinational
//!   cone, constant-folds cones whose inputs are all constants, and
//!   lowers the remainder to dense instructions with pre-resolved
//!   operand indices — no per-cycle graph walks, no `HashMap` lookups.
//! * [`WideTapeSimulator`] interprets the program over a plane arena of
//!   [`pe_util::lanes::LaneWord`]s — generic from 1 (`bool`) through 64
//!   (`u64`) to 128/256 (`[u64; 2]`/`[u64; 4]`) lanes; the compiled
//!   program is width-independent. The compiler additionally *elides*
//!   wiring at compile time: slices, concatenations, zero/sign
//!   extensions, constant-amount shifts, and constant-select muxes
//!   become plane aliases that cost nothing per cycle (the graph engine
//!   runs full barrel stages for a constant shift), and out-of-width
//!   operand reads resolve to a reserved all-zero plane, eliminating
//!   the width branch from the hot loop. Bit-identical to
//!   [`pe_sim::WideSimulator`], lane for lane.
//! * [`TapeSimulator`] is the serial engine: a thin wrapper fixing the
//!   wide interpreter at one lane (`bool` lane word), bit-identical to
//!   [`pe_sim::Simulator`] — there is no duplicated serial interpreter
//!   to keep in sync.
//!
//! A [`Tape`] owns its whole program (it does not borrow the
//! [`Design`]), so it can be memoized and shared — `pe-serve` keeps one
//! per prepared design and constructs fresh interpreters per batch at a
//! fraction of a `WideSimulator`'s build cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ir;
mod passes;
mod serial;
pub mod verify;
mod wide;

pub use serial::TapeSimulator;
pub use verify::{
    validate_against, PassStat, TapeCertificate, ValidateError, WfError, DEFAULT_PROBE_CYCLES,
    DEFAULT_PROBE_ROUNDS, MISCOMPILE_MUTATIONS,
};
pub use wide::{run_lanes, TapeLane, WideTapeSimulator};

use pe_rtl::{Design, DesignError};
use pe_util::hash::Fnv128;
use std::fmt;

/// Why a design cannot be compiled to a tape.
///
/// Compilation is gated on [`Design::validate`] plus topological
/// scheduling, so every rejection carries the same diagnosed reason the
/// lint engine reports (`undriven-signal`, `comb-cycle`, …) instead of a
/// panic or a miscompiled tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeError {
    /// The underlying structural diagnosis.
    pub cause: DesignError,
}

impl TapeError {
    /// The stable lint rule id this diagnosis corresponds to
    /// (`pe-lint` uses the same ids for its structural findings).
    pub fn rule(&self) -> &'static str {
        match self.cause {
            DesignError::UndrivenSignal { .. } => "undriven-signal",
            DesignError::CombinationalCycle { .. } => "comb-cycle",
            DesignError::MultipleDrivers { .. } => "multiple-drivers",
            _ => "invalid-design",
        }
    }
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tape compilation rejected design: {}", self.cause)
    }
}

impl std::error::Error for TapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

impl From<DesignError> for TapeError {
    fn from(cause: DesignError) -> Self {
        TapeError { cause }
    }
}

/// A named port resolved to a dense signal index.
#[derive(Debug, Clone)]
pub(crate) struct TapePort {
    pub name: String,
    pub signal: u32,
}

/// A compiled design: the width-independent lane-word instruction
/// program plus the signal metadata the interpreters need. Owns
/// everything — no borrow of the source [`Design`] — so it can be
/// cached and shared across simulator constructions at any lane width.
#[derive(Debug)]
pub struct Tape {
    pub(crate) name: String,
    pub(crate) widths: Vec<u32>,
    pub(crate) names: Vec<String>,
    pub(crate) outputs: Vec<TapePort>,
    pub(crate) wide: wide::WideProgram,
}

impl Tape {
    /// Compiles `design` into the lane-word instruction tape.
    ///
    /// # Errors
    ///
    /// Returns a [`TapeError`] carrying the design's diagnosed
    /// structural defect (undriven signal, combinational cycle, …) —
    /// exactly the designs [`pe_sim::Simulator::new`] also rejects.
    pub fn compile(design: &Design) -> Result<Self, TapeError> {
        design.validate()?;
        let order = pe_rtl::topo_order(design)?;
        let consts = fold_constants(design, &order);
        let wide = wide::compile_wide(design, &order, &consts);
        Ok(Tape {
            name: design.name().to_string(),
            widths: design.signals().iter().map(|s| s.width()).collect(),
            names: design
                .signals()
                .iter()
                .map(|s| s.name().to_string())
                .collect(),
            outputs: design
                .outputs()
                .iter()
                .map(|p| TapePort {
                    name: p.name().to_string(),
                    signal: p.signal().index() as u32,
                })
                .collect(),
            wide,
        })
    }

    /// Compiles `design`, runs the optimization pipeline (constant
    /// fold-forwarding, dead-instruction elimination with plane
    /// compaction, plane-locality scheduling — each re-proven
    /// well-formed), and translation-validates the optimized tape
    /// against the source netlist. The returned [`TapeCertificate`]
    /// records the netlist and IR digests, per-pass instruction deltas,
    /// and whether validation succeeded; callers that require a
    /// faithful tape (admission in `pe-serve`) must check
    /// `certificate.validated`.
    ///
    /// # Errors
    ///
    /// Returns a [`TapeError`] when the design itself is structurally
    /// invalid — the same rejections as [`Tape::compile`]. A tape that
    /// compiles but fails validation is *returned*, with the failure
    /// named in the certificate.
    pub fn compile_optimized(design: &Design) -> Result<(Self, TapeCertificate), TapeError> {
        let mut tape = Tape::compile(design)?;
        let pre_instructions = tape.wide.instrs.len() as u64;
        let pre_planes = u64::from(tape.wide.n_planes);
        let passes = passes::optimize(&mut tape.wide, &tape.widths);
        let mut netlist_hash = Fnv128::new();
        netlist_hash.update(pe_rtl::text::to_text(design).as_bytes());
        let validation = verify::validate_against(
            design,
            &tape,
            verify::DEFAULT_PROBE_ROUNDS,
            verify::DEFAULT_PROBE_CYCLES,
        );
        let certificate = TapeCertificate {
            design: design.name().to_string(),
            netlist_fnv128: netlist_hash.hex(),
            ir_fnv128: ir::program_digest(&tape.wide),
            pre_instructions,
            post_instructions: tape.wide.instrs.len() as u64,
            pre_planes,
            post_planes: u64::from(tape.wide.n_planes),
            passes,
            validated: validation.is_ok(),
            reason: validation
                .err()
                .map(|e| format!("{}: {}", e.reason, e.detail)),
            probe_rounds: verify::DEFAULT_PROBE_ROUNDS,
            probe_cycles: verify::DEFAULT_PROBE_CYCLES,
        };
        Ok((tape, certificate))
    }

    /// The compiled design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions on the tape (wiring — slices, concats,
    /// extensions, constant shifts — is aliased away entirely; constant
    /// cones fold to zero instructions). Width-independent: the same
    /// program runs at every lane count.
    pub fn wide_instructions(&self) -> usize {
        self.wide.instrs.len()
    }

    /// Number of bit planes the wide interpreter allocates (including
    /// the reserved all-zeros and all-ones planes).
    pub fn wide_planes(&self) -> usize {
        self.wide.n_planes as usize
    }

    pub(crate) fn find_output(&self, name: &str) -> Option<u32> {
        self.outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.signal)
    }
}

/// Per-signal compile-time constants: `Some(v)` iff the signal is
/// driven by a cone whose leaves are all `Const` components. Those
/// signals need no instructions — the tape aliases their bits to the
/// reserved zero/one planes.
pub(crate) fn fold_constants(design: &Design, order: &[pe_rtl::ComponentId]) -> Vec<Option<u64>> {
    let mut consts: Vec<Option<u64>> = vec![None; design.signals().len()];
    let mut ins: Vec<u64> = Vec::new();
    for &id in order {
        let comp = design.component(id);
        if comp.kind().is_sequential() {
            continue;
        }
        ins.clear();
        let mut all_const = true;
        for &s in comp.inputs() {
            match consts[s.index()] {
                Some(v) => ins.push(v),
                None => {
                    all_const = false;
                    break;
                }
            }
        }
        if !all_const {
            continue;
        }
        let in_widths: Vec<u32> = comp
            .inputs()
            .iter()
            .map(|s| design.signal(*s).width())
            .collect();
        let out_width = design.signal(comp.output()).width();
        consts[comp.output().index()] = Some(comp.kind().eval(&ins, &in_widths, out_width));
    }
    consts
}

/// Convenience used by both compilers: a combinational component's
/// `(input indices, input widths, output index, output width)`.
pub(crate) fn comp_shape(
    design: &Design,
    comp: &pe_rtl::Component,
) -> (Vec<u32>, Vec<u32>, u32, u32) {
    let inputs: Vec<u32> = comp.inputs().iter().map(|s| s.index() as u32).collect();
    let in_widths: Vec<u32> = comp
        .inputs()
        .iter()
        .map(|s| design.signal(*s).width())
        .collect();
    let output = comp.output().index() as u32;
    let out_width = design.signal(comp.output()).width();
    (inputs, in_widths, output, out_width)
}
