//! Static verification of compiled tapes: a well-formedness checker
//! over the tape IR and a translation validator that proves the lowered
//! (and optimized) program equivalent to the source netlist.
//!
//! Two layers, both with *named* rejection reasons so a failure is a
//! diagnosis rather than a panic:
//!
//! 1. [`Tape::check_well_formed`] proves structural soundness without
//!    executing anything: operand and side-table bounds, def-before-use
//!    across the combinational frontier (select-mask arena slots
//!    included, as virtual planes), alias-map soundness (every plane a
//!    signal observes is defined by the end of settle), plane lifetime
//!    and overlap (a plane is written at most once per settle unless
//!    the writer reads it — the n-ary chain contract), and consistency
//!    of the derived fast-path metadata (dense runs, mask-group
//!    bindings) with the pools they summarize.
//! 2. [`validate_against`] symbolically co-simulates the source netlist
//!    against the tape interpreter using the ternary per-bit lattice
//!    from [`pe_lint::dataflow`]: concrete probe rounds drive random
//!    input words through both sides and demand per-signal equality
//!    every cycle (output *and* next-state equivalence — register and
//!    memory state evolves across the probe window), and an X round
//!    starts uninitialized registers at ⊥ and demands the tape agree on
//!    every bit the lattice proves defined. A mutant tape that survives
//!    the structural checks is caught here.
//!
//! [`Tape::compile_optimized`] packages both into a
//! [`TapeCertificate`]: netlist and IR digests, per-pass instruction
//! deltas, and the validated flag `pe-serve` admission requires.

use crate::ir;
use crate::wide::{WInstr, WideProgram};
use crate::Tape;
use pe_lint::dataflow::Tern;
use pe_rtl::{ComponentKind, Design};
use pe_util::bits;
use std::fmt;

/// Probe rounds [`Tape::compile_optimized`] drives through the
/// translation validator (plus one X round).
pub const DEFAULT_PROBE_ROUNDS: u32 = 3;
/// Clock cycles per validation probe round.
pub const DEFAULT_PROBE_CYCLES: u32 = 8;

/// A structural defect found by the well-formedness checker. `reason`
/// is a stable machine-readable identifier; `detail` names the
/// offending instruction, plane, or signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfError {
    /// Stable defect class: `operand-bounds`, `def-before-use`,
    /// `alias-unsound`, `plane-overlap`, `writes-state-plane`,
    /// `mask-group-mismatch`, `side-table-bounds`, or
    /// `run-inconsistent`.
    pub reason: &'static str,
    /// Human-readable location of the defect.
    pub detail: String,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tape ill-formed ({}): {}", self.reason, self.detail)
    }
}

impl std::error::Error for WfError {}

/// Why the translation validator rejected a tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Stable rejection class: a [`WfError::reason`] when the
    /// structural pre-check failed, `signal-mismatch` when a concrete
    /// probe diverged, or `x-refinement` when the tape contradicted a
    /// bit the ternary lattice proves defined.
    pub reason: &'static str,
    /// Which signal/cycle/round diverged, with both values.
    pub detail: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "translation validation failed ({}): {}",
            self.reason, self.detail
        )
    }
}

impl std::error::Error for ValidateError {}

impl From<WfError> for ValidateError {
    fn from(e: WfError) -> Self {
        ValidateError {
            reason: e.reason,
            detail: e.detail,
        }
    }
}

/// One optimization pass's effect on the program, recorded in the
/// certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name (`fold-forward`, `die-compact`, `schedule`).
    pub pass: &'static str,
    /// Instruction count entering the pass.
    pub instructions_before: u64,
    /// Instruction count leaving the pass.
    pub instructions_after: u64,
    /// Plane count entering the pass.
    pub planes_before: u64,
    /// Plane count leaving the pass.
    pub planes_after: u64,
}

/// The machine-checked equivalence evidence attached to an optimized
/// tape: what was compiled (netlist digest), what came out (IR digest),
/// what each pass did, and whether the translation validator proved the
/// result equivalent to the source netlist. `pe-serve` refuses to serve
/// a design whose tape carries `validated: false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeCertificate {
    /// Design name.
    pub design: String,
    /// FNV-1a-128 of the source netlist's canonical text form.
    pub netlist_fnv128: String,
    /// FNV-1a-128 of the optimized program (see `ir::program_digest`).
    pub ir_fnv128: String,
    /// Instructions straight out of `Tape::compile`.
    pub pre_instructions: u64,
    /// Instructions after the pass pipeline.
    pub post_instructions: u64,
    /// Planes straight out of `Tape::compile`.
    pub pre_planes: u64,
    /// Planes after the pass pipeline.
    pub post_planes: u64,
    /// Per-pass deltas, pipeline order.
    pub passes: Vec<PassStat>,
    /// Whether the optimized tape was proven equivalent to the netlist.
    pub validated: bool,
    /// The rejection reason when `validated` is false.
    pub reason: Option<String>,
    /// Concrete probe rounds the validator drove (plus one X round).
    pub probe_rounds: u32,
    /// Cycles per probe round.
    pub probe_cycles: u32,
}

impl TapeCertificate {
    /// Instructions removed by the pipeline.
    pub fn instructions_removed(&self) -> u64 {
        self.pre_instructions.saturating_sub(self.post_instructions)
    }
}

// ---------------------------------------------------------------------
// Well-formedness
// ---------------------------------------------------------------------

fn wf(reason: &'static str, detail: String) -> WfError {
    WfError { reason, detail }
}

/// Bounds-checks one pooled operand range.
fn check_pool_range(
    p: &WideProgram,
    off: u32,
    w: u32,
    what: &str,
    i: usize,
) -> Result<(), WfError> {
    let end = off as usize + w as usize;
    if end > p.pool.len() {
        return Err(wf(
            "operand-bounds",
            format!(
                "instr {i}: {what} pool range {off}+{w} exceeds pool length {}",
                p.pool.len()
            ),
        ));
    }
    for &pl in &p.pool[off as usize..end] {
        if pl >= p.n_planes {
            return Err(wf(
                "operand-bounds",
                format!("instr {i}: {what} reads plane {pl} >= {}", p.n_planes),
            ));
        }
    }
    Ok(())
}

/// Bounds-checks every operand and side-table reference of one
/// instruction, so the def/use extractors in `ir` cannot panic on it.
fn check_instr_shape(p: &WideProgram, i: usize) -> Result<(), WfError> {
    let dense = |base: u32, w: u32, what: &str| -> Result<(), WfError> {
        if base as usize + w as usize > p.n_planes as usize {
            return Err(wf(
                "operand-bounds",
                format!(
                    "instr {i}: dense {what} run {base}+{w} exceeds {} planes",
                    p.n_planes
                ),
            ));
        }
        Ok(())
    };
    match p.instrs[i] {
        WInstr::Add { a, b, w, .. } | WInstr::Sub { a, b, w, .. } => {
            check_pool_range(p, a, w, "a", i)?;
            check_pool_range(p, b, w, "b", i)
        }
        WInstr::AddD { a, b, w, .. } | WInstr::SubD { a, b, w, .. } => {
            dense(a, w, "a")?;
            dense(b, w, "b")
        }
        WInstr::Mul { a, b, w, bw, .. } | WInstr::MulS { a, b, w, bw, .. } => {
            check_pool_range(p, a, w, "a", i)?;
            check_pool_range(p, b, bw, "b", i)
        }
        WInstr::Neg { a, w, .. }
        | WInstr::Not { a, w, .. }
        | WInstr::RedAnd { a, w, .. }
        | WInstr::RedOr { a, w, .. }
        | WInstr::RedXor { a, w, .. } => check_pool_range(p, a, w, "a", i),
        WInstr::Eq { a, b, w, .. }
        | WInstr::Ne { a, b, w, .. }
        | WInstr::Lt { a, b, w, .. }
        | WInstr::Le { a, b, w, .. }
        | WInstr::SLt { a, b, w, .. }
        | WInstr::SLe { a, b, w, .. }
        | WInstr::And2 { a, b, w, .. }
        | WInstr::Or2 { a, b, w, .. }
        | WInstr::Xor2 { a, b, w, .. } => {
            check_pool_range(p, a, w, "a", i)?;
            check_pool_range(p, b, w, "b", i)
        }
        WInstr::Shl {
            a, amt, w, amt_w, ..
        }
        | WInstr::Shr {
            a, amt, w, amt_w, ..
        }
        | WInstr::Sar {
            a, amt, w, amt_w, ..
        } => {
            check_pool_range(p, a, w, "a", i)?;
            check_pool_range(p, amt, amt_w, "amt", i)
        }
        WInstr::Mux2 { idx } => {
            let Some(mx) = p.mux2s.get(idx as usize) else {
                return Err(wf(
                    "side-table-bounds",
                    format!("instr {i}: mux2 index {idx} out of range"),
                ));
            };
            check_pool_range(p, mx.sel, mx.sel_w, "sel", i)?;
            check_pool_range(p, mx.a, mx.w, "leg a", i)?;
            check_pool_range(p, mx.b, mx.w, "leg b", i)?;
            for (run, off, what) in [(mx.a_run, mx.a, "a_run"), (mx.b_run, mx.b, "b_run")] {
                if run != crate::wide::leg_run(&p.pool, off, mx.w) {
                    return Err(wf(
                        "run-inconsistent",
                        format!("instr {i}: mux2 {what} {run:?} disagrees with its pool"),
                    ));
                }
            }
            Ok(())
        }
        WInstr::MuxN { idx } => {
            let Some(mx) = p.muxes.get(idx as usize) else {
                return Err(wf(
                    "side-table-bounds",
                    format!("instr {i}: muxN index {idx} out of range"),
                ));
            };
            let Some(g) = p.mask_groups.get(mx.group as usize) else {
                return Err(wf(
                    "side-table-bounds",
                    format!("instr {i}: mask group {} out of range", mx.group),
                ));
            };
            if mx.masks != g.base || mx.n != g.n {
                return Err(wf(
                    "mask-group-mismatch",
                    format!(
                        "instr {i}: muxN binds masks@{} n={} but group {} provides masks@{} n={}",
                        mx.masks, mx.n, mx.group, g.base, g.n
                    ),
                ));
            }
            check_pool_range(p, mx.legs, mx.n * mx.w, "legs", i)?;
            let runs_end = mx.runs as usize + mx.n as usize;
            if runs_end > p.leg_runs.len() {
                return Err(wf(
                    "side-table-bounds",
                    format!(
                        "instr {i}: leg runs {}+{} exceed table length {}",
                        mx.runs,
                        mx.n,
                        p.leg_runs.len()
                    ),
                ));
            }
            for d in 0..mx.n {
                let want = crate::wide::leg_run(&p.pool, mx.legs + d * mx.w, mx.w);
                if p.leg_runs[(mx.runs + d) as usize] != want {
                    return Err(wf(
                        "run-inconsistent",
                        format!("instr {i}: muxN leg {d} run disagrees with its pool"),
                    ));
                }
            }
            Ok(())
        }
        WInstr::SelMasks { group } => {
            let Some(g) = p.mask_groups.get(group as usize) else {
                return Err(wf(
                    "side-table-bounds",
                    format!("instr {i}: mask group {group} out of range"),
                ));
            };
            if g.base + g.n > p.masks_len {
                return Err(wf(
                    "mask-group-mismatch",
                    format!(
                        "instr {i}: mask group {group} slots {}+{} exceed arena {}",
                        g.base, g.n, p.masks_len
                    ),
                ));
            }
            check_pool_range(p, g.sel, g.sel_w, "sel", i)
        }
        WInstr::Tbl { idx } => {
            let Some(t) = p.tables.get(idx as usize) else {
                return Err(wf(
                    "side-table-bounds",
                    format!("instr {i}: table index {idx} out of range"),
                ));
            };
            check_pool_range(p, t.addr, t.addr_w, "addr", i)
        }
    }
}

/// The full structural proof over a compiled program. `widths` are the
/// per-signal bit widths (for alias-map shape checking).
pub(crate) fn check_program(p: &WideProgram, widths: &[u32]) -> Result<(), WfError> {
    // Alias-map shape: every signal's slice of plane_map exists and
    // points at real planes.
    if p.plane_base.len() != widths.len() {
        return Err(wf(
            "alias-unsound",
            format!(
                "{} signals but {} alias-map bases",
                widths.len(),
                p.plane_base.len()
            ),
        ));
    }
    for (s, (&base, &w)) in p.plane_base.iter().zip(widths).enumerate() {
        let end = base as usize + w as usize;
        if end > p.plane_map.len() {
            return Err(wf(
                "alias-unsound",
                format!(
                    "signal {s}: alias map {base}+{w} exceeds map length {}",
                    p.plane_map.len()
                ),
            ));
        }
        for &pl in &p.plane_map[base as usize..end] {
            if pl >= p.n_planes {
                return Err(wf(
                    "alias-unsound",
                    format!("signal {s}: aliased to plane {pl} >= {}", p.n_planes),
                ));
            }
        }
    }
    // Sequential record bounds.
    for (r, reg) in p.regs.iter().enumerate() {
        check_pool_range(p, reg.d, reg.w, "reg d", usize::MAX)
            .map_err(|e| wf(e.reason, format!("register {r}: {}", e.detail)))?;
        if reg.q as usize + reg.w as usize > p.n_planes as usize {
            return Err(wf(
                "operand-bounds",
                format!("register {r}: q run exceeds planes"),
            ));
        }
        if reg.d_run != crate::wide::leg_run(&p.pool, reg.d, reg.w) {
            return Err(wf(
                "run-inconsistent",
                format!("register {r}: d_run disagrees with its pool"),
            ));
        }
        if let Some(en) = reg.en {
            if en >= p.n_planes {
                return Err(wf(
                    "operand-bounds",
                    format!("register {r}: enable plane {en} out of range"),
                ));
            }
        }
    }
    for (m, mem) in p.mems.iter().enumerate() {
        for (off, w, what) in [
            (mem.raddr, mem.addr_w, "raddr"),
            (mem.waddr, mem.addr_w, "waddr"),
            (mem.wdata, mem.data_w, "wdata"),
        ] {
            check_pool_range(p, off, w, what, usize::MAX)
                .map_err(|e| wf(e.reason, format!("memory {m}: {}", e.detail)))?;
        }
        if mem.wen >= p.n_planes || mem.rdata as usize + mem.data_w as usize > p.n_planes as usize {
            return Err(wf(
                "operand-bounds",
                format!("memory {m}: wen/rdata planes out of range"),
            ));
        }
    }
    // Def-before-use over the combinational frontier, with write-once
    // lifetimes (chain links excepted) and state-plane immutability.
    let state = ir::state_planes(p);
    let mut defined = state.clone();
    let mut written_by: Vec<Option<usize>> = vec![None; p.n_planes as usize];
    let mut mask_defined = vec![false; p.masks_len as usize];
    let mut uses = Vec::new();
    for i in 0..p.instrs.len() {
        check_instr_shape(p, i)?;
        uses.clear();
        ir::instr_uses(p, i, &mut uses);
        for &u in &uses {
            let ok = if ir::is_mask_plane(u) {
                mask_defined
                    .get((u - ir::MASK_PLANE_BASE) as usize)
                    .copied()
                    .unwrap_or(false)
            } else {
                defined[u as usize]
            };
            if !ok {
                return Err(wf(
                    "def-before-use",
                    format!("instr {i} reads plane {u} before any definition"),
                ));
            }
        }
        let (dst, w) = ir::instr_def(p, i);
        if ir::is_mask_plane(dst) {
            for s in dst - ir::MASK_PLANE_BASE..dst - ir::MASK_PLANE_BASE + w {
                mask_defined[s as usize] = true;
            }
            continue;
        }
        if dst as usize + w as usize > p.n_planes as usize {
            return Err(wf(
                "operand-bounds",
                format!("instr {i}: dst run {dst}+{w} exceeds {} planes", p.n_planes),
            ));
        }
        for pl in dst..dst + w {
            if state[pl as usize] {
                return Err(wf(
                    "writes-state-plane",
                    format!("instr {i} writes plane {pl}, which holds input or sequential state"),
                ));
            }
            if written_by[pl as usize].is_some() && !uses.contains(&pl) {
                return Err(wf(
                    "plane-overlap",
                    format!(
                        "instr {i} overwrites plane {pl} (written by instr {}) without reading it",
                        written_by[pl as usize].expect("checked")
                    ),
                ));
            }
            written_by[pl as usize] = Some(i);
            defined[pl as usize] = true;
        }
    }
    // Alias-map soundness: every observable plane is defined by the end
    // of settle, and so is every plane the sequential capture reads.
    uses.clear();
    ir::root_uses(p, &mut uses);
    for &u in &uses {
        if !defined[u as usize] {
            return Err(wf(
                "alias-unsound",
                format!("plane {u} is observable or state-captured but never defined"),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------

/// Deterministic splitmix64 for probe stimulus.
struct Probe(u64);

impl Probe {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Whether every bit of `t` is pinned to exactly one polarity.
fn fully_known(t: Tern, w: u32) -> bool {
    t.x == 0 && t.zero & t.one == 0 && (t.zero | t.one) == bits::mask(w)
}

/// The bits of `t` the lattice proves: exactly one polarity, no X.
fn known_mask(t: Tern, w: u32) -> u64 {
    (t.zero ^ t.one) & !t.x & bits::mask(w)
}

/// The ternary reference interpreter over the source netlist: exact
/// transfer when a component's inputs are fully defined, ⊥ (all-X)
/// otherwise — sound for refinement checking against the two-state
/// tape.
struct TernRef<'d> {
    design: &'d Design,
    order: Vec<pe_rtl::ComponentId>,
    vals: Vec<Tern>,
    /// Concrete memory contents per memory component, tainted when an
    /// unknown write address/data/enable makes them unrecoverable.
    mem_words: Vec<Vec<u64>>,
    mem_tainted: Vec<bool>,
}

impl<'d> TernRef<'d> {
    fn new(design: &'d Design, x_round: bool) -> Self {
        let order = pe_rtl::topo_order(design).expect("validated design");
        let n = design.signals().len();
        let mut vals = vec![Tern::exact(0, 1); n];
        let mut mem_words = Vec::new();
        for comp in design.components() {
            let q = comp.output();
            let w = design.signal(q).width();
            match comp.kind() {
                ComponentKind::Register { init, .. } => {
                    vals[q.index()] = match init {
                        Some(v) => Tern::exact(*v, w),
                        None if x_round => Tern::undef(w),
                        None => Tern::exact(0, w),
                    };
                }
                ComponentKind::Memory { words, init } => {
                    let m = bits::mask(w);
                    let contents = match init {
                        Some(init) => init.iter().map(|&v| v & m).collect(),
                        None => vec![0u64; *words as usize],
                    };
                    mem_words.push(contents);
                    // Read-data starts at 0 in both engines.
                    vals[q.index()] = Tern::exact(0, w);
                }
                _ => {}
            }
        }
        let n_mems = mem_words.len();
        TernRef {
            design,
            order,
            vals,
            mem_words,
            mem_tainted: vec![false; n_mems],
        }
    }

    fn drive(&mut self, signal: pe_rtl::SignalId, value: u64) {
        let w = self.design.signal(signal).width();
        self.vals[signal.index()] = Tern::exact(value, w);
    }

    /// Re-evaluates the combinational frontier in topological order.
    fn settle(&mut self) {
        let mut ins: Vec<u64> = Vec::new();
        for &id in &self.order {
            let comp = self.design.component(id);
            let out = comp.output();
            let out_w = self.design.signal(out).width();
            ins.clear();
            let mut known = true;
            for &s in comp.inputs() {
                let w = self.design.signal(s).width();
                let t = self.vals[s.index()];
                if !fully_known(t, w) {
                    known = false;
                    break;
                }
                ins.push(t.one);
            }
            self.vals[out.index()] = if known {
                Tern::exact(self.design.eval_component(id, &ins), out_w)
            } else {
                Tern::undef(out_w)
            };
        }
    }

    /// Advances all clock domains one edge: capture-then-commit, the
    /// same simultaneous-edge semantics as both engines.
    fn step(&mut self) {
        let mut next: Vec<(pe_rtl::SignalId, Tern)> = Vec::new();
        let mut writes: Vec<(usize, Option<(u64, u64)>)> = Vec::new();
        let mut mem_i = 0usize;
        for comp in self.design.components() {
            let q = comp.output();
            let w = self.design.signal(q).width();
            match comp.kind() {
                ComponentKind::Register { has_enable, .. } => {
                    let d = self.vals[comp.inputs()[0].index()];
                    let nv = if *has_enable {
                        let en = self.vals[comp.inputs()[1].index()];
                        if fully_known(en, 1) {
                            if en.one & 1 == 1 {
                                d
                            } else {
                                self.vals[q.index()]
                            }
                        } else {
                            Tern::undef(w)
                        }
                    } else {
                        d
                    };
                    next.push((q, nv));
                }
                ComponentKind::Memory { words, .. } => {
                    let addr_w = self.design.signal(comp.inputs()[0]).width();
                    let raddr = self.vals[comp.inputs()[0].index()];
                    let waddr = self.vals[comp.inputs()[1].index()];
                    let wdata = self.vals[comp.inputs()[2].index()];
                    let wen = self.vals[comp.inputs()[3].index()];
                    let data_w = w;
                    // Read first (read-before-write, as both engines).
                    let read = if !self.mem_tainted[mem_i] && fully_known(raddr, addr_w) {
                        let word = raddr.one as usize % *words as usize;
                        Tern::exact(self.mem_words[mem_i][word] & bits::mask(data_w), data_w)
                    } else {
                        Tern::undef(data_w)
                    };
                    next.push((q, read));
                    // Then record the write for the commit phase.
                    if fully_known(wen, 1) {
                        if wen.one & 1 == 1 {
                            if fully_known(waddr, addr_w)
                                && fully_known(wdata, self.design.signal(comp.inputs()[2]).width())
                            {
                                let word = waddr.one % *words as u64;
                                writes.push((mem_i, Some((word, wdata.one & bits::mask(data_w)))));
                            } else {
                                writes.push((mem_i, None));
                            }
                        }
                    } else {
                        writes.push((mem_i, None));
                    }
                    mem_i += 1;
                }
                _ => {}
            }
        }
        for (q, v) in next {
            self.vals[q.index()] = v;
        }
        for (mi, write) in writes {
            match write {
                Some((word, value)) => self.mem_words[mi][word as usize] = value,
                None => self.mem_tainted[mi] = true,
            }
        }
    }
}

/// Proves `tape` equivalent to `design` by symbolic co-simulation:
/// `rounds` concrete probe rounds of `cycles` cycles each (random
/// inputs, per-signal equality demanded every cycle), plus one X round
/// where uninitialized registers start at ⊥ in the ternary lattice and
/// the tape must agree on every bit the lattice proves defined. Runs
/// the structural well-formedness proof first, so a malformed tape is
/// rejected by name instead of interpreted.
///
/// # Errors
///
/// A [`ValidateError`] carrying the structural reason, or
/// `signal-mismatch` / `x-refinement` naming the first diverging
/// signal, cycle, and round.
pub fn validate_against(
    design: &Design,
    tape: &Tape,
    rounds: u32,
    cycles: u32,
) -> Result<(), ValidateError> {
    tape.check_well_formed()?;
    let inputs: Vec<(pe_rtl::SignalId, u32)> = design
        .inputs()
        .iter()
        .map(|port| {
            let s = port.signal();
            (s, design.signal(s).width())
        })
        .collect();
    let signals: Vec<(pe_rtl::SignalId, u32)> = design
        .signals()
        .iter()
        .map(|s| {
            let id = design
                .find_signal(s.name())
                .expect("signal names are unique");
            (id, s.width())
        })
        .collect();
    for round in 0..=rounds {
        let x_round = round == rounds;
        let mut probe = Probe(0x5eed_0000_0000_0000 ^ (u64::from(round) << 8));
        let mut reference = TernRef::new(design, x_round);
        let mut sim = crate::TapeSimulator::new(tape);
        for cycle in 0..cycles {
            for &(sig, w) in &inputs {
                let v = probe.next() & bits::mask(w);
                reference.drive(sig, v);
                sim.set_input(sig, v);
            }
            reference.settle();
            for &(sig, w) in &signals {
                let got = sim.value(sig);
                let want = reference.vals[sig.index()];
                let mask = known_mask(want, w);
                if (got ^ want.one) & mask != 0 {
                    let reason = if x_round {
                        "x-refinement"
                    } else {
                        "signal-mismatch"
                    };
                    return Err(ValidateError {
                        reason,
                        detail: format!(
                            "signal `{}` round {round} cycle {cycle}: netlist proves {:#x} \
                             on mask {mask:#x}, tape computed {got:#x}",
                            design.signal(sig).name(),
                            want.one & mask,
                        ),
                    });
                }
            }
            reference.step();
            sim.step();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Seeded miscompiles
// ---------------------------------------------------------------------

/// The IR mutation catalog for the seeded-miscompile suite, mirroring
/// `pe_designs::defects`: each name maps to one deliberate compiler bug
/// [`Tape::seed_miscompile`] can inject, and the verifier must reject
/// every one of them with a named reason.
pub const MISCOMPILE_MUTATIONS: &[&str] = &[
    "swapped-operands",
    "dropped-instruction",
    "stale-alias",
    "corrupted-mask-group",
];

impl Tape {
    /// Runs the structural well-formedness proof over the compiled
    /// program: operand/side-table bounds, def-before-use, alias-map
    /// soundness, plane lifetime/overlap, fast-path-metadata
    /// consistency.
    ///
    /// # Errors
    ///
    /// The first structural defect found, with a stable
    /// [`WfError::reason`].
    pub fn check_well_formed(&self) -> Result<(), WfError> {
        check_program(&self.wide, &self.widths)
    }

    /// Injects the named miscompile into the already-compiled program
    /// (see [`MISCOMPILE_MUTATIONS`]). Returns `false` when the program
    /// has no site for that mutation (e.g. no select-mask groups).
    /// Every injected mutant must be rejected by
    /// [`Tape::check_well_formed`] or [`validate_against`].
    pub fn seed_miscompile(&mut self, mutation: &str) -> bool {
        let p = &mut self.wide;
        match mutation {
            "swapped-operands" => {
                for instr in p.instrs.iter_mut() {
                    match instr {
                        WInstr::Sub { a, b, .. }
                        | WInstr::SubD { a, b, .. }
                        | WInstr::Lt { a, b, .. }
                        | WInstr::Le { a, b, .. }
                        | WInstr::SLt { a, b, .. }
                        | WInstr::SLe { a, b, .. }
                            if a != b =>
                        {
                            std::mem::swap(a, b);
                            return true;
                        }
                        _ => {}
                    }
                }
                for mx in p.mux2s.iter_mut() {
                    if mx.a != mx.b {
                        std::mem::swap(&mut mx.a, &mut mx.b);
                        std::mem::swap(&mut mx.a_run, &mut mx.b_run);
                        return true;
                    }
                }
                false
            }
            "dropped-instruction" => {
                if p.instrs.is_empty() {
                    return false;
                }
                p.instrs.pop();
                true
            }
            "stale-alias" => {
                // Swap two bits of the first signal whose alias map has
                // two distinct planes: the signal now observes a
                // permuted value.
                for (s, &base) in p.plane_base.iter().enumerate() {
                    let w = self.widths[s] as usize;
                    let base = base as usize;
                    for i in 1..w {
                        if p.plane_map[base + i] != p.plane_map[base] {
                            p.plane_map.swap(base, base + i);
                            return true;
                        }
                    }
                }
                false
            }
            "corrupted-mask-group" => {
                // Shift the first consumed group's arena base: its
                // muxes now read someone else's one-hot masks.
                for instr in &p.instrs {
                    if let WInstr::MuxN { idx } = instr {
                        let group = p.muxes[*idx as usize].group as usize;
                        p.mask_groups[group].base += 1;
                        return true;
                    }
                }
                false
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_designs::suite::all_benchmarks;

    #[test]
    fn compiled_suite_designs_are_well_formed() {
        for bench in all_benchmarks() {
            let tape = Tape::compile(&bench.design).expect("compiles");
            tape.check_well_formed()
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        }
    }

    #[test]
    fn every_miscompile_mutation_is_rejected_with_a_named_reason() {
        let benches = all_benchmarks();
        for &mutation in MISCOMPILE_MUTATIONS {
            let mut applied = 0usize;
            for bench in &benches {
                let (mut tape, cert) = Tape::compile_optimized(&bench.design).expect("compiles");
                assert!(cert.validated, "{}: {:?}", bench.name, cert.reason);
                if !tape.seed_miscompile(mutation) {
                    continue;
                }
                applied += 1;
                let err = validate_against(&bench.design, &tape, 2, 6).expect_err(&format!(
                    "{}: mutant `{mutation}` slipped past the validator",
                    bench.name
                ));
                assert!(
                    !err.reason.is_empty(),
                    "{}: `{mutation}` rejected without a reason",
                    bench.name
                );
            }
            assert!(
                applied > 0,
                "no suite design offers a site for `{mutation}`"
            );
        }
    }

    #[test]
    fn unknown_mutation_is_a_no_op() {
        let bench = &all_benchmarks()[0];
        let (mut tape, _) = Tape::compile_optimized(&bench.design).expect("compiles");
        assert!(!tape.seed_miscompile("no-such-mutation"));
        tape.check_well_formed()
            .expect("untouched tape stays sound");
    }
}
