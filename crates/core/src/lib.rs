//! Power emulation, end to end: the paper's Figure-2 design flow.
//!
//! This facade crate wires the substrates together:
//!
//! ```text
//!          RTL design ──► power model inference ──► enhanced RTL
//!                          (pe-power, pe-instrument)      │
//!                                                         ▼
//!          testbench ◄──────────────── FPGA synthesis, place & route
//!              │                        (pe-gate, pe-fpga)
//!              ▼                                          │
//!          execute on the emulation platform ◄────────────┘
//!          (pe-fpga timing/partitioning → emulation-time model;
//!           pe-sim executes the enhanced design functionally)
//! ```
//!
//! * [`PowerEmulationFlow`] — one-call flow: characterize → instrument →
//!   map → time; returns a [`FlowResult`] with the area, timing, and
//!   emulation-time picture, and can execute the enhanced design to read
//!   back power ([`PowerEmulationFlow::emulate_power`]).
//! * [`accuracy`] — the "little or no tradeoff in accuracy" experiment:
//!   emulated vs. software vs. gate-level energies on one workload.
//! * [`figure3`] — the paper's evaluation: measured software-estimator
//!   wall-clock vs. modeled emulation time, per benchmark design.
//!
//! # Example
//!
//! ```no_run
//! use pe_core::PowerEmulationFlow;
//! use pe_designs::suite::{benchmark, Scale};
//!
//! let bench = benchmark("DCT").unwrap();
//! let flow = PowerEmulationFlow::new();
//! let result = flow.run(&bench.design).unwrap();
//! println!("emulation clock: {:.1} MHz on {} device(s)",
//!          result.timing.fmax_mhz, result.partition.devices);
//! let mut tb = bench.testbench_at(Scale::Test);
//! let power = flow.emulate_power(&result, tb.as_mut()).unwrap();
//! println!("average power: {:.1} µW", power.average_power_uw);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod figure3;
mod flow;

pub use flow::{EmulatedPower, FlowError, FlowResult, PowerEmulationFlow};
