//! The accuracy cross-check: emulated vs. software vs. gate-level.
//!
//! The paper claims power emulation comes "with little or no tradeoff in
//! accuracy" relative to the software RTL tools. In this reproduction the
//! claim decomposes into two measurable gaps:
//!
//! * **quantization gap** — the emulated hardware evaluates the *same*
//!   macromodels as the software estimators, but with fixed-point
//!   coefficients; `emulated vs. software` isolates this loss.
//! * **model gap** — macromodels themselves deviate from the gate-level
//!   reference; `software vs. gate-level` measures it and bounds what any
//!   RTL-level method (software or emulated) can achieve.

use crate::flow::{FlowError, PowerEmulationFlow};
use pe_estimators::{GateLevelEstimator, PowerEstimator, RtlEventEstimator};
use pe_rtl::Design;
use pe_sim::Testbench;
use std::fmt;

/// Energies and relative gaps from one accuracy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Design name.
    pub design: String,
    /// Cycles executed.
    pub cycles: u64,
    /// Gate-level reference energy (femtojoules).
    pub gate_fj: f64,
    /// Software macromodel estimate (femtojoules).
    pub software_fj: f64,
    /// Emulated (hardware, fixed-point) estimate (femtojoules).
    pub emulated_fj: f64,
}

impl AccuracyReport {
    /// |software − gate| / gate: the macromodel's intrinsic error.
    pub fn model_error(&self) -> f64 {
        ((self.software_fj - self.gate_fj) / self.gate_fj).abs()
    }

    /// |emulated − software| / software: the fixed-point quantization
    /// loss added by moving the models into hardware.
    pub fn quantization_error(&self) -> f64 {
        ((self.emulated_fj - self.software_fj) / self.software_fj).abs()
    }

    /// |emulated − gate| / gate: the end-to-end error of power emulation.
    pub fn total_error(&self) -> f64 {
        ((self.emulated_fj - self.gate_fj) / self.gate_fj).abs()
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: gate {:.1} nJ | software {:.1} nJ ({:+.2}%) | emulated {:.1} nJ \
             (quantization {:+.3}%, total {:+.2}%)",
            self.design,
            self.gate_fj / 1e6,
            self.software_fj / 1e6,
            100.0 * self.model_error(),
            self.emulated_fj / 1e6,
            100.0 * self.quantization_error(),
            100.0 * self.total_error(),
        )
    }
}

/// Runs the three estimates for one design/workload. The three testbench
/// instances must be freshly built from the same workload so the stimuli
/// are identical.
///
/// # Errors
///
/// Propagates flow and estimator errors.
pub fn accuracy_experiment(
    flow: &PowerEmulationFlow,
    design: &Design,
    mut tb_gate: Box<dyn Testbench>,
    mut tb_soft: Box<dyn Testbench>,
    mut tb_emu: Box<dyn Testbench>,
) -> Result<AccuracyReport, FlowError> {
    flow.prepare_models(design)?;
    let library = flow.library();

    let gate = GateLevelEstimator::new()
        .estimate(design, tb_gate.as_mut())
        .map_err(|e| FlowError::Simulate(e.to_string()))?;
    let soft = RtlEventEstimator::new(&library)
        .estimate(design, tb_soft.as_mut())
        .map_err(|e| FlowError::Simulate(e.to_string()))?;
    let result = flow.run(design)?;
    let emu = flow.emulate_power(&result, tb_emu.as_mut())?;

    Ok(AccuracyReport {
        design: design.name().to_string(),
        cycles: emu.cycles,
        gate_fj: gate.total_energy_fj,
        software_fj: soft.total_energy_fj,
        emulated_fj: emu.total_energy_fj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_power::CharacterizeConfig;
    use pe_rtl::builder::DesignBuilder;
    use pe_sim::ConstInputs;

    #[test]
    fn emulation_tracks_software_within_a_percent() {
        let mut b = DesignBuilder::new("acc_test");
        let clk = b.clock("clk");
        let one = b.constant(1, 8);
        let cnt = b.register_named("cnt", 8, 0, clk);
        let nxt = b.add(cnt.q(), one);
        b.connect_d(cnt, nxt);
        let x = b.xor(cnt.q(), one);
        let q = b.pipeline_reg("x", x, 0, clk);
        b.output("x", q);
        let d = b.finish().unwrap();

        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        let mk = || -> Box<dyn Testbench> { Box::new(ConstInputs::new(400, vec![])) };
        let report = accuracy_experiment(&flow, &d, mk(), mk(), mk()).unwrap();

        assert!(report.gate_fj > 0.0);
        // The paper's claim, quantified: quantization loss well under 1 %,
        // and the end-to-end RTL-method error within the macromodel band.
        assert!(
            report.quantization_error() < 0.01,
            "quantization {:.4}",
            report.quantization_error()
        );
        assert!(
            report.model_error() < 0.25,
            "model error {:.3}",
            report.model_error()
        );
        let text = report.to_string();
        assert!(text.contains("quantization"));
    }
}
