//! The one-call power-emulation flow.

use pe_fpga::device::DeviceModel;
use pe_fpga::emulate::{estimate_emulation_time, EmulationEstimate, EmulationTimeModel};
use pe_fpga::lut::{map_to_luts, LutNetlist};
use pe_fpga::partition::{partition, PartitionResult};
use pe_fpga::timing::{analyze_timing, TimingReport};
use pe_gate::expand::expand_design;
use pe_instrument::{instrument, InstrumentConfig, InstrumentedDesign, OverheadReport};
use pe_power::{CharacterizeConfig, ModelLibrary};
use pe_rtl::Design;
use pe_sim::{Simulator, Testbench};
use std::cell::RefCell;
use std::fmt;

/// Errors from the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Characterization failed.
    Characterize(pe_power::CharacterizeError),
    /// Instrumentation failed.
    Instrument(pe_instrument::InstrumentError),
    /// The instrumented design failed the lint gate: the report carries
    /// every finding (and the proven accumulator bounds).
    Lint(pe_lint::LintReport),
    /// The instrumented design does not fit the platform.
    Capacity(pe_fpga::partition::PartitionError),
    /// Simulation of the enhanced design failed.
    Simulate(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Characterize(e) => write!(f, "characterization failed: {e}"),
            FlowError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            FlowError::Lint(report) => {
                write!(f, "lint gate failed:")?;
                for d in &report.diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            FlowError::Capacity(e) => write!(f, "platform capacity exceeded: {e}"),
            FlowError::Simulate(msg) => write!(f, "emulation execution failed: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Everything the flow learns about one design.
#[derive(Debug)]
pub struct FlowResult {
    /// The instrumented (enhanced) design plus readout metadata.
    pub instrumented: InstrumentedDesign,
    /// RTL-level instrumentation overhead.
    pub overhead: OverheadReport,
    /// The technology-mapped enhanced design.
    pub mapped: LutNetlist,
    /// Static timing of the mapped design.
    pub timing: TimingReport,
    /// Multi-device partitioning (1 device when it fits).
    pub partition: PartitionResult,
}

impl FlowResult {
    /// Models the emulation time for a run of `cycles` using the paper's
    /// methodology: the enhanced design runs at its timing-derived clock,
    /// with capacity effects out of scope (the paper reports Figure 3 this
    /// way and defers the area/capacity problem to future work — see
    /// [`FlowResult::emulation_time_partitioned`] for the penalty our
    /// Ext-4 study quantifies).
    pub fn emulation_time(&self, model: &EmulationTimeModel, cycles: u64) -> EmulationEstimate {
        estimate_emulation_time(&self.mapped, &self.timing, model, cycles, 1)
    }

    /// Models the emulation time including the multi-device inter-chip
    /// multiplexing penalty from partitioning (our capacity extension).
    pub fn emulation_time_partitioned(
        &self,
        model: &EmulationTimeModel,
        cycles: u64,
    ) -> EmulationEstimate {
        estimate_emulation_time(
            &self.mapped,
            &self.timing,
            model,
            cycles,
            self.partition.clock_divisor,
        )
    }

    /// Models the emulation time when the host drains one power sample per
    /// strobe window, batched by the model's lane-packed readback.
    pub fn emulation_time_sampled(
        &self,
        model: &EmulationTimeModel,
        cycles: u64,
    ) -> EmulationEstimate {
        let strobe = u64::from(self.instrumented.strobe_period.max(1));
        pe_fpga::emulate::estimate_emulation_time_with_samples(
            &self.mapped,
            &self.timing,
            model,
            cycles,
            1,
            cycles.div_ceil(strobe),
        )
    }
}

/// Power read back from an emulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulatedPower {
    /// Cycles executed.
    pub cycles: u64,
    /// Total energy read from the power accumulator(s), femtojoules.
    pub total_energy_fj: f64,
    /// Average power in microwatts (over the design's nominal clock).
    pub average_power_uw: f64,
}

/// The Figure-2 flow with its knobs.
#[derive(Debug)]
pub struct PowerEmulationFlow {
    library: RefCell<ModelLibrary>,
    characterize: CharacterizeConfig,
    instrument: InstrumentConfig,
    lint_deny: pe_lint::Denylist,
    lint_horizon: Option<u64>,
    device: DeviceModel,
    max_devices: u32,
}

impl Default for PowerEmulationFlow {
    fn default() -> Self {
        Self::new()
    }
}

impl PowerEmulationFlow {
    /// A flow with standard settings: per-bit models, 16-bit coefficients,
    /// a tree aggregator, and XC2V6000 devices (up to 64 of them — a 2005-class multi-FPGA emulation box).
    pub fn new() -> Self {
        Self {
            library: RefCell::new(ModelLibrary::new()),
            characterize: CharacterizeConfig::standard(),
            instrument: InstrumentConfig::default(),
            lint_deny: pe_lint::Denylist::None,
            lint_horizon: None,
            device: DeviceModel::xc2v6000(),
            max_devices: 64,
        }
    }

    /// Uses a pre-characterized model library (e.g. loaded from text).
    pub fn with_library(mut self, library: ModelLibrary) -> Self {
        self.library = RefCell::new(library);
        self
    }

    /// Replaces the internal library in place — the non-consuming form of
    /// [`PowerEmulationFlow::with_library`], used when a harness restores
    /// a characterized library from an artifact cache.
    pub fn install_library(&self, library: ModelLibrary) {
        *self.library.borrow_mut() = library;
    }

    /// The characterization configuration this flow characterizes with.
    pub fn characterize_config(&self) -> &CharacterizeConfig {
        &self.characterize
    }

    /// The instrumentation configuration this flow enhances with.
    pub fn instrument_config(&self) -> &InstrumentConfig {
        &self.instrument
    }

    /// Overrides the characterization configuration.
    pub fn with_characterize(mut self, config: CharacterizeConfig) -> Self {
        self.characterize = config;
        self
    }

    /// Overrides the instrumentation configuration.
    pub fn with_instrument(mut self, config: InstrumentConfig) -> Self {
        self.instrument = config;
        self
    }

    /// Configures the lint gate run by
    /// [`PowerEmulationFlow::stage_instrument`]: `deny` promotes the
    /// listed rules (or all) to hard errors, and `horizon_cycles`, when
    /// set, requires every accumulator to be proven overflow-free for
    /// that many cycles. Intrinsic-error findings always gate.
    pub fn with_lint(mut self, deny: pe_lint::Denylist, horizon_cycles: Option<u64>) -> Self {
        self.lint_deny = deny;
        self.lint_horizon = horizon_cycles;
        self
    }

    /// Overrides the target device model.
    pub fn with_device(mut self, device: DeviceModel, max_devices: u32) -> Self {
        self.device = device;
        self.max_devices = max_devices;
        self
    }

    /// A snapshot of the accumulated model library.
    pub fn library(&self) -> ModelLibrary {
        self.library.borrow().clone()
    }

    /// Ensures the internal library covers `design`, characterizing
    /// missing classes.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn prepare_models(&self, design: &Design) -> Result<(), FlowError> {
        self.library
            .borrow_mut()
            .characterize_design(design, &self.characterize)
            .map(|_| ())
            .map_err(FlowError::Characterize)
    }

    /// Stage 2a: enhances `design` with the power-estimation hardware
    /// using the models currently in the library (no characterization is
    /// attempted — run [`PowerEmulationFlow::prepare_models`] or
    /// [`PowerEmulationFlow::install_library`] first).
    ///
    /// The enhanced design must be lint-clean before anything downstream
    /// (mapping, timing, partitioning) sees it: the soundness rules run
    /// here and any effective error under the configured denylist aborts
    /// the stage.
    ///
    /// # Errors
    ///
    /// Propagates instrumentation failures, including missing models, and
    /// returns [`FlowError::Lint`] when the lint gate finds errors.
    pub fn stage_instrument(
        &self,
        design: &Design,
    ) -> Result<(InstrumentedDesign, OverheadReport), FlowError> {
        let instrumented = instrument(design, &self.library.borrow(), &self.instrument)
            .map_err(FlowError::Instrument)?;
        let report = pe_lint::lint_instrumented(&instrumented, self.lint_horizon);
        if !report.is_clean(&self.lint_deny) {
            return Err(FlowError::Lint(report));
        }
        let overhead = OverheadReport::measure(design, &instrumented);
        Ok((instrumented, overhead))
    }

    /// Stage 2b: expands the enhanced design to gates and maps it onto
    /// 4-LUTs.
    pub fn stage_map(&self, instrumented: &InstrumentedDesign) -> LutNetlist {
        map_to_luts(&expand_design(&instrumented.design).netlist)
    }

    /// Stage 2c: static timing of the mapped design.
    pub fn stage_time(&self, mapped: &LutNetlist) -> TimingReport {
        analyze_timing(mapped)
    }

    /// Stage 2d: fits the mapped design onto the configured device(s).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Capacity`] when the design exceeds the
    /// platform.
    pub fn stage_partition(&self, mapped: &LutNetlist) -> Result<PartitionResult, FlowError> {
        partition(mapped, &self.device, self.max_devices, 0.9).map_err(FlowError::Capacity)
    }

    /// Runs steps 1–2 of the flow: model inference, enhancement, FPGA
    /// mapping, timing, and partitioning — the serial composition of
    /// [`PowerEmulationFlow::prepare_models`] and the `stage_*` entry
    /// points (which `pe-harness` schedules individually).
    ///
    /// # Errors
    ///
    /// Returns the first failing stage.
    pub fn run(&self, design: &Design) -> Result<FlowResult, FlowError> {
        self.prepare_models(design)?;
        let (instrumented, overhead) = self.stage_instrument(design)?;
        let mapped = self.stage_map(&instrumented);
        let timing = self.stage_time(&mapped);
        let partition = self.stage_partition(&mapped)?;
        Ok(FlowResult {
            instrumented,
            overhead,
            mapped,
            timing,
            partition,
        })
    }

    /// [`PowerEmulationFlow::run`] with every stage wrapped in a
    /// [`pe_trace::Profiler`] scope (`characterize`, `instrument`,
    /// `map`, `time`, `partition`), labeled with the design name. The
    /// stage wall-clock lands in the profiler's JSONL/summary output;
    /// the result is identical to an unprofiled run.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage (the spans recorded so far are
    /// kept, so partial timings survive a failure).
    pub fn run_profiled(
        &self,
        design: &Design,
        profiler: &pe_trace::Profiler,
    ) -> Result<FlowResult, FlowError> {
        let label = design.name();
        profiler.time("characterize", label, || self.prepare_models(design))?;
        let (instrumented, overhead) =
            profiler.time("instrument", label, || self.stage_instrument(design))?;
        let mapped = profiler.time("map", label, || self.stage_map(&instrumented));
        let timing = profiler.time("time", label, || self.stage_time(&mapped));
        let partition = profiler.time("partition", label, || self.stage_partition(&mapped))?;
        Ok(FlowResult {
            instrumented,
            overhead,
            mapped,
            timing,
            partition,
        })
    }

    /// Step 3: executes the testbench against the enhanced design and
    /// reads the power accumulator back — functionally equivalent to
    /// running on the platform (the wall-clock of *this* simulation is
    /// irrelevant; emulation time is modeled by
    /// [`FlowResult::emulation_time`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Simulate`] if the enhanced design cannot be
    /// simulated.
    pub fn emulate_power(
        &self,
        result: &FlowResult,
        testbench: &mut dyn Testbench,
    ) -> Result<EmulatedPower, FlowError> {
        let design = &result.instrumented.design;
        let mut sim = Simulator::new(design).map_err(|e| FlowError::Simulate(e.to_string()))?;
        let cycles = pe_sim::run(&mut sim, testbench);
        let total_energy_fj = result
            .instrumented
            .try_read_energy_fj(&mut sim)
            .map_err(|e| FlowError::Simulate(e.to_string()))?;
        let period_ns = design.clocks().first().map_or(10.0, |c| c.period_ns());
        Ok(EmulatedPower {
            cycles,
            total_energy_fj,
            average_power_uw: if cycles == 0 {
                0.0
            } else {
                total_energy_fj / (cycles as f64 * period_ns)
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_power::ModelForm;
    use pe_rtl::builder::DesignBuilder;
    use pe_sim::ConstInputs;

    fn small_design() -> Design {
        let mut b = DesignBuilder::new("flow_test");
        let clk = b.clock("clk");
        let one = b.constant(1, 8);
        let cnt = b.register_named("cnt", 8, 0, clk);
        let nxt = b.add(cnt.q(), one);
        b.connect_d(cnt, nxt);
        let sq = b.mul(cnt.q(), cnt.q(), 12);
        let q = b.pipeline_reg("sq", sq, 0, clk);
        b.output("sq", q);
        b.finish().unwrap()
    }

    #[test]
    fn flow_runs_end_to_end() {
        let d = small_design();
        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        let result = flow.run(&d).unwrap();
        assert!(result.overhead.component_ratio() > 1.0);
        assert!(result.timing.fmax_mhz > 1.0);
        assert_eq!(result.partition.devices, 1);
        let mapped_use = result.mapped.resource_use();
        assert!(mapped_use.luts > 0);
        // Modeled emulation time scales with cycles.
        let model = EmulationTimeModel::default();
        let t1 = result.emulation_time(&model, 1_000_000);
        let t2 = result.emulation_time(&model, 3_000_000);
        assert!(t2.total > t1.total);
        // Power readout.
        let mut tb = ConstInputs::new(300, vec![]);
        let power = flow.emulate_power(&result, &mut tb).unwrap();
        assert_eq!(power.cycles, 300);
        assert!(power.total_energy_fj > 0.0);
        assert!(power.average_power_uw > 0.0);
    }

    #[test]
    fn staged_entry_points_match_run() {
        let d = small_design();
        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        let full = flow.run(&d).unwrap();

        // A second flow that never characterizes: the library is restored
        // via install_library, then each stage runs individually.
        let staged = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        staged.install_library(flow.library());
        let (inst, overhead) = staged.stage_instrument(&d).unwrap();
        let mapped = staged.stage_map(&inst);
        let timing = staged.stage_time(&mapped);
        let part = staged.stage_partition(&mapped).unwrap();

        assert_eq!(
            full.overhead.enhanced.components,
            overhead.enhanced.components
        );
        assert_eq!(full.mapped.resource_use().luts, mapped.resource_use().luts);
        assert_eq!(full.timing.fmax_mhz.to_bits(), timing.fmax_mhz.to_bits());
        assert_eq!(full.partition.devices, part.devices);
    }

    #[test]
    fn run_profiled_matches_run_and_records_every_stage() {
        let d = small_design();
        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        let plain = flow.run(&d).unwrap();

        let profiled_flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        let profiler = pe_trace::Profiler::new();
        let profiled = profiled_flow.run_profiled(&d, &profiler).unwrap();

        assert_eq!(
            plain.mapped.resource_use().luts,
            profiled.mapped.resource_use().luts
        );
        assert_eq!(
            plain.timing.fmax_mhz.to_bits(),
            profiled.timing.fmax_mhz.to_bits()
        );
        let spans = profiler.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["characterize", "instrument", "map", "time", "partition"]
        );
        assert!(spans.iter().all(|s| s.label == "flow_test"));
    }

    #[test]
    fn stage_instrument_without_models_fails_cleanly() {
        let d = small_design();
        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        // No prepare_models: instrumentation must report missing models,
        // not characterize behind the caller's back.
        assert!(matches!(
            flow.stage_instrument(&d),
            Err(FlowError::Instrument(_))
        ));
    }

    #[test]
    fn lint_gate_passes_clean_designs_and_blocks_tight_accumulators() {
        let d = small_design();
        // A deny-all gate with a generous horizon: the default transform
        // output is lint-clean, so the stage must succeed.
        let flow = PowerEmulationFlow::new()
            .with_characterize(CharacterizeConfig::fast())
            .with_lint(pe_lint::Denylist::All, Some(1_000_000));
        flow.prepare_models(&d).unwrap();
        assert!(flow.stage_instrument(&d).is_ok());

        // The tightest legal accumulator cannot be proven safe for an
        // astronomically long run: the gate must reject it with the
        // overflow rule.
        let tight = PowerEmulationFlow::new()
            .with_characterize(CharacterizeConfig::fast())
            .with_instrument(InstrumentConfig {
                accumulator_bits: 24,
                ..InstrumentConfig::default()
            })
            .with_lint(pe_lint::Denylist::All, Some(u64::MAX / 2));
        tight.prepare_models(&d).unwrap();
        match tight.stage_instrument(&d) {
            Err(FlowError::Lint(report)) => {
                assert!(report.by_rule(pe_lint::Rule::AccOverflow).count() >= 1);
                assert!(!report.bounds.is_empty());
            }
            other => panic!("expected lint gate failure, got {other:?}"),
        }
    }

    #[test]
    fn library_accumulates_across_runs() {
        let d = small_design();
        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        flow.prepare_models(&d).unwrap();
        let n = flow.library().len();
        assert!(n >= 3); // add, mul, registers
                         // Re-running characterizes nothing new.
        flow.prepare_models(&d).unwrap();
        assert_eq!(flow.library().len(), n);
    }

    #[test]
    fn configured_forms_flow_through() {
        let d = small_design();
        let flow = PowerEmulationFlow::new()
            .with_characterize(CharacterizeConfig::fast().with_form(ModelForm::PerSignal));
        let result = flow.run(&d).unwrap();
        // Per-signal models share coefficients → far fewer distinct terms
        // survive quantization than the per-bit layout's total bits.
        assert!(result.instrumented.term_count > 0);
    }
}
