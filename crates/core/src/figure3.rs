//! The paper's evaluation (Figure 3): execution time of software RTL
//! power estimation vs. power emulation, per benchmark design.
//!
//! Methodology mirrors the paper:
//!
//! * the software tools (`nec-rtpower-like`, `powertheater-like`) are
//!   **measured** — they genuinely evaluate every macromodel during
//!   simulation, and their wall-clock is reported;
//! * the emulation bar is **modeled**: the enhanced design is mapped onto
//!   the simulated Virtex-II platform, static timing gives the achievable
//!   emulation clock, and the run time is `cycles / f_emu` (the paper
//!   likewise *computed an estimate* of power emulation time). Bitstream
//!   compile/download are reported separately, exactly as the paper's
//!   per-run comparison excludes them.

use crate::flow::{FlowError, PowerEmulationFlow};
use pe_designs::suite::{Benchmark, Scale};
use pe_estimators::{PowerEstimator, PowerReport, RtlActivityDbEstimator, RtlEventEstimator};
use pe_fpga::emulate::{EmulationEstimate, EmulationTimeModel};
use pe_power::ModelLibrary;
use pe_rtl::stats::DesignStats;
use std::fmt;

/// One row of the Figure-3 reproduction.
#[derive(Debug, Clone)]
pub struct Figure3Row {
    /// Design name (paper's label).
    pub design: String,
    /// RTL component count (size proxy).
    pub components: usize,
    /// Testbench length in cycles.
    pub cycles: u64,
    /// Measured wall time of the NEC-RTpower-like estimator (seconds).
    pub nec_seconds: f64,
    /// Measured wall time of the PowerTheater-like estimator (seconds).
    pub pt_seconds: f64,
    /// Modeled power-emulation time (seconds).
    pub emulation_seconds: f64,
    /// Achieved emulation clock (MHz) after any partitioning penalty.
    pub f_emu_mhz: f64,
    /// Devices the enhanced design needed.
    pub devices: u32,
    /// LUTs of the enhanced design.
    pub luts: u32,
    /// One-time compile estimate (seconds), excluded from the comparison.
    pub compile_seconds: f64,
    /// Average power reported by the software tools (µW), as a sanity
    /// cross-check between the tools.
    pub avg_power_uw: f64,
}

impl Figure3Row {
    /// Speedup of emulation over the NEC-RTpower-like tool.
    pub fn speedup_nec(&self) -> f64 {
        self.nec_seconds / self.emulation_seconds
    }

    /// Speedup of emulation over the PowerTheater-like tool.
    pub fn speedup_pt(&self) -> f64 {
        self.pt_seconds / self.emulation_seconds
    }
}

/// Runs the two measured software baselines (fresh testbench per tool,
/// identical stimuli) against a characterized library. Returned in tool
/// order: (NEC-RTpower-like, PowerTheater-like).
///
/// # Errors
///
/// Propagates estimator failures as [`FlowError::Simulate`].
pub fn measure_software(
    library: &ModelLibrary,
    bench: &Benchmark,
    cycles: u64,
) -> Result<(PowerReport, PowerReport), FlowError> {
    let mut tb = bench.testbench(cycles);
    let nec = RtlEventEstimator::new(library)
        .estimate(&bench.design, tb.as_mut())
        .map_err(|e| FlowError::Simulate(e.to_string()))?;
    let mut tb = bench.testbench(cycles);
    let pt = RtlActivityDbEstimator::new(library)
        .estimate(&bench.design, tb.as_mut())
        .map_err(|e| FlowError::Simulate(e.to_string()))?;
    Ok((nec, pt))
}

/// Combines the measured software reports and the modeled emulation path
/// into one table row. Shared by the serial [`evaluate_benchmark`] and
/// the `pe-harness` staged schedule so both produce identical rows.
pub fn assemble_row(
    bench: &Benchmark,
    cycles: u64,
    nec: &PowerReport,
    pt: &PowerReport,
    devices: u32,
    luts: u32,
    emu: &EmulationEstimate,
) -> Figure3Row {
    Figure3Row {
        design: bench.name.to_string(),
        components: DesignStats::of(&bench.design).components,
        cycles,
        nec_seconds: nec.wall.as_secs_f64(),
        pt_seconds: pt.wall.as_secs_f64(),
        emulation_seconds: emu.total.as_secs_f64(),
        f_emu_mhz: emu.f_emu_mhz,
        devices,
        luts,
        compile_seconds: emu.compile_time.as_secs_f64(),
        avg_power_uw: nec.average_power_uw(),
    }
}

/// Runs the evaluation for one benchmark.
///
/// # Errors
///
/// Propagates flow/estimator failures.
pub fn evaluate_benchmark(
    flow: &PowerEmulationFlow,
    bench: &Benchmark,
    scale: Scale,
    time_model: &EmulationTimeModel,
) -> Result<Figure3Row, FlowError> {
    let cycles = bench.cycles(scale);
    flow.prepare_models(&bench.design)?;
    let library = flow.library();

    let (nec, pt) = measure_software(&library, bench, cycles)?;

    // Modeled emulation path.
    let result = flow.run(&bench.design)?;
    let emu = result.emulation_time(time_model, cycles);

    Ok(assemble_row(
        bench,
        cycles,
        &nec,
        &pt,
        result.partition.devices,
        result.mapped.resource_use().luts,
        &emu,
    ))
}

/// Runs the evaluation over a set of benchmarks.
///
/// # Errors
///
/// Propagates the first failing benchmark.
pub fn run_figure3(
    flow: &PowerEmulationFlow,
    benchmarks: &[Benchmark],
    scale: Scale,
    time_model: &EmulationTimeModel,
) -> Result<Vec<Figure3Row>, FlowError> {
    benchmarks
        .iter()
        .map(|b| evaluate_benchmark(flow, b, scale, time_model))
        .collect()
}

/// Formats rows as the Figure-3 table (times in seconds, log-scale data
/// in the paper's bar-chart order).
pub fn format_table(rows: &[Figure3Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "design        comps   cycles  NEC-RTpower  PowerTheater    Emulation  \
         speedup(NEC)  speedup(PT)  f_emu(MHz)  devices     LUTs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>8} {:>11.4}s {:>12.4}s {:>11.6}s {:>12.1}x {:>11.1}x {:>11.1} {:>8} {:>8}\n",
            r.design,
            r.components,
            r.cycles,
            r.nec_seconds,
            r.pt_seconds,
            r.emulation_seconds,
            r.speedup_nec(),
            r.speedup_pt(),
            r.f_emu_mhz,
            r.devices,
            r.luts,
        ));
    }
    out
}

impl fmt::Display for Figure3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: NEC {:.3}s, PT {:.3}s, emulation {:.6}s ({:.0}× / {:.0}×)",
            self.design,
            self.nec_seconds,
            self.pt_seconds,
            self.emulation_seconds,
            self.speedup_nec(),
            self.speedup_pt()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_designs::suite::benchmark;
    use pe_power::CharacterizeConfig;

    #[test]
    fn small_benchmark_round_trips() {
        let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
        let bench = benchmark("Bubble_Sort").unwrap();
        let row =
            evaluate_benchmark(&flow, &bench, Scale::Test, &EmulationTimeModel::default()).unwrap();
        assert_eq!(row.design, "Bubble_Sort");
        assert!(row.nec_seconds > 0.0);
        assert!(row.pt_seconds > 0.0);
        assert!(row.emulation_seconds > 0.0);
        assert!(row.f_emu_mhz > 1.0);
        assert!(row.luts > 0);
        // Emulation must already win on the smallest design.
        assert!(
            row.speedup_nec() > 1.0,
            "speedup {:.2} not > 1",
            row.speedup_nec()
        );
        let table = format_table(&[row]);
        assert!(table.contains("Bubble_Sort"));
        assert!(table.contains("speedup"));
    }
}
