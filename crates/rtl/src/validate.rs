//! Global design validation: combinational topological ordering and
//! driver coverage. These are the primitive analyses shared by
//! [`Design::validate`] and the `pe-lint` rule engine.

use crate::design::{ComponentId, Design, DesignError, SignalId};

/// Returns every signal that has no driver: neither a design input nor
/// any component's output. Sorted by signal index.
pub fn undriven_signals(design: &Design) -> Vec<SignalId> {
    design
        .signals()
        .iter()
        .enumerate()
        .map(|(i, _)| SignalId(i as u32))
        .filter(|&s| design.driver_of(s).is_none() && !design.is_input_driven(s))
        .collect()
}

/// Computes a topological evaluation order of the *combinational*
/// components: if component `B` reads a signal driven by combinational
/// component `A`, then `A` precedes `B`. Sequential component outputs
/// (register `q`, memory read data) are treated as sources — they break
/// cycles, which is exactly how a synchronous circuit settles.
///
/// Sequential components are not part of the returned order.
///
/// # Errors
///
/// Returns [`DesignError::CombinationalCycle`] naming one component on a
/// cycle if the combinational subgraph is cyclic.
pub fn topo_order(design: &Design) -> Result<Vec<ComponentId>, DesignError> {
    let comps = design.components();
    let n = comps.len();
    // in_degree over combinational components only.
    let mut in_degree = vec![0u32; n];
    // For each combinational component, the combinational components that
    // consume its output.
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut comb = vec![false; n];
    for (i, c) in comps.iter().enumerate() {
        comb[i] = !c.kind().is_sequential();
    }
    for (i, c) in comps.iter().enumerate() {
        if !comb[i] {
            continue;
        }
        for sig in c.inputs() {
            if let Some(drv) = design.driver_of(*sig) {
                if comb[drv.index()] {
                    consumers[drv.index()].push(i as u32);
                    in_degree[i] += 1;
                }
            }
        }
    }
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&i| comb[i as usize] && in_degree[i as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        order.push(ComponentId(i));
        for &consumer in &consumers[i as usize] {
            in_degree[consumer as usize] -= 1;
            if in_degree[consumer as usize] == 0 {
                queue.push(consumer);
            }
        }
    }
    let comb_count = comb.iter().filter(|&&c| c).count();
    if order.len() != comb_count {
        // Some combinational component retained non-zero in-degree: cycle.
        let cyclic = (0..n)
            .find(|&i| comb[i] && in_degree[i] > 0)
            .expect("cycle implies a stuck component");
        return Err(DesignError::CombinationalCycle {
            component: comps[cyclic].name().to_string(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentKind;
    use crate::design::Design;

    #[test]
    fn chain_orders_upstream_first() {
        let mut d = Design::new("chain");
        let a = d.add_input("a", 4).unwrap();
        let t1 = d.add_signal("t1", 4).unwrap();
        let t2 = d.add_signal("t2", 4).unwrap();
        // Insert the consumer before the producer to exercise ordering.
        d.add_component("second", ComponentKind::Not, &[t1], t2, None)
            .unwrap();
        d.add_component("first", ComponentKind::Not, &[a], t1, None)
            .unwrap();
        let order = topo_order(&d).unwrap();
        let names: Vec<&str> = order.iter().map(|id| d.component(*id).name()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn register_breaks_cycle() {
        // acc -> add -> acc is fine because acc is a register.
        let mut d = Design::new("acc");
        let clk = d.add_clock("clk").unwrap();
        let x = d.add_input("x", 8).unwrap();
        let q = d.add_signal("q", 8).unwrap();
        let sum = d.add_signal("sum", 8).unwrap();
        d.add_component("adder", ComponentKind::Add, &[q, x], sum, None)
            .unwrap();
        d.add_component(
            "acc",
            ComponentKind::Register {
                init: Some(0),
                has_enable: false,
            },
            &[sum],
            q,
            Some(clk),
        )
        .unwrap();
        let order = topo_order(&d).unwrap();
        assert_eq!(order.len(), 1); // just the adder
        assert!(d.validate().is_ok());
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut d = Design::new("cyc");
        let a = d.add_signal("a", 1).unwrap();
        let b = d.add_signal("b", 1).unwrap();
        d.add_component("n1", ComponentKind::Not, &[a], b, None)
            .unwrap();
        d.add_component("n2", ComponentKind::Not, &[b], a, None)
            .unwrap();
        assert!(matches!(
            topo_order(&d),
            Err(DesignError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn empty_design_is_fine() {
        let d = Design::new("empty");
        assert!(topo_order(&d).unwrap().is_empty());
    }
}
