//! Fluent authoring layer over [`Design`].
//!
//! [`DesignBuilder`] removes the boilerplate of netlist construction:
//! it names intermediate signals automatically, wires component outputs
//! through return values, and supports the forward references that
//! sequential logic needs (a register's `d` input usually depends on its own
//! `q` output) via [`RegHandle`] / [`MemHandle`].
//!
//! Builder methods **panic** on structurally invalid use (width mismatches,
//! duplicate names): a design is static data, so these are construction
//! bugs, not runtime conditions. [`DesignBuilder::finish`] returns the
//! global validation result.

use crate::component::ComponentKind;
use crate::design::{ClockId, Design, DesignError, SignalId};

/// Forward reference to a register created by
/// [`DesignBuilder::register_named`] whose data input is connected later
/// with [`DesignBuilder::connect_d`].
#[derive(Debug, Clone, Copy)]
pub struct RegHandle {
    q: SignalId,
    pending: usize,
}

impl RegHandle {
    /// The register's output (`q`) signal, usable before the data input is
    /// connected.
    pub fn q(self) -> SignalId {
        self.q
    }
}

/// Forward reference to a memory created by [`DesignBuilder::memory`]
/// whose ports are connected later with [`DesignBuilder::connect_mem`].
#[derive(Debug, Clone, Copy)]
pub struct MemHandle {
    rdata: SignalId,
    pending: usize,
}

impl MemHandle {
    /// The memory's read-data output signal.
    pub fn rdata(self) -> SignalId {
        self.rdata
    }
}

#[derive(Debug)]
struct PendingReg {
    name: String,
    width: u32,
    init: Option<u64>,
    clock: ClockId,
    q: SignalId,
    connected: bool,
}

#[derive(Debug)]
struct PendingMem {
    name: String,
    words: u32,
    data_width: u32,
    init: Option<Vec<u64>>,
    clock: ClockId,
    rdata: SignalId,
    connection: Option<[SignalId; 4]>,
}

/// Fluent builder for [`Design`]. See the crate-level example.
#[derive(Debug)]
pub struct DesignBuilder {
    design: Design,
    pending_regs: Vec<PendingReg>,
    pending_mems: Vec<PendingMem>,
    tmp_counter: u64,
}

impl DesignBuilder {
    /// Starts a new design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            design: Design::new(name),
            pending_regs: Vec::new(),
            pending_mems: Vec::new(),
            tmp_counter: 0,
        }
    }

    fn tmp_name(&mut self, hint: &str) -> String {
        loop {
            let name = format!("{hint}_{}", self.tmp_counter);
            self.tmp_counter += 1;
            if self.design.is_name_free(&name) {
                return name;
            }
        }
    }

    fn sig(&mut self, hint: &str, width: u32) -> SignalId {
        let name = self.tmp_name(hint);
        self.design.add_signal(name, width).expect("fresh name")
    }

    /// Width of a signal.
    pub fn width(&self, s: SignalId) -> u32 {
        self.design.signal(s).width()
    }

    /// Adds a clock domain (default 10 ns period).
    ///
    /// # Panics
    ///
    /// Panics if the name is taken.
    pub fn clock(&mut self, name: &str) -> ClockId {
        self.design.add_clock(name).expect("clock name free")
    }

    /// Adds a clock domain with an explicit period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken.
    pub fn clock_with_period(&mut self, name: &str, period_ns: f64) -> ClockId {
        self.design
            .add_clock_with_period(name, period_ns)
            .expect("clock name free")
    }

    /// Adds a top-level input port.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken or the width is invalid.
    pub fn input(&mut self, name: &str, width: u32) -> SignalId {
        self.design.add_input(name, width).expect("valid input")
    }

    /// Exposes a signal as a top-level output port.
    ///
    /// # Panics
    ///
    /// Panics if the port name is taken.
    pub fn output(&mut self, name: &str, signal: SignalId) {
        self.design.add_output(name, signal).expect("valid output");
    }

    /// Adds a named internal signal (rarely needed; most methods name
    /// their results automatically).
    ///
    /// # Panics
    ///
    /// Panics if the name is taken or the width is invalid.
    pub fn named_signal(&mut self, name: &str, width: u32) -> SignalId {
        self.design.add_signal(name, width).expect("valid signal")
    }

    fn comp(
        &mut self,
        hint: &str,
        kind: ComponentKind,
        inputs: &[SignalId],
        out_width: u32,
    ) -> SignalId {
        let out = self.sig(&format!("{hint}_o"), out_width);
        let name = self.tmp_name(hint);
        self.design
            .add_component(name, kind, inputs, out, None)
            .unwrap_or_else(|e| panic!("builder misuse: {e}"));
        out
    }

    /// Constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn constant(&mut self, value: u64, width: u32) -> SignalId {
        self.comp("const", ComponentKind::Const { value }, &[], width)
    }

    /// `a + b`, same width as the operands (wrapping).
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ.
    pub fn add(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("add", ComponentKind::Add, &[a, b], w)
    }

    /// `a + b` with a carry bit: result is one bit wider than the operands.
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ or exceed 63 bits.
    pub fn add_wide(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("add", ComponentKind::Add, &[a, b], w + 1)
    }

    /// `a - b` (two's-complement wraparound).
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ.
    pub fn sub(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("sub", ComponentKind::Sub, &[a, b], w)
    }

    /// `a * b`, truncated/extended to `out_width` bits.
    pub fn mul(&mut self, a: SignalId, b: SignalId, out_width: u32) -> SignalId {
        self.comp("mul", ComponentKind::Mul, &[a, b], out_width)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("neg", ComponentKind::Neg, &[a], w)
    }

    /// Bitwise AND of two signals of equal width.
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("and", ComponentKind::And, &[a, b], w)
    }

    /// Bitwise OR of two signals of equal width.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("or", ComponentKind::Or, &[a, b], w)
    }

    /// Bitwise XOR of two signals of equal width.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("xor", ComponentKind::Xor, &[a, b], w)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("not", ComponentKind::Not, &[a], w)
    }

    /// 1-bit equality comparison.
    pub fn eq(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.comp("eq", ComponentKind::Eq, &[a, b], 1)
    }

    /// 1-bit inequality comparison.
    pub fn ne(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.comp("ne", ComponentKind::Ne, &[a, b], 1)
    }

    /// 1-bit unsigned `a < b`.
    pub fn lt(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.comp("lt", ComponentKind::Lt, &[a, b], 1)
    }

    /// 1-bit unsigned `a <= b`.
    pub fn le(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.comp("le", ComponentKind::Le, &[a, b], 1)
    }

    /// 1-bit signed `a < b`.
    pub fn slt(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.comp("slt", ComponentKind::SLt, &[a, b], 1)
    }

    /// 1-bit signed `a <= b`.
    pub fn sle(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.comp("sle", ComponentKind::SLe, &[a, b], 1)
    }

    /// Logical left shift by a dynamic amount.
    pub fn shl(&mut self, a: SignalId, amount: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("shl", ComponentKind::Shl, &[a, amount], w)
    }

    /// Logical right shift by a dynamic amount.
    pub fn shr(&mut self, a: SignalId, amount: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("shr", ComponentKind::Shr, &[a, amount], w)
    }

    /// Arithmetic right shift by a dynamic amount.
    pub fn sar(&mut self, a: SignalId, amount: SignalId) -> SignalId {
        let w = self.width(a);
        self.comp("sar", ComponentKind::Sar, &[a, amount], w)
    }

    /// Logical left shift by a constant amount.
    pub fn shl_const(&mut self, a: SignalId, amount: u32) -> SignalId {
        let aw = pe_util::bits::bit_width(amount as u64).max(1);
        let amt = self.constant(amount as u64, aw);
        self.shl(a, amt)
    }

    /// Logical right shift by a constant amount.
    pub fn shr_const(&mut self, a: SignalId, amount: u32) -> SignalId {
        let aw = pe_util::bits::bit_width(amount as u64).max(1);
        let amt = self.constant(amount as u64, aw);
        self.shr(a, amt)
    }

    /// Arithmetic right shift by a constant amount.
    pub fn sar_const(&mut self, a: SignalId, amount: u32) -> SignalId {
        let aw = pe_util::bits::bit_width(amount as u64).max(1);
        let amt = self.constant(amount as u64, aw);
        self.sar(a, amt)
    }

    /// General multiplexer: `inputs[sel]`, clamping an out-of-range select
    /// to the last input.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 data inputs are given or widths mismatch.
    pub fn mux(&mut self, sel: SignalId, inputs: &[SignalId]) -> SignalId {
        assert!(inputs.len() >= 2, "mux needs at least two data inputs");
        let w = self.width(inputs[0]);
        let mut all = Vec::with_capacity(inputs.len() + 1);
        all.push(sel);
        all.extend_from_slice(inputs);
        self.comp("mux", ComponentKind::Mux, &all, w)
    }

    /// Two-way multiplexer: `if sel { then_v } else { else_v }` with a
    /// 1-bit select.
    pub fn mux2(&mut self, sel: SignalId, else_v: SignalId, then_v: SignalId) -> SignalId {
        self.mux(sel, &[else_v, then_v])
    }

    /// Bit-field `a[lo .. lo + width]`.
    pub fn slice(&mut self, a: SignalId, lo: u32, width: u32) -> SignalId {
        self.comp("slice", ComponentKind::Slice { lo }, &[a], width)
    }

    /// Single bit `a[index]`.
    pub fn bit(&mut self, a: SignalId, index: u32) -> SignalId {
        self.slice(a, index, 1)
    }

    /// Concatenation; `parts[0]` becomes the least-significant bits.
    pub fn concat(&mut self, parts: &[SignalId]) -> SignalId {
        let total: u32 = parts.iter().map(|s| self.width(*s)).sum();
        self.comp("concat", ComponentKind::Concat, parts, total)
    }

    /// Zero-extends to `width` bits (no-op widths allowed).
    pub fn zext(&mut self, a: SignalId, width: u32) -> SignalId {
        self.comp("zext", ComponentKind::ZeroExt, &[a], width)
    }

    /// Sign-extends to `width` bits (no-op widths allowed).
    pub fn sext(&mut self, a: SignalId, width: u32) -> SignalId {
        self.comp("sext", ComponentKind::SignExt, &[a], width)
    }

    /// Resizes unsigned: zero-extends when growing, slices when shrinking,
    /// and passes through when `width` matches.
    pub fn uresize(&mut self, a: SignalId, width: u32) -> SignalId {
        let w = self.width(a);
        if width >= w {
            self.zext(a, width)
        } else {
            self.slice(a, 0, width)
        }
    }

    /// Resizes signed: sign-extends when growing, slices when shrinking.
    pub fn sresize(&mut self, a: SignalId, width: u32) -> SignalId {
        let w = self.width(a);
        if width >= w {
            self.sext(a, width)
        } else {
            self.slice(a, 0, width)
        }
    }

    /// Lookup table: `table[a]`, with `table.len() == 2^width(a)`.
    pub fn table(&mut self, a: SignalId, table: Vec<u64>, out_width: u32) -> SignalId {
        self.comp("table", ComponentKind::Table { table }, &[a], out_width)
    }

    /// Declares a register whose data input is connected later via
    /// [`DesignBuilder::connect_d`]. The returned handle's
    /// [`RegHandle::q`] is immediately usable.
    ///
    /// # Panics
    ///
    /// Panics if `name` is taken (the `q` signal is named `{name}` and the
    /// component `{name}_reg`).
    pub fn register_named(
        &mut self,
        name: &str,
        width: u32,
        init: u64,
        clock: ClockId,
    ) -> RegHandle {
        self.register_pending(name, width, Some(init), clock)
    }

    /// Declares a register with **no** power-on value (an X source for
    /// static analysis; two-state simulation still reads it as zero).
    /// Connect its data input later via [`DesignBuilder::connect_d`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is taken (the `q` signal is named `{name}` and the
    /// component `{name}_reg`).
    pub fn register_uninit(&mut self, name: &str, width: u32, clock: ClockId) -> RegHandle {
        self.register_pending(name, width, None, clock)
    }

    fn register_pending(
        &mut self,
        name: &str,
        width: u32,
        init: Option<u64>,
        clock: ClockId,
    ) -> RegHandle {
        let q = self
            .design
            .add_signal(name.to_string(), width)
            .expect("register name free");
        self.pending_regs.push(PendingReg {
            name: format!("{name}_reg"),
            width,
            init,
            clock,
            q,
            connected: false,
        });
        RegHandle {
            q,
            pending: self.pending_regs.len() - 1,
        }
    }

    /// Connects a register's data input (no enable), consuming the pending
    /// declaration.
    ///
    /// # Panics
    ///
    /// Panics if the register was already connected or widths mismatch.
    pub fn connect_d(&mut self, reg: RegHandle, d: SignalId) {
        self.connect_reg(reg, d, None);
    }

    /// Connects a register's data input with a 1-bit write enable.
    ///
    /// # Panics
    ///
    /// Panics if the register was already connected or widths mismatch.
    pub fn connect_d_en(&mut self, reg: RegHandle, d: SignalId, en: SignalId) {
        self.connect_reg(reg, d, Some(en));
    }

    fn connect_reg(&mut self, reg: RegHandle, d: SignalId, en: Option<SignalId>) {
        let p = &mut self.pending_regs[reg.pending];
        assert!(!p.connected, "register `{}` connected twice", p.name);
        p.connected = true;
        let (name, init, clock, q, width) = (p.name.clone(), p.init, p.clock, p.q, p.width);
        assert_eq!(
            self.width(d),
            width,
            "register `{name}` data width mismatch"
        );
        let mut inputs = vec![d];
        if let Some(en) = en {
            inputs.push(en);
        }
        self.design
            .add_component(
                name,
                ComponentKind::Register {
                    init,
                    has_enable: en.is_some(),
                },
                &inputs,
                q,
                Some(clock),
            )
            .unwrap_or_else(|e| panic!("builder misuse: {e}"));
    }

    /// Immediately creates a register whose input is already known
    /// (a plain pipeline stage).
    pub fn pipeline_reg(&mut self, name: &str, d: SignalId, init: u64, clock: ClockId) -> SignalId {
        let w = self.width(d);
        let handle = self.register_named(name, w, init, clock);
        self.connect_d(handle, d);
        handle.q()
    }

    /// Declares a `words × data_width` memory whose ports are connected
    /// later via [`DesignBuilder::connect_mem`]. Read data is available
    /// immediately via [`MemHandle::rdata`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is taken (the read-data signal is `{name}_rdata`
    /// and the component `{name}`).
    pub fn memory(
        &mut self,
        name: &str,
        words: u32,
        data_width: u32,
        init: Option<Vec<u64>>,
        clock: ClockId,
    ) -> MemHandle {
        let rdata = self
            .design
            .add_signal(format!("{name}_rdata"), data_width)
            .expect("memory name free");
        self.pending_mems.push(PendingMem {
            name: name.to_string(),
            words,
            data_width,
            init,
            clock,
            rdata,
            connection: None,
        });
        MemHandle {
            rdata,
            pending: self.pending_mems.len() - 1,
        }
    }

    /// Connects a memory's read address, write address, write data, and
    /// 1-bit write enable.
    ///
    /// # Panics
    ///
    /// Panics if already connected or widths mismatch.
    pub fn connect_mem(
        &mut self,
        mem: MemHandle,
        raddr: SignalId,
        waddr: SignalId,
        wdata: SignalId,
        wen: SignalId,
    ) {
        let p = &mut self.pending_mems[mem.pending];
        assert!(
            p.connection.is_none(),
            "memory `{}` connected twice",
            p.name
        );
        p.connection = Some([raddr, waddr, wdata, wen]);
        let (name, words, init, clock, rdata, data_width) = (
            p.name.clone(),
            p.words,
            p.init.clone(),
            p.clock,
            p.rdata,
            p.data_width,
        );
        assert_eq!(
            self.width(wdata),
            data_width,
            "memory `{name}` data width mismatch"
        );
        self.design
            .add_component(
                name,
                ComponentKind::Memory { words, init },
                &[raddr, waddr, wdata, wen],
                rdata,
                Some(clock),
            )
            .unwrap_or_else(|e| panic!("builder misuse: {e}"));
    }

    /// Address width required by a memory of `words` words.
    pub fn addr_width(words: u32) -> u32 {
        pe_util::bits::clog2(words as u64).max(1)
    }

    /// Read-only access to the design under construction.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Finalizes the design: checks all pending registers/memories were
    /// connected, then runs [`Design::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first global validation error.
    ///
    /// # Panics
    ///
    /// Panics if a declared register or memory was never connected — that
    /// is a construction bug in the calling code.
    pub fn finish(self) -> Result<Design, DesignError> {
        for p in &self.pending_regs {
            assert!(
                p.connected,
                "register `{}` declared but never connected",
                p.name
            );
        }
        for p in &self.pending_mems {
            assert!(
                p.connection.is_some(),
                "memory `{}` declared but never connected",
                p.name
            );
        }
        self.design.validate()?;
        Ok(self.design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_design() {
        let mut b = DesignBuilder::new("counter");
        let clk = b.clock("clk");
        let one = b.constant(1, 8);
        let count = b.register_named("count", 8, 0, clk);
        let next = b.add(count.q(), one);
        b.connect_d(count, next);
        b.output("count", count.q());
        let d = b.finish().unwrap();
        assert_eq!(d.components().len(), 3);
        assert_eq!(d.outputs().len(), 1);
    }

    #[test]
    fn mux_and_compare() {
        let mut b = DesignBuilder::new("max");
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let gt = b.lt(c, a); // a > c  ⇔  c < a
        let m = b.mux2(gt, c, a);
        b.output("max", m);
        let d = b.finish().unwrap();
        assert!(d.validate().is_ok());
        let mux = d.find_component("mux_3").or(d.find_component("mux_2"));
        assert!(mux.is_some() || d.components().iter().any(|c| c.kind().mnemonic() == "mux"));
    }

    #[test]
    fn memory_round_trip_structure() {
        let mut b = DesignBuilder::new("regfile");
        let clk = b.clock("clk");
        let raddr = b.input("raddr", 4);
        let waddr = b.input("waddr", 4);
        let wdata = b.input("wdata", 16);
        let wen = b.input("wen", 1);
        let mem = b.memory("rf", 16, 16, None, clk);
        b.connect_mem(mem, raddr, waddr, wdata, wen);
        b.output("rdata", mem.rdata());
        let d = b.finish().unwrap();
        assert_eq!(d.components().len(), 1);
        assert!(d.components()[0].kind().is_sequential());
    }

    #[test]
    fn resize_directions() {
        let mut b = DesignBuilder::new("resize");
        let a = b.input("a", 8);
        let up = b.uresize(a, 12);
        let down = b.uresize(a, 4);
        let same = b.uresize(a, 8);
        let sup = b.sresize(a, 12);
        b.output("up", up);
        b.output("down", down);
        b.output("same", same);
        b.output("sup", sup);
        let d = b.finish().unwrap();
        assert_eq!(d.signal(up).width(), 12);
        assert_eq!(d.signal(down).width(), 4);
        assert_eq!(d.signal(same).width(), 8);
        assert_eq!(d.signal(sup).width(), 12);
    }

    #[test]
    #[should_panic(expected = "never connected")]
    fn unconnected_register_panics() {
        let mut b = DesignBuilder::new("bad");
        let clk = b.clock("clk");
        let r = b.register_named("r", 8, 0, clk);
        b.output("q", r.q());
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn double_connect_panics() {
        let mut b = DesignBuilder::new("bad");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let r = b.register_named("r", 8, 0, clk);
        b.connect_d(r, x);
        b.connect_d(r, x);
    }

    #[test]
    fn register_with_enable() {
        let mut b = DesignBuilder::new("en");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let en = b.input("en", 1);
        let r = b.register_named("r", 8, 0, clk);
        b.connect_d_en(r, x, en);
        b.output("q", r.q());
        let d = b.finish().unwrap();
        let reg = &d.components()[0];
        assert_eq!(reg.inputs().len(), 2);
    }

    #[test]
    fn shift_const_helpers() {
        let mut b = DesignBuilder::new("sh");
        let a = b.input("a", 8);
        let l = b.shl_const(a, 2);
        let r = b.shr_const(a, 1);
        let s = b.sar_const(a, 1);
        b.output("l", l);
        b.output("r", r);
        b.output("s", s);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn pipeline_reg_convenience() {
        let mut b = DesignBuilder::new("pipe");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let q = b.pipeline_reg("stage1", x, 0, clk);
        b.output("q", q);
        let d = b.finish().unwrap();
        assert_eq!(d.signal(q).width(), 8);
        assert_eq!(d.components().len(), 1);
    }
}
