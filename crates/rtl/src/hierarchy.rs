//! Flattening instantiation of one design inside another.
//!
//! The workspace keeps [`Design`] flat — there is no
//! hierarchy node in the IR — because both the power-emulation transform and
//! the technology mapper want a flat component list. Hierarchical assembly
//! (e.g. building the MPEG4 decoder top from IDCT/Ispq/Vld sub-designs) is
//! done by *flattening instantiation*: every signal and component of the
//! sub-design is copied into the parent under a prefix, with the
//! sub-design's input ports spliced onto parent signals.

use crate::design::{ClockId, Design, DesignError, SignalId};
use std::collections::HashMap;
use std::fmt;

/// Result of an instantiation: where the sub-design's output ports ended up
/// in the parent.
#[derive(Debug, Clone)]
pub struct Instantiation {
    outputs: HashMap<String, SignalId>,
}

impl Instantiation {
    /// The parent signal carrying the sub-design output port `name`.
    ///
    /// # Panics
    ///
    /// Panics if the sub-design has no such output port — that is a static
    /// wiring bug in the caller.
    pub fn output(&self, name: &str) -> SignalId {
        *self
            .outputs
            .get(name)
            .unwrap_or_else(|| panic!("sub-design has no output port `{name}`"))
    }

    /// All output ports by name.
    pub fn outputs(&self) -> &HashMap<String, SignalId> {
        &self.outputs
    }
}

/// Errors raised by [`instantiate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// A sub-design input port has no binding.
    MissingInput {
        /// The unbound port name.
        port: String,
    },
    /// A binding referenced a port the sub-design does not have.
    UnknownPort {
        /// The unknown port name.
        port: String,
    },
    /// A bound parent signal has the wrong width.
    WidthMismatch {
        /// The port name.
        port: String,
        /// Width the sub-design expects.
        expected: u32,
        /// Width of the bound parent signal.
        found: u32,
    },
    /// A sub-design clock domain has no mapping.
    MissingClock {
        /// The unmapped clock name.
        clock: String,
    },
    /// Propagated netlist construction error (e.g. name collision under the
    /// chosen prefix).
    Design(DesignError),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::MissingInput { port } => {
                write!(f, "input port `{port}` is not bound")
            }
            HierarchyError::UnknownPort { port } => {
                write!(f, "sub-design has no port `{port}`")
            }
            HierarchyError::WidthMismatch {
                port,
                expected,
                found,
            } => write!(
                f,
                "port `{port}` expects {expected} bits, bound signal has {found}"
            ),
            HierarchyError::MissingClock { clock } => {
                write!(f, "clock domain `{clock}` is not mapped")
            }
            HierarchyError::Design(e) => write!(f, "netlist error during flattening: {e}"),
        }
    }
}

impl std::error::Error for HierarchyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HierarchyError::Design(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DesignError> for HierarchyError {
    fn from(e: DesignError) -> Self {
        HierarchyError::Design(e)
    }
}

/// Copies `sub` into `parent` under `prefix`, splicing the sub-design's
/// input ports onto the given parent signals and mapping each sub clock
/// domain onto a parent clock.
///
/// Internal names become `{prefix}__{name}`. Every input port of `sub`
/// must appear in `inputs`; every clock of `sub` must appear in `clocks`
/// (by the sub-design's clock name).
///
/// # Errors
///
/// See [`HierarchyError`].
pub fn instantiate(
    parent: &mut Design,
    sub: &Design,
    prefix: &str,
    inputs: &[(&str, SignalId)],
    clocks: &[(&str, ClockId)],
) -> Result<Instantiation, HierarchyError> {
    // Resolve clock mapping.
    let mut clock_map: Vec<Option<ClockId>> = vec![None; sub.clocks().len()];
    for (name, parent_clk) in clocks {
        let idx = sub
            .clocks()
            .iter()
            .position(|c| c.name() == *name)
            .ok_or_else(|| HierarchyError::UnknownPort {
                port: (*name).to_string(),
            })?;
        clock_map[idx] = Some(*parent_clk);
    }
    for (idx, mapped) in clock_map.iter().enumerate() {
        if mapped.is_none() {
            return Err(HierarchyError::MissingClock {
                clock: sub.clocks()[idx].name().to_string(),
            });
        }
    }

    // Resolve input bindings.
    let mut binding_of: HashMap<&str, SignalId> = HashMap::new();
    for (port, sig) in inputs {
        if sub.find_input(port).is_none() {
            return Err(HierarchyError::UnknownPort {
                port: (*port).to_string(),
            });
        }
        binding_of.insert(port, *sig);
    }
    for port in sub.inputs() {
        let bound = binding_of
            .get(port.name())
            .ok_or_else(|| HierarchyError::MissingInput {
                port: port.name().to_string(),
            })?;
        let expected = sub.signal(port.signal()).width();
        let found = parent.signal(*bound).width();
        if expected != found {
            return Err(HierarchyError::WidthMismatch {
                port: port.name().to_string(),
                expected,
                found,
            });
        }
    }

    // Map every sub signal to a parent signal: bound inputs alias, the rest
    // are freshly created under the prefix.
    let mut signal_map: Vec<Option<SignalId>> = vec![None; sub.signals().len()];
    for port in sub.inputs() {
        signal_map[port.signal().index()] = Some(binding_of[port.name()]);
    }
    for (i, sig) in sub.signals().iter().enumerate() {
        if signal_map[i].is_none() {
            let name = format!("{prefix}__{}", sig.name());
            let id = parent.add_signal(name, sig.width())?;
            signal_map[i] = Some(id);
        }
    }

    // Copy components.
    for comp in sub.components() {
        let ins: Vec<SignalId> = comp
            .inputs()
            .iter()
            .map(|s| signal_map[s.index()].expect("all signals mapped"))
            .collect();
        let out = signal_map[comp.output().index()].expect("all signals mapped");
        let clock = comp.clock().map(|c| clock_map[c.index()].expect("mapped"));
        parent.add_component(
            format!("{prefix}__{}", comp.name()),
            comp.kind().clone(),
            &ins,
            out,
            clock,
        )?;
    }

    let outputs = sub
        .outputs()
        .iter()
        .map(|p| {
            (
                p.name().to_string(),
                signal_map[p.signal().index()].expect("all signals mapped"),
            )
        })
        .collect();
    Ok(Instantiation { outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    fn adder_sub() -> Design {
        let mut b = DesignBuilder::new("adder");
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let clk = b.clock("clk");
        let sum = b.add(a, c);
        let q = b.pipeline_reg("stage", sum, 0, clk);
        b.output("sum", q);
        b.finish().unwrap()
    }

    #[test]
    fn instantiate_twice_builds_pipeline() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let clk = top.add_clock("clk").unwrap();
        let x = top.add_input("x", 8).unwrap();
        let y = top.add_input("y", 8).unwrap();
        let z = top.add_input("z", 8).unwrap();
        let i1 = instantiate(&mut top, &sub, "u1", &[("a", x), ("b", y)], &[("clk", clk)]).unwrap();
        let i2 = instantiate(
            &mut top,
            &sub,
            "u2",
            &[("a", i1.output("sum")), ("b", z)],
            &[("clk", clk)],
        )
        .unwrap();
        top.add_output("sum", i2.output("sum")).unwrap();
        assert!(top.validate().is_ok());
        // Each instance contributes its components.
        assert_eq!(top.components().len(), sub.components().len() * 2);
    }

    #[test]
    fn missing_input_rejected() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let clk = top.add_clock("clk").unwrap();
        let x = top.add_input("x", 8).unwrap();
        let err = instantiate(&mut top, &sub, "u1", &[("a", x)], &[("clk", clk)]);
        assert!(matches!(err, Err(HierarchyError::MissingInput { .. })));
    }

    #[test]
    fn missing_clock_rejected() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let x = top.add_input("x", 8).unwrap();
        let y = top.add_input("y", 8).unwrap();
        let err = instantiate(&mut top, &sub, "u1", &[("a", x), ("b", y)], &[]);
        assert!(matches!(err, Err(HierarchyError::MissingClock { .. })));
    }

    #[test]
    fn width_mismatch_rejected() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let clk = top.add_clock("clk").unwrap();
        let x = top.add_input("x", 4).unwrap();
        let y = top.add_input("y", 8).unwrap();
        let err = instantiate(&mut top, &sub, "u1", &[("a", x), ("b", y)], &[("clk", clk)]);
        assert!(matches!(err, Err(HierarchyError::WidthMismatch { .. })));
    }

    #[test]
    fn unknown_port_rejected() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let clk = top.add_clock("clk").unwrap();
        let x = top.add_input("x", 8).unwrap();
        let y = top.add_input("y", 8).unwrap();
        let err = instantiate(
            &mut top,
            &sub,
            "u1",
            &[("a", x), ("b", y), ("nope", x)],
            &[("clk", clk)],
        );
        assert!(matches!(err, Err(HierarchyError::UnknownPort { .. })));
    }

    #[test]
    fn name_collision_surfaces_as_design_error() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let clk = top.add_clock("clk").unwrap();
        let x = top.add_input("x", 8).unwrap();
        let y = top.add_input("y", 8).unwrap();
        instantiate(&mut top, &sub, "u1", &[("a", x), ("b", y)], &[("clk", clk)]).unwrap();
        let err = instantiate(&mut top, &sub, "u1", &[("a", x), ("b", y)], &[("clk", clk)]);
        assert!(matches!(err, Err(HierarchyError::Design(_))));
    }

    #[test]
    #[should_panic(expected = "no output port")]
    fn unknown_output_panics() {
        let sub = adder_sub();
        let mut top = Design::new("top");
        let clk = top.add_clock("clk").unwrap();
        let x = top.add_input("x", 8).unwrap();
        let y = top.add_input("y", 8).unwrap();
        let inst =
            instantiate(&mut top, &sub, "u1", &[("a", x), ("b", y)], &[("clk", clk)]).unwrap();
        let _ = inst.output("bogus");
    }
}
