//! Structural register-transfer-level (RTL) intermediate representation.
//!
//! This crate defines the netlist data model that the whole power-emulation
//! workspace operates on: a [`Design`] is a flat netlist of multi-bit
//! [`Signal`]s connected by typed [`Component`]s (adders, multipliers,
//! muxes, registers, memories, lookup tables, …) grouped into clock
//! domains, with named input/output ports.
//!
//! The representation is deliberately *structural*, mirroring what a
//! behavioral-synthesis tool emits and what the power-emulation transform of
//! the DATE 2005 paper consumes: every RTL component is an explicit node
//! whose input/output signals can be monitored by a power model.
//!
//! Key pieces:
//!
//! * [`ComponentKind`] — the component algebra, with cycle-accurate
//!   evaluation semantics ([`ComponentKind::eval`]) shared by the RTL
//!   simulator, the gate-level expansion, and the instrumentation transform.
//! * [`Design`] — the netlist container with incremental validation
//!   (unique names, width checking, single-driver rule) and global
//!   validation ([`Design::validate`]: no combinational cycles, no floating
//!   signals).
//! * [`builder::DesignBuilder`] — an ergonomic fluent layer for authoring
//!   designs by hand (used by examples and tests).
//! * [`hierarchy`] — flattening instantiation of one design inside another
//!   (used to assemble the MPEG4 top from its sub-designs).
//! * [`text`] — a line-oriented textual netlist format for serialization.
//! * [`stats`] — size/composition statistics.
//!
//! # Example
//!
//! ```
//! use pe_rtl::builder::DesignBuilder;
//!
//! let mut b = DesignBuilder::new("accumulate");
//! let clk = b.clock("clk");
//! let x = b.input("x", 8);
//! let acc = b.register_named("acc", 8, 0, clk);
//! let sum = b.add(acc.q(), x);
//! b.connect_d(acc, sum);
//! b.output("total", acc.q());
//! let design = b.finish().expect("valid design");
//! assert_eq!(design.components().len(), 2); // register + adder
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod component;
mod design;
pub mod hierarchy;
pub mod stats;
pub mod text;
pub mod validate;

pub use component::{Component, ComponentKind, WidthError};
pub use design::{ClockDomain, ClockId, ComponentId, Design, DesignError, Port, Signal, SignalId};
pub use validate::topo_order;
