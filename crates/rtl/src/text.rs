//! Line-oriented textual netlist format.
//!
//! The format serializes a [`Design`] losslessly and is meant to be
//! human-readable and diff-friendly — it is the workspace's equivalent of
//! the "enhanced RTL description" artifact the paper's flow emits between
//! step 1 (power model inference) and step 2 (FPGA synthesis).
//!
//! Grammar (one declaration per line, `#` starts a comment):
//!
//! ```text
//! design <name>
//! clock <name> period=<f64>
//! input <name> <width>
//! signal <name> <width>
//! comp <name> <kind> out=<signal> in=<s1,s2,…> [clk=<clock>] [<k>=<v>…]
//! output <port> <signal>
//! ```
//!
//! Kind parameters: `slice` takes `lo=<u32>`; `const` takes `value=<u64>`;
//! `table` takes `data=<v0,v1,…>`; `reg` takes `init=<u64>` and `en=<0|1>`;
//! `mem` takes `words=<u32>` and optional `init=<v0,v1,…>`.

use crate::component::ComponentKind;
use crate::design::{ClockId, Design, DesignError, SignalId};
use std::collections::HashMap;
use std::fmt;

/// Error produced when parsing a textual netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Syntax error with a line number (1-based) and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structural error raised while rebuilding the design.
    Design {
        /// 1-based line number.
        line: usize,
        /// Underlying construction error.
        source: DesignError,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Design { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Design { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn join_u64(values: impl IntoIterator<Item = u64>) -> String {
    values
        .into_iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Serializes a design to the textual netlist format.
pub fn to_text(design: &Design) -> String {
    let mut out = String::new();
    out.push_str(&format!("design {}\n", design.name()));
    for clk in design.clocks() {
        out.push_str(&format!(
            "clock {} period={}\n",
            clk.name(),
            clk.period_ns()
        ));
    }
    for port in design.inputs() {
        out.push_str(&format!(
            "input {} {}\n",
            port.name(),
            design.signal(port.signal()).width()
        ));
    }
    for sig in design.signals() {
        // Input-port signals were already declared by their `input` line.
        if design
            .find_input(sig.name())
            .is_some_and(|s| design.signal(s).name() == sig.name())
        {
            continue;
        }
        out.push_str(&format!("signal {} {}\n", sig.name(), sig.width()));
    }
    for comp in design.components() {
        let ins = comp
            .inputs()
            .iter()
            .map(|s| design.signal(*s).name().to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "comp {} {} out={}",
            comp.name(),
            comp.kind().mnemonic(),
            design.signal(comp.output()).name()
        ));
        if !comp.inputs().is_empty() {
            out.push_str(&format!(" in={ins}"));
        }
        if let Some(clk) = comp.clock() {
            out.push_str(&format!(" clk={}", design.clocks()[clk.index()].name()));
        }
        match comp.kind() {
            ComponentKind::Slice { lo } => out.push_str(&format!(" lo={lo}")),
            ComponentKind::Const { value } => out.push_str(&format!(" value={value}")),
            ComponentKind::Table { table } => {
                out.push_str(&format!(" data={}", join_u64(table.iter().copied())))
            }
            ComponentKind::Register { init, has_enable } => {
                match init {
                    Some(v) => out.push_str(&format!(" init={v}")),
                    None => out.push_str(" init=x"),
                }
                out.push_str(&format!(" en={}", u8::from(*has_enable)))
            }
            ComponentKind::Memory { words, init } => {
                out.push_str(&format!(" words={words}"));
                if let Some(init) = init {
                    out.push_str(&format!(" init={}", join_u64(init.iter().copied())));
                }
            }
            _ => {}
        }
        out.push('\n');
    }
    for port in design.outputs() {
        out.push_str(&format!(
            "output {} {}\n",
            port.name(),
            design.signal(port.signal()).name()
        ));
    }
    out
}

struct LineCtx {
    line: usize,
}

impl LineCtx {
    fn syntax(&self, message: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn design(&self, source: DesignError) -> ParseError {
        ParseError::Design {
            line: self.line,
            source,
        }
    }
}

fn parse_kv<'a>(tokens: &'a [&'a str]) -> HashMap<&'a str, &'a str> {
    let mut map = HashMap::new();
    for tok in tokens {
        if let Some((k, v)) = tok.split_once('=') {
            map.insert(k, v);
        }
    }
    map
}

fn parse_u64(ctx: &LineCtx, s: &str, what: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| ctx.syntax(format!("invalid {what}: `{s}`")))
}

fn parse_u32(ctx: &LineCtx, s: &str, what: &str) -> Result<u32, ParseError> {
    s.parse()
        .map_err(|_| ctx.syntax(format!("invalid {what}: `{s}`")))
}

fn parse_u64_list(ctx: &LineCtx, s: &str, what: &str) -> Result<Vec<u64>, ParseError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|p| parse_u64(ctx, p, what)).collect()
}

/// Parses a textual netlist back into a [`Design`]. The result is
/// validated before being returned.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on syntax or
/// structural errors.
pub fn from_text(text: &str) -> Result<Design, ParseError> {
    let mut design: Option<Design> = None;
    let mut signals: HashMap<String, SignalId> = HashMap::new();
    let mut clocks: HashMap<String, ClockId> = HashMap::new();
    let mut ctx = LineCtx { line: 0 };

    for (lineno, raw) in text.lines().enumerate() {
        ctx.line = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0];
        if head == "design" {
            if tokens.len() != 2 {
                return Err(ctx.syntax("expected `design <name>`"));
            }
            if design.is_some() {
                return Err(ctx.syntax("duplicate `design` line"));
            }
            design = Some(Design::new(tokens[1]));
            continue;
        }
        let d = design
            .as_mut()
            .ok_or_else(|| ctx.syntax("first line must be `design <name>`"))?;
        match head {
            "clock" => {
                if tokens.len() < 2 {
                    return Err(ctx.syntax("expected `clock <name> [period=<ns>]`"));
                }
                let kv = parse_kv(&tokens[2..]);
                let period: f64 = match kv.get("period") {
                    Some(p) => p
                        .parse()
                        .map_err(|_| ctx.syntax(format!("invalid period `{p}`")))?,
                    None => 10.0,
                };
                let id = d
                    .add_clock_with_period(tokens[1], period)
                    .map_err(|e| ctx.design(e))?;
                clocks.insert(tokens[1].to_string(), id);
            }
            "input" => {
                if tokens.len() != 3 {
                    return Err(ctx.syntax("expected `input <name> <width>`"));
                }
                let width = parse_u32(&ctx, tokens[2], "width")?;
                let id = d.add_input(tokens[1], width).map_err(|e| ctx.design(e))?;
                signals.insert(tokens[1].to_string(), id);
            }
            "signal" => {
                if tokens.len() != 3 {
                    return Err(ctx.syntax("expected `signal <name> <width>`"));
                }
                let width = parse_u32(&ctx, tokens[2], "width")?;
                let id = d.add_signal(tokens[1], width).map_err(|e| ctx.design(e))?;
                signals.insert(tokens[1].to_string(), id);
            }
            "comp" => {
                if tokens.len() < 3 {
                    return Err(ctx.syntax("expected `comp <name> <kind> …`"));
                }
                let name = tokens[1];
                let kind_str = tokens[2];
                let kv = parse_kv(&tokens[3..]);
                let out_name = kv
                    .get("out")
                    .ok_or_else(|| ctx.syntax("component missing `out=`"))?;
                let out = *signals
                    .get(*out_name)
                    .ok_or_else(|| ctx.syntax(format!("unknown signal `{out_name}`")))?;
                let ins: Vec<SignalId> = match kv.get("in") {
                    Some(list) if !list.is_empty() => list
                        .split(',')
                        .map(|n| {
                            signals
                                .get(n)
                                .copied()
                                .ok_or_else(|| ctx.syntax(format!("unknown signal `{n}`")))
                        })
                        .collect::<Result<_, _>>()?,
                    _ => Vec::new(),
                };
                let clock = match kv.get("clk") {
                    Some(c) => Some(
                        *clocks
                            .get(*c)
                            .ok_or_else(|| ctx.syntax(format!("unknown clock `{c}`")))?,
                    ),
                    None => None,
                };
                let kind = match kind_str {
                    "add" => ComponentKind::Add,
                    "sub" => ComponentKind::Sub,
                    "mul" => ComponentKind::Mul,
                    "neg" => ComponentKind::Neg,
                    "eq" => ComponentKind::Eq,
                    "ne" => ComponentKind::Ne,
                    "lt" => ComponentKind::Lt,
                    "le" => ComponentKind::Le,
                    "slt" => ComponentKind::SLt,
                    "sle" => ComponentKind::SLe,
                    "and" => ComponentKind::And,
                    "or" => ComponentKind::Or,
                    "xor" => ComponentKind::Xor,
                    "not" => ComponentKind::Not,
                    "redand" => ComponentKind::RedAnd,
                    "redor" => ComponentKind::RedOr,
                    "redxor" => ComponentKind::RedXor,
                    "shl" => ComponentKind::Shl,
                    "shr" => ComponentKind::Shr,
                    "sar" => ComponentKind::Sar,
                    "mux" => ComponentKind::Mux,
                    "concat" => ComponentKind::Concat,
                    "zext" => ComponentKind::ZeroExt,
                    "sext" => ComponentKind::SignExt,
                    "slice" => {
                        let lo = parse_u32(
                            &ctx,
                            kv.get("lo")
                                .ok_or_else(|| ctx.syntax("slice missing `lo=`"))?,
                            "lo",
                        )?;
                        ComponentKind::Slice { lo }
                    }
                    "const" => {
                        let value = parse_u64(
                            &ctx,
                            kv.get("value")
                                .ok_or_else(|| ctx.syntax("const missing `value=`"))?,
                            "value",
                        )?;
                        ComponentKind::Const { value }
                    }
                    "table" => {
                        let data = parse_u64_list(
                            &ctx,
                            kv.get("data")
                                .ok_or_else(|| ctx.syntax("table missing `data=`"))?,
                            "table entry",
                        )?;
                        ComponentKind::Table { table: data }
                    }
                    "reg" => {
                        let raw = kv
                            .get("init")
                            .ok_or_else(|| ctx.syntax("reg missing `init=`"))?;
                        // `init=x` declares an uninitialized register.
                        let init = if *raw == "x" {
                            None
                        } else {
                            Some(parse_u64(&ctx, raw, "init")?)
                        };
                        let has_enable = matches!(kv.get("en"), Some(&"1"));
                        ComponentKind::Register { init, has_enable }
                    }
                    "mem" => {
                        let words = parse_u32(
                            &ctx,
                            kv.get("words")
                                .ok_or_else(|| ctx.syntax("mem missing `words=`"))?,
                            "words",
                        )?;
                        let init = match kv.get("init") {
                            Some(list) => Some(parse_u64_list(&ctx, list, "mem init entry")?),
                            None => None,
                        };
                        ComponentKind::Memory { words, init }
                    }
                    other => return Err(ctx.syntax(format!("unknown component kind `{other}`"))),
                };
                d.add_component(name, kind, &ins, out, clock)
                    .map_err(|e| ctx.design(e))?;
            }
            "output" => {
                if tokens.len() != 3 {
                    return Err(ctx.syntax("expected `output <port> <signal>`"));
                }
                let sig = *signals
                    .get(tokens[2])
                    .ok_or_else(|| ctx.syntax(format!("unknown signal `{}`", tokens[2])))?;
                d.add_output(tokens[1], sig).map_err(|e| ctx.design(e))?;
            }
            other => return Err(ctx.syntax(format!("unknown declaration `{other}`"))),
        }
    }
    let design = design.ok_or_else(|| ParseError::Syntax {
        line: 1,
        message: "empty netlist".into(),
    })?;
    design
        .validate()
        .map_err(|e| ParseError::Design { line: 0, source: e })?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    fn sample_design() -> Design {
        let mut b = DesignBuilder::new("sample");
        let clk = b.clock_with_period("clk", 8.0);
        let a = b.input("a", 8);
        let c = b.input("b", 8);
        let sum = b.add_wide(a, c);
        let low = b.slice(sum, 0, 8);
        let q = b.pipeline_reg("q", low, 3, clk);
        let sel = b.input("sel", 1);
        let m = b.mux2(sel, q, a);
        let t = b.table(sel, vec![2, 1], 2);
        let mem = b.memory("scratch", 8, 8, Some(vec![7; 8]), clk);
        let a3 = b.slice(a, 0, 3);
        let wen = b.constant(1, 1);
        b.connect_mem(mem, a3, a3, q, wen);
        b.output("m", m);
        b.output("t", t);
        b.output("rd", mem.rdata());
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_design() {
        let d = sample_design();
        let text = to_text(&d);
        let d2 = from_text(&text).unwrap();
        assert_eq!(d.name(), d2.name());
        assert_eq!(d.signals().len(), d2.signals().len());
        assert_eq!(d.components().len(), d2.components().len());
        assert_eq!(d.inputs().len(), d2.inputs().len());
        assert_eq!(d.outputs().len(), d2.outputs().len());
        // Component kinds and connectivity match by name.
        for (c1, c2) in d.components().iter().zip(d2.components()) {
            assert_eq!(c1.name(), c2.name());
            assert_eq!(c1.kind(), c2.kind());
            assert_eq!(c1.inputs().len(), c2.inputs().len());
        }
        // And a second round-trip is a fixed point.
        assert_eq!(text, to_text(&d2));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\ndesign t\ninput a 4  # trailing\nsignal y 4\n\
                    comp inv not out=y in=a\noutput y y\n";
        let d = from_text(text).unwrap();
        assert_eq!(d.name(), "t");
        assert_eq!(d.components().len(), 1);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = from_text("design t\nbogus decl\n").unwrap_err();
        match err {
            ParseError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_design_header_rejected() {
        assert!(from_text("input a 4\n").is_err());
        assert!(from_text("").is_err());
        assert!(from_text("# only comments\n").is_err());
    }

    #[test]
    fn unknown_signal_rejected() {
        let err = from_text("design t\ncomp inv not out=y in=a\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn structural_errors_propagate() {
        // y driven twice.
        let text = "design t\ninput a 1\nsignal y 1\n\
                    comp i1 not out=y in=a\ncomp i2 not out=y in=a\noutput y y\n";
        let err = from_text(text).unwrap_err();
        assert!(matches!(err, ParseError::Design { line: 5, .. }));
    }

    #[test]
    fn clock_period_round_trips() {
        let d = sample_design();
        let d2 = from_text(&to_text(&d)).unwrap();
        assert_eq!(d2.clocks()[0].period_ns(), 8.0);
    }
}
