//! Design size and composition statistics.

use crate::component::ComponentKind;
use crate::design::Design;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics of a [`Design`], used for reporting and for the
/// instrumentation-overhead experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignStats {
    /// Total number of components.
    pub components: usize,
    /// Component count per kind mnemonic, sorted by name.
    pub by_kind: BTreeMap<String, usize>,
    /// Total number of signals.
    pub signals: usize,
    /// Sum of all signal widths.
    pub signal_bits: u64,
    /// Number of registers.
    pub registers: usize,
    /// Total register state bits.
    pub register_bits: u64,
    /// Number of memories.
    pub memories: usize,
    /// Total memory state bits (`words × width`).
    pub memory_bits: u64,
    /// Number of sequential components (registers + memories).
    pub sequential: usize,
    /// Number of combinational components.
    pub combinational: usize,
    /// Total monitored I/O bits (see [`Design::monitored_bits`]).
    pub monitored_bits: u64,
}

impl DesignStats {
    /// Computes statistics for a design.
    pub fn of(design: &Design) -> Self {
        let mut by_kind = BTreeMap::new();
        let mut registers = 0;
        let mut register_bits = 0u64;
        let mut memories = 0;
        let mut memory_bits = 0u64;
        let mut sequential = 0;
        for comp in design.components() {
            *by_kind
                .entry(comp.kind().mnemonic().to_string())
                .or_insert(0) += 1;
            match comp.kind() {
                ComponentKind::Register { .. } => {
                    registers += 1;
                    sequential += 1;
                    register_bits += design.signal(comp.output()).width() as u64;
                }
                ComponentKind::Memory { words, .. } => {
                    memories += 1;
                    sequential += 1;
                    memory_bits += *words as u64 * design.signal(comp.output()).width() as u64;
                }
                _ => {}
            }
        }
        let components = design.components().len();
        Self {
            components,
            by_kind,
            signals: design.signals().len(),
            signal_bits: design.signals().iter().map(|s| s.width() as u64).sum(),
            registers,
            register_bits,
            memories,
            memory_bits,
            sequential,
            combinational: components - sequential,
            monitored_bits: design.monitored_bits(),
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "components: {} ({} comb, {} seq)",
            self.components, self.combinational, self.sequential
        )?;
        writeln!(
            f,
            "signals: {} ({} bits), registers: {} ({} bits), memories: {} ({} bits)",
            self.signals,
            self.signal_bits,
            self.registers,
            self.register_bits,
            self.memories,
            self.memory_bits
        )?;
        writeln!(f, "monitored I/O bits: {}", self.monitored_bits)?;
        write!(f, "by kind:")?;
        for (kind, count) in &self.by_kind {
            write!(f, " {kind}={count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    #[test]
    fn stats_of_small_design() {
        let mut b = DesignBuilder::new("t");
        let clk = b.clock("clk");
        let x = b.input("x", 8);
        let one = b.constant(1, 8);
        let sum = b.add(x, one);
        let q = b.pipeline_reg("q", sum, 0, clk);
        let mem = b.memory("m", 4, 8, None, clk);
        let a0 = b.constant(0, 2);
        let wen = b.constant(1, 1);
        b.connect_mem(mem, a0, a0, q, wen);
        b.output("rd", mem.rdata());
        let d = b.finish().unwrap();
        let s = DesignStats::of(&d);
        assert_eq!(s.registers, 1);
        assert_eq!(s.register_bits, 8);
        assert_eq!(s.memories, 1);
        assert_eq!(s.memory_bits, 32);
        assert_eq!(s.sequential, 2);
        assert_eq!(s.components, s.combinational + s.sequential);
        assert_eq!(s.by_kind["add"], 1);
        assert_eq!(s.by_kind["const"], 3);
        assert!(s.monitored_bits > 0);
        let text = s.to_string();
        assert!(text.contains("components"));
        assert!(text.contains("add=1"));
    }
}
