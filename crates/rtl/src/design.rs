//! The netlist container: signals, components, clocks, ports.

use crate::component::{Component, ComponentKind, WidthError};
use pe_util::bits;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a [`Signal`] within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

/// Identifier of a [`Component`] within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) u32);

/// Identifier of a [`ClockDomain`] within a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClockId(pub(crate) u32);

impl SignalId {
    /// The raw index (stable for the lifetime of the design).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ComponentId {
    /// The raw index (stable for the lifetime of the design).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ClockId {
    /// The raw index (stable for the lifetime of the design).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A multi-bit net. Signals are identified by [`SignalId`] and have a
/// unique name and a width of 1 to 64 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    name: String,
    width: u32,
}

impl Signal {
    /// The signal's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in bits (1..=64).
    pub fn width(&self) -> u32 {
        self.width
    }
}

/// A clock domain. Sequential components belong to exactly one domain; the
/// simulator steps one domain at a time and the power-emulation transform
/// inserts one strobe generator per domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDomain {
    name: String,
    /// Nominal period in nanoseconds, used to convert per-cycle energy to
    /// average power. Defaults to 10 ns (100 MHz).
    period_ns: f64,
}

impl ClockDomain {
    /// The domain's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }
}

/// A named top-level port bound to a signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    name: String,
    signal: SignalId,
}

impl Port {
    /// The port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal the port is bound to.
    pub fn signal(&self) -> SignalId {
        self.signal
    }
}

/// What drives a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Driver {
    /// Driven by a top-level input port.
    Input,
    /// Driven by the output of a component.
    Component(ComponentId),
}

/// Errors raised while constructing or validating a [`Design`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A signal, component, clock, or port name is already taken.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A referenced id does not belong to this design.
    UnknownId {
        /// Description of the bad reference.
        what: String,
    },
    /// Width rules of a component kind were violated.
    Width(WidthError),
    /// Two drivers contend for one signal.
    MultipleDrivers {
        /// The signal's name.
        signal: String,
    },
    /// A signal has no driver after construction.
    UndrivenSignal {
        /// The signal's name.
        signal: String,
    },
    /// A cycle exists through combinational components only.
    CombinationalCycle {
        /// Name of a component on the cycle.
        component: String,
    },
    /// A sequential component is missing a clock, or a combinational one
    /// has one.
    ClockMismatch {
        /// The component's name.
        component: String,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            DesignError::UnknownId { what } => write!(f, "unknown reference: {what}"),
            DesignError::Width(e) => write!(f, "width error: {e}"),
            DesignError::MultipleDrivers { signal } => {
                write!(f, "signal `{signal}` has multiple drivers")
            }
            DesignError::UndrivenSignal { signal } => {
                write!(f, "signal `{signal}` has no driver")
            }
            DesignError::CombinationalCycle { component } => {
                write!(f, "combinational cycle through component `{component}`")
            }
            DesignError::ClockMismatch { component } => write!(
                f,
                "component `{component}` has a clock/sequentiality mismatch"
            ),
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesignError::Width(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WidthError> for DesignError {
    fn from(e: WidthError) -> Self {
        DesignError::Width(e)
    }
}

/// A flat RTL netlist.
///
/// Most users author designs through [`crate::builder::DesignBuilder`];
/// this type is the underlying model with incremental integrity checks.
/// Construction enforces locally checkable rules (unique names, width
/// rules, the single-driver rule, clock presence); [`Design::validate`]
/// adds the global ones (every signal driven, no combinational cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    name: String,
    signals: Vec<Signal>,
    components: Vec<Component>,
    clocks: Vec<ClockDomain>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    drivers: Vec<Option<Driver>>,
    names: HashMap<String, ()>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            signals: Vec::new(),
            components: Vec::new(),
            clocks: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            drivers: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn claim_name(&mut self, name: &str) -> Result<(), DesignError> {
        if self.names.insert(name.to_string(), ()).is_some() {
            Err(DesignError::DuplicateName {
                name: name.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds a clock domain with the default 10 ns period.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::DuplicateName`] if the name is taken.
    pub fn add_clock(&mut self, name: impl Into<String>) -> Result<ClockId, DesignError> {
        self.add_clock_with_period(name, 10.0)
    }

    /// Adds a clock domain with an explicit period in nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::DuplicateName`] if the name is taken.
    pub fn add_clock_with_period(
        &mut self,
        name: impl Into<String>,
        period_ns: f64,
    ) -> Result<ClockId, DesignError> {
        let name = name.into();
        self.claim_name(&name)?;
        self.clocks.push(ClockDomain { name, period_ns });
        Ok(ClockId(self.clocks.len() as u32 - 1))
    }

    /// Adds an internal signal.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::DuplicateName`] if the name is taken, or a
    /// width error if `width` is not in `1..=64`.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: u32,
    ) -> Result<SignalId, DesignError> {
        let name = name.into();
        if width == 0 || width > 64 {
            return Err(DesignError::Width(
                ComponentKind::Not.check_widths(&[width], 1).unwrap_err(),
            ));
        }
        self.claim_name(&name)?;
        self.signals.push(Signal { name, width });
        self.drivers.push(None);
        Ok(SignalId(self.signals.len() as u32 - 1))
    }

    /// Adds a top-level input port: creates the signal and marks it driven
    /// externally.
    ///
    /// # Errors
    ///
    /// Same as [`Design::add_signal`].
    pub fn add_input(
        &mut self,
        name: impl Into<String>,
        width: u32,
    ) -> Result<SignalId, DesignError> {
        let name = name.into();
        let sig = self.add_signal(name.clone(), width)?;
        self.drivers[sig.index()] = Some(Driver::Input);
        self.inputs.push(Port { name, signal: sig });
        Ok(sig)
    }

    /// Exposes an existing signal as a top-level output port.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::UnknownId`] for a foreign signal id and
    /// [`DesignError::DuplicateName`] if the port name clashes with another
    /// *port* (a port may share the name of the signal it exposes).
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        signal: SignalId,
    ) -> Result<(), DesignError> {
        let name = name.into();
        if signal.index() >= self.signals.len() {
            return Err(DesignError::UnknownId {
                what: format!("signal #{} for output port `{name}`", signal.index()),
            });
        }
        if self
            .outputs
            .iter()
            .chain(self.inputs.iter())
            .any(|p| p.name == name)
        {
            return Err(DesignError::DuplicateName { name });
        }
        self.outputs.push(Port { name, signal });
        Ok(())
    }

    /// Adds a component driving `output` from `inputs`.
    ///
    /// Sequential kinds must carry a clock; combinational kinds must not.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule: duplicate name, unknown ids, width
    /// rules, double-driven output, or clock mismatch.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        kind: ComponentKind,
        inputs: &[SignalId],
        output: SignalId,
        clock: Option<ClockId>,
    ) -> Result<ComponentId, DesignError> {
        let name = name.into();
        for (pos, sig) in inputs.iter().enumerate() {
            if sig.index() >= self.signals.len() {
                return Err(DesignError::UnknownId {
                    what: format!("input #{pos} of component `{name}`"),
                });
            }
        }
        if output.index() >= self.signals.len() {
            return Err(DesignError::UnknownId {
                what: format!("output of component `{name}`"),
            });
        }
        if let Some(c) = clock {
            if c.index() >= self.clocks.len() {
                return Err(DesignError::UnknownId {
                    what: format!("clock of component `{name}`"),
                });
            }
        }
        if kind.is_sequential() != clock.is_some() {
            return Err(DesignError::ClockMismatch { component: name });
        }
        let in_widths: Vec<u32> = inputs
            .iter()
            .map(|s| self.signals[s.index()].width)
            .collect();
        let out_width = self.signals[output.index()].width;
        kind.check_widths(&in_widths, out_width)?;
        if self.drivers[output.index()].is_some() {
            return Err(DesignError::MultipleDrivers {
                signal: self.signals[output.index()].name.clone(),
            });
        }
        self.claim_name(&name)?;
        let id = ComponentId(self.components.len() as u32);
        self.drivers[output.index()] = Some(Driver::Component(id));
        self.components
            .push(Component::new(name, kind, inputs.to_vec(), output, clock));
        Ok(id)
    }

    /// All signals, indexable by [`SignalId::index`].
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// All components, indexable by [`ComponentId::index`].
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All clock domains, indexable by [`ClockId::index`].
    pub fn clocks(&self) -> &[ClockDomain] {
        &self.clocks
    }

    /// Top-level input ports, in declaration order.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Top-level output ports, in declaration order.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Looks up a signal by id.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Looks up a component by id.
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// Finds a signal by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// Finds a component by name.
    pub fn find_component(&self, name: &str) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|c| c.name() == name)
            .map(|i| ComponentId(i as u32))
    }

    /// The [`ClockId`] for a clock index, if in range (useful for passes
    /// that iterate [`Design::clocks`]).
    pub fn clock_id(&self, index: usize) -> Option<ClockId> {
        (index < self.clocks.len()).then_some(ClockId(index as u32))
    }

    /// Finds a clock domain by name.
    pub fn find_clock(&self, name: &str) -> Option<ClockId> {
        self.clocks
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClockId(i as u32))
    }

    /// Finds an input port's signal by port name.
    pub fn find_input(&self, name: &str) -> Option<SignalId> {
        self.inputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.signal)
    }

    /// Finds an output port's signal by port name.
    pub fn find_output(&self, name: &str) -> Option<SignalId> {
        self.outputs
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.signal)
    }

    /// The component driving `signal`, if it is component-driven.
    pub fn driver_of(&self, signal: SignalId) -> Option<ComponentId> {
        match self.drivers[signal.index()] {
            Some(Driver::Component(c)) => Some(c),
            _ => None,
        }
    }

    /// Whether `signal` is driven by a top-level input port.
    pub fn is_input_driven(&self, signal: SignalId) -> bool {
        matches!(self.drivers[signal.index()], Some(Driver::Input))
    }

    /// Whether this is a unique, fresh name in the design — useful for
    /// instrumentation passes that generate names.
    pub fn is_name_free(&self, name: &str) -> bool {
        !self.names.contains_key(name)
    }

    /// Returns a fresh name based on `base` (appending `_2`, `_3`, … as
    /// needed).
    pub fn fresh_name(&self, base: &str) -> String {
        if self.is_name_free(base) {
            return base.to_string();
        }
        let mut n = 2;
        loop {
            let candidate = format!("{base}_{n}");
            if self.is_name_free(&candidate) {
                return candidate;
            }
            n += 1;
        }
    }

    /// Evaluates combinational component `id` given its input values
    /// (masked to their widths). Convenience wrapper over
    /// [`ComponentKind::eval`].
    ///
    /// # Panics
    ///
    /// Panics for sequential components.
    pub fn eval_component(&self, id: ComponentId, ins: &[u64]) -> u64 {
        let comp = &self.components[id.index()];
        let in_widths: Vec<u32> = comp
            .inputs()
            .iter()
            .map(|s| self.signals[s.index()].width)
            .collect();
        let out_width = self.signals[comp.output().index()].width;
        comp.kind().eval(ins, &in_widths, out_width)
    }

    /// Validates global integrity: every signal driven, no combinational
    /// cycles, every memory/register clocked (checked at insert but
    /// re-verified), and every port well-formed.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), DesignError> {
        if let Some(&s) = crate::validate::undriven_signals(self).first() {
            return Err(DesignError::UndrivenSignal {
                signal: self.signals[s.index()].name.clone(),
            });
        }
        crate::validate::topo_order(self)?;
        Ok(())
    }

    /// Total number of monitored bits if every component's inputs and
    /// output were observed — the `n` of the paper's macromodel equation,
    /// summed over the design.
    pub fn monitored_bits(&self) -> u64 {
        self.components
            .iter()
            .map(|c| {
                let ins: u64 = c
                    .inputs()
                    .iter()
                    .map(|s| self.signals[s.index()].width as u64)
                    .sum();
                ins + self.signals[c.output().index()].width as u64
            })
            .sum()
    }

    /// Checks that `value` fits the width of `signal`; used by simulators
    /// when applying external stimuli.
    pub fn value_fits(&self, signal: SignalId, value: u64) -> bool {
        value <= bits::mask(self.signals[signal.index()].width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bit_adder() -> (Design, SignalId, SignalId, SignalId) {
        let mut d = Design::new("adder");
        let a = d.add_input("a", 2).unwrap();
        let b = d.add_input("b", 2).unwrap();
        let y = d.add_signal("y", 2).unwrap();
        d.add_component("add0", ComponentKind::Add, &[a, b], y, None)
            .unwrap();
        d.add_output("y", y).unwrap();
        (d, a, b, y)
    }

    #[test]
    fn construct_and_validate() {
        let (d, ..) = two_bit_adder();
        assert!(d.validate().is_ok());
        assert_eq!(d.signals().len(), 3);
        assert_eq!(d.components().len(), 1);
        assert_eq!(d.inputs().len(), 2);
        assert_eq!(d.outputs().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = Design::new("t");
        d.add_signal("x", 4).unwrap();
        assert!(matches!(
            d.add_signal("x", 4),
            Err(DesignError::DuplicateName { .. })
        ));
    }

    #[test]
    fn double_drive_rejected() {
        let mut d = Design::new("t");
        let a = d.add_input("a", 4).unwrap();
        let y = d.add_signal("y", 4).unwrap();
        d.add_component("n1", ComponentKind::Not, &[a], y, None)
            .unwrap();
        assert!(matches!(
            d.add_component("n2", ComponentKind::Not, &[a], y, None),
            Err(DesignError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn clock_mismatch_rejected() {
        let mut d = Design::new("t");
        let a = d.add_input("a", 4).unwrap();
        let y = d.add_signal("y", 4).unwrap();
        // Combinational with clock:
        let clk = d.add_clock("clk").unwrap();
        assert!(matches!(
            d.add_component("n1", ComponentKind::Not, &[a], y, Some(clk)),
            Err(DesignError::ClockMismatch { .. })
        ));
        // Sequential without clock:
        assert!(matches!(
            d.add_component(
                "r1",
                ComponentKind::Register {
                    init: Some(0),
                    has_enable: false
                },
                &[a],
                y,
                None
            ),
            Err(DesignError::ClockMismatch { .. })
        ));
    }

    #[test]
    fn undriven_signal_fails_validation() {
        let mut d = Design::new("t");
        d.add_signal("orphan", 4).unwrap();
        assert!(matches!(
            d.validate(),
            Err(DesignError::UndrivenSignal { .. })
        ));
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut d1 = Design::new("a");
        let mut d2 = Design::new("b");
        let s1 = d1.add_input("x", 4).unwrap();
        let y2 = d2.add_signal("y", 4).unwrap();
        // s1 has index 0, valid in d2 only if d2 has a signal 0 — craft a
        // clearly out-of-range id instead.
        let bogus = SignalId(99);
        assert!(matches!(
            d2.add_component("n", ComponentKind::Not, &[bogus], y2, None),
            Err(DesignError::UnknownId { .. })
        ));
        let _ = s1;
    }

    #[test]
    fn lookup_by_name() {
        let (d, a, ..) = two_bit_adder();
        assert_eq!(d.find_signal("a"), Some(a));
        assert_eq!(d.find_input("a"), Some(a));
        assert!(d.find_component("add0").is_some());
        assert_eq!(d.find_output("y"), d.find_signal("y"));
        assert_eq!(d.find_signal("zzz"), None);
    }

    #[test]
    fn fresh_name_generation() {
        let (d, ..) = two_bit_adder();
        assert_eq!(d.fresh_name("novel"), "novel");
        assert_eq!(d.fresh_name("a"), "a_2");
    }

    #[test]
    fn eval_component_wrapper() {
        let (d, ..) = two_bit_adder();
        let add = d.find_component("add0").unwrap();
        assert_eq!(d.eval_component(add, &[3, 2]), 1); // (3+2) & 0b11
    }

    #[test]
    fn monitored_bits_counts_io() {
        let (d, ..) = two_bit_adder();
        // adder: 2+2 input bits + 2 output bits
        assert_eq!(d.monitored_bits(), 6);
    }

    #[test]
    fn driver_queries() {
        let (d, a, _, y) = two_bit_adder();
        assert!(d.is_input_driven(a));
        assert!(!d.is_input_driven(y));
        assert_eq!(d.driver_of(y), d.find_component("add0"));
        assert_eq!(d.driver_of(a), None);
    }

    #[test]
    fn output_port_may_share_signal_name() {
        let mut d = Design::new("t");
        let a = d.add_input("a", 1).unwrap();
        let y = d.add_signal("y", 1).unwrap();
        d.add_component("buf", ComponentKind::Not, &[a], y, None)
            .unwrap();
        assert!(d.add_output("y", y).is_ok());
        // But a second port of the same name is rejected.
        assert!(d.add_output("y", y).is_err());
    }

    #[test]
    fn value_fits_checks_width() {
        let (d, a, ..) = two_bit_adder();
        assert!(d.value_fits(a, 3));
        assert!(!d.value_fits(a, 4));
    }
}
