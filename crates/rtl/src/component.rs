//! RTL component algebra and evaluation semantics.

use crate::design::{ClockId, SignalId};
use pe_util::bits;
use std::fmt;

/// The kind of an RTL component, together with its static parameters.
///
/// Every kind has fixed input/output arity and width rules, documented per
/// variant and enforced by [`ComponentKind::check_widths`]. The functional
/// semantics live in [`ComponentKind::eval`] (combinational kinds) and in
/// the simulator's clock-edge step (sequential kinds: [`ComponentKind::Register`]
/// and [`ComponentKind::Memory`]).
///
/// All signal values are unsigned `u64` words masked to their signal width;
/// signed operators ([`ComponentKind::SLt`], [`ComponentKind::SignExt`],
/// [`ComponentKind::Sar`]) interpret their operands in two's complement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Adder. Inputs `[a, b]` of equal width `w`; output width in
    /// `w..=64`; result is `(a + b) & mask(out)`, so a `w+1`-bit output
    /// captures the carry.
    Add,
    /// Subtractor. Inputs `[a, b]` of equal width `w`; output width `w`
    /// (two's-complement wraparound).
    Sub,
    /// Multiplier. Inputs `[a, b]` of any widths; output of any width;
    /// result is the low `out` bits of the full product.
    Mul,
    /// Two's-complement negation. One input; output of equal width.
    Neg,
    /// Equality comparator. Inputs `[a, b]` of equal width; 1-bit output.
    Eq,
    /// Inequality comparator. Inputs `[a, b]` of equal width; 1-bit output.
    Ne,
    /// Unsigned less-than. Inputs `[a, b]` of equal width; 1-bit output.
    Lt,
    /// Unsigned less-or-equal. Inputs `[a, b]` of equal width; 1-bit output.
    Le,
    /// Signed less-than. Inputs `[a, b]` of equal width; 1-bit output.
    SLt,
    /// Signed less-or-equal. Inputs `[a, b]` of equal width; 1-bit output.
    SLe,
    /// Bitwise AND. Two or more inputs of equal width; output of same width.
    And,
    /// Bitwise OR. Two or more inputs of equal width; output of same width.
    Or,
    /// Bitwise XOR. Two or more inputs of equal width; output of same width.
    Xor,
    /// Bitwise NOT. One input; output of equal width.
    Not,
    /// AND-reduction of all bits. One input; 1-bit output.
    RedAnd,
    /// OR-reduction of all bits. One input; 1-bit output.
    RedOr,
    /// XOR-reduction (parity) of all bits. One input; 1-bit output.
    RedXor,
    /// Logical left shift. Inputs `[data, amount]`; output width equals
    /// data width. Shift amounts ≥ width yield 0.
    Shl,
    /// Logical right shift. Inputs `[data, amount]`; output width equals
    /// data width. Shift amounts ≥ width yield 0.
    Shr,
    /// Arithmetic right shift. Inputs `[data, amount]`; output width equals
    /// data width. Shift amounts ≥ width yield the sign fill.
    Sar,
    /// Multiplexer. Inputs `[sel, d0, d1, …, d(n-1)]` with `2 ≤ n ≤ 2^w(sel)`
    /// and all data inputs of equal width; output of that width. A select
    /// value ≥ `n` picks the last data input (synthesis would leave those
    /// entries as don't-cares; clamping keeps simulation deterministic).
    Mux,
    /// Bit-field extraction: output is bits `lo .. lo + out_width` of the
    /// input. Requires `lo + out_width ≤ in_width`.
    Slice {
        /// Least-significant extracted bit position.
        lo: u32,
    },
    /// Concatenation. Input 0 occupies the least-significant bits; output
    /// width is the sum of input widths.
    Concat,
    /// Zero extension. One input; output at least as wide.
    ZeroExt,
    /// Sign extension. One input; output at least as wide.
    SignExt,
    /// Constant driver. No inputs; `value` must fit the output width.
    Const {
        /// The constant value.
        value: u64,
    },
    /// Lookup table / ROM: output is `table[input]`. The input is at most
    /// 20 bits wide and `table.len()` must equal `2^in_width`; every entry
    /// must fit the output width. Behavioral synthesis uses this for FSM
    /// next-state/output logic and decoders use it for code tables.
    Table {
        /// The full truth table, indexed by the input value.
        table: Vec<u64>,
    },
    /// Edge-triggered register. Inputs `[d]` or `[d, en]` (enable is
    /// 1 bit); output width equals `d` width; `init` is the power-on value
    /// and must fit the width. `None` means the register has **no defined
    /// power-on value**: two-state simulation treats it as zero, but
    /// static analysis must assume arbitrary garbage (X) until the first
    /// write. Requires a clock domain.
    Register {
        /// Power-on / reset value; `None` = uninitialized (X at power-on).
        init: Option<u64>,
        /// Whether the register has a write-enable input.
        has_enable: bool,
    },
    /// Synchronous-read, synchronous-write memory with one read and one
    /// write port (the behaviour of an FPGA block RAM). Inputs
    /// `[raddr, waddr, wdata, wen]`; output is the registered read data
    /// (width of `wdata`), updated on each clock edge with the *pre-write*
    /// contents at `raddr` (read-first). Address widths must equal
    /// `max(clog2(words), 1)`. Out-of-range addresses wrap modulo `words`.
    /// Requires a clock domain.
    Memory {
        /// Number of words.
        words: u32,
        /// Optional initial contents (must have exactly `words` entries,
        /// each fitting the data width). Missing means zero-initialized.
        init: Option<Vec<u64>>,
    },
}

/// Width-rule violation detected when adding a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthError {
    message: String,
}

impl WidthError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for WidthError {}

impl ComponentKind {
    /// Short lowercase mnemonic used by the textual netlist format.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ComponentKind::Add => "add",
            ComponentKind::Sub => "sub",
            ComponentKind::Mul => "mul",
            ComponentKind::Neg => "neg",
            ComponentKind::Eq => "eq",
            ComponentKind::Ne => "ne",
            ComponentKind::Lt => "lt",
            ComponentKind::Le => "le",
            ComponentKind::SLt => "slt",
            ComponentKind::SLe => "sle",
            ComponentKind::And => "and",
            ComponentKind::Or => "or",
            ComponentKind::Xor => "xor",
            ComponentKind::Not => "not",
            ComponentKind::RedAnd => "redand",
            ComponentKind::RedOr => "redor",
            ComponentKind::RedXor => "redxor",
            ComponentKind::Shl => "shl",
            ComponentKind::Shr => "shr",
            ComponentKind::Sar => "sar",
            ComponentKind::Mux => "mux",
            ComponentKind::Slice { .. } => "slice",
            ComponentKind::Concat => "concat",
            ComponentKind::ZeroExt => "zext",
            ComponentKind::SignExt => "sext",
            ComponentKind::Const { .. } => "const",
            ComponentKind::Table { .. } => "table",
            ComponentKind::Register { .. } => "reg",
            ComponentKind::Memory { .. } => "mem",
        }
    }

    /// Whether this component holds state across clock edges.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            ComponentKind::Register { .. } | ComponentKind::Memory { .. }
        )
    }

    /// Validates input/output widths for this kind.
    ///
    /// # Errors
    ///
    /// Returns a [`WidthError`] describing the first violated rule.
    pub fn check_widths(&self, in_widths: &[u32], out_width: u32) -> Result<(), WidthError> {
        let arity = |n: usize| -> Result<(), WidthError> {
            if in_widths.len() != n {
                Err(WidthError::new(format!(
                    "{} expects {} inputs, got {}",
                    self.mnemonic(),
                    n,
                    in_widths.len()
                )))
            } else {
                Ok(())
            }
        };
        let equal_inputs = || -> Result<u32, WidthError> {
            let w = in_widths[0];
            if in_widths.iter().any(|&x| x != w) {
                Err(WidthError::new(format!(
                    "{} requires equal input widths, got {:?}",
                    self.mnemonic(),
                    in_widths
                )))
            } else {
                Ok(w)
            }
        };
        let out_eq = |w: u32| -> Result<(), WidthError> {
            if out_width != w {
                Err(WidthError::new(format!(
                    "{} output must be {} bits, got {}",
                    self.mnemonic(),
                    w,
                    out_width
                )))
            } else {
                Ok(())
            }
        };
        if out_width == 0 || out_width > 64 {
            return Err(WidthError::new(format!(
                "output width {out_width} out of range 1..=64"
            )));
        }
        if in_widths.iter().any(|&w| w == 0 || w > 64) {
            return Err(WidthError::new(format!(
                "input widths {in_widths:?} out of range 1..=64"
            )));
        }
        match self {
            ComponentKind::Add => {
                arity(2)?;
                let w = equal_inputs()?;
                if out_width < w {
                    return Err(WidthError::new(format!(
                        "add output width {out_width} narrower than inputs ({w})"
                    )));
                }
                Ok(())
            }
            ComponentKind::Sub | ComponentKind::Neg => {
                arity(if matches!(self, ComponentKind::Neg) {
                    1
                } else {
                    2
                })?;
                let w = equal_inputs()?;
                out_eq(w)
            }
            ComponentKind::Mul => arity(2),
            ComponentKind::Eq
            | ComponentKind::Ne
            | ComponentKind::Lt
            | ComponentKind::Le
            | ComponentKind::SLt
            | ComponentKind::SLe => {
                arity(2)?;
                equal_inputs()?;
                out_eq(1)
            }
            ComponentKind::And | ComponentKind::Or | ComponentKind::Xor => {
                if in_widths.len() < 2 {
                    return Err(WidthError::new(format!(
                        "{} expects at least 2 inputs, got {}",
                        self.mnemonic(),
                        in_widths.len()
                    )));
                }
                let w = equal_inputs()?;
                out_eq(w)
            }
            ComponentKind::Not => {
                arity(1)?;
                out_eq(in_widths[0])
            }
            ComponentKind::RedAnd | ComponentKind::RedOr | ComponentKind::RedXor => {
                arity(1)?;
                out_eq(1)
            }
            ComponentKind::Shl | ComponentKind::Shr | ComponentKind::Sar => {
                arity(2)?;
                out_eq(in_widths[0])
            }
            ComponentKind::Mux => {
                if in_widths.len() < 3 {
                    return Err(WidthError::new(
                        "mux expects a select input and at least 2 data inputs",
                    ));
                }
                let sel_w = in_widths[0];
                let n_data = in_widths.len() - 1;
                if sel_w < 64 && n_data as u64 > (1u64 << sel_w) {
                    return Err(WidthError::new(format!(
                        "mux has {n_data} data inputs but the {sel_w}-bit select \
                         can only address {}",
                        1u64 << sel_w
                    )));
                }
                let d = in_widths[1];
                if in_widths[1..].iter().any(|&w| w != d) {
                    return Err(WidthError::new(format!(
                        "mux data inputs must share a width, got {:?}",
                        &in_widths[1..]
                    )));
                }
                out_eq(d)
            }
            ComponentKind::Slice { lo } => {
                arity(1)?;
                if lo + out_width > in_widths[0] {
                    return Err(WidthError::new(format!(
                        "slice [{}..{}] exceeds input width {}",
                        lo,
                        lo + out_width,
                        in_widths[0]
                    )));
                }
                Ok(())
            }
            ComponentKind::Concat => {
                if in_widths.is_empty() {
                    return Err(WidthError::new("concat expects at least 1 input"));
                }
                let total: u32 = in_widths.iter().sum();
                out_eq(total)
            }
            ComponentKind::ZeroExt | ComponentKind::SignExt => {
                arity(1)?;
                if out_width < in_widths[0] {
                    return Err(WidthError::new(format!(
                        "{} output width {} narrower than input {}",
                        self.mnemonic(),
                        out_width,
                        in_widths[0]
                    )));
                }
                Ok(())
            }
            ComponentKind::Const { value } => {
                arity(0)?;
                if *value > bits::mask(out_width) {
                    return Err(WidthError::new(format!(
                        "constant {value:#x} does not fit {out_width} bits"
                    )));
                }
                Ok(())
            }
            ComponentKind::Table { table } => {
                arity(1)?;
                let w = in_widths[0];
                if w > 20 {
                    return Err(WidthError::new(format!(
                        "table input width {w} exceeds the 20-bit limit"
                    )));
                }
                if table.len() as u64 != 1u64 << w {
                    return Err(WidthError::new(format!(
                        "table has {} entries but the {w}-bit input addresses {}",
                        table.len(),
                        1u64 << w
                    )));
                }
                if let Some(bad) = table.iter().find(|&&v| v > bits::mask(out_width)) {
                    return Err(WidthError::new(format!(
                        "table entry {bad:#x} does not fit {out_width} bits"
                    )));
                }
                Ok(())
            }
            ComponentKind::Register { init, has_enable } => {
                arity(if *has_enable { 2 } else { 1 })?;
                if *has_enable && in_widths[1] != 1 {
                    return Err(WidthError::new("register enable must be 1 bit"));
                }
                if let Some(init) = init {
                    if *init > bits::mask(in_widths[0]) {
                        return Err(WidthError::new(format!(
                            "register init {init:#x} does not fit {} bits",
                            in_widths[0]
                        )));
                    }
                }
                out_eq(in_widths[0])
            }
            ComponentKind::Memory { words, init } => {
                arity(4)?;
                if *words == 0 {
                    return Err(WidthError::new("memory must have at least 1 word"));
                }
                let addr_w = bits::clog2(*words as u64).max(1);
                if in_widths[0] != addr_w || in_widths[1] != addr_w {
                    return Err(WidthError::new(format!(
                        "memory of {words} words requires {addr_w}-bit addresses, \
                         got raddr={} waddr={}",
                        in_widths[0], in_widths[1]
                    )));
                }
                if in_widths[3] != 1 {
                    return Err(WidthError::new("memory write enable must be 1 bit"));
                }
                if let Some(init) = init {
                    if init.len() != *words as usize {
                        return Err(WidthError::new(format!(
                            "memory init has {} entries, expected {words}",
                            init.len()
                        )));
                    }
                    if let Some(bad) = init.iter().find(|&&v| v > bits::mask(in_widths[2])) {
                        return Err(WidthError::new(format!(
                            "memory init value {bad:#x} does not fit {} bits",
                            in_widths[2]
                        )));
                    }
                }
                out_eq(in_widths[2])
            }
        }
    }

    /// Evaluates a combinational component.
    ///
    /// `ins` carries the current input values (already masked to their
    /// widths), `in_widths` their widths, and `out_width` the output width.
    /// The result is masked to `out_width`.
    ///
    /// # Panics
    ///
    /// Panics if called on a sequential kind ([`ComponentKind::Register`] or
    /// [`ComponentKind::Memory`]): their semantics live in the simulator's
    /// clock-edge step. Width violations are the caller's responsibility
    /// (they are checked at design construction).
    pub fn eval(&self, ins: &[u64], in_widths: &[u32], out_width: u32) -> u64 {
        let m = bits::mask(out_width);
        match self {
            ComponentKind::Add => ins[0].wrapping_add(ins[1]) & m,
            ComponentKind::Sub => ins[0].wrapping_sub(ins[1]) & m,
            ComponentKind::Mul => ins[0].wrapping_mul(ins[1]) & m,
            ComponentKind::Neg => ins[0].wrapping_neg() & m,
            ComponentKind::Eq => (ins[0] == ins[1]) as u64,
            ComponentKind::Ne => (ins[0] != ins[1]) as u64,
            ComponentKind::Lt => (ins[0] < ins[1]) as u64,
            ComponentKind::Le => (ins[0] <= ins[1]) as u64,
            ComponentKind::SLt => {
                let w = in_widths[0];
                (bits::sign_extend(ins[0], w) < bits::sign_extend(ins[1], w)) as u64
            }
            ComponentKind::SLe => {
                let w = in_widths[0];
                (bits::sign_extend(ins[0], w) <= bits::sign_extend(ins[1], w)) as u64
            }
            ComponentKind::And => ins.iter().copied().fold(m, |a, b| a & b),
            ComponentKind::Or => ins.iter().copied().fold(0, |a, b| a | b) & m,
            ComponentKind::Xor => ins.iter().copied().fold(0, |a, b| a ^ b) & m,
            ComponentKind::Not => !ins[0] & m,
            ComponentKind::RedAnd => (ins[0] == bits::mask(in_widths[0])) as u64,
            ComponentKind::RedOr => (ins[0] != 0) as u64,
            ComponentKind::RedXor => (ins[0].count_ones() & 1) as u64,
            ComponentKind::Shl => {
                let amt = ins[1];
                if amt >= out_width as u64 {
                    0
                } else {
                    (ins[0] << amt) & m
                }
            }
            ComponentKind::Shr => {
                let amt = ins[1];
                if amt >= in_widths[0] as u64 {
                    0
                } else {
                    (ins[0] >> amt) & m
                }
            }
            ComponentKind::Sar => {
                let w = in_widths[0];
                let sx = bits::sign_extend(ins[0], w);
                let amt = ins[1].min(63);
                ((sx >> amt) as u64) & m
            }
            ComponentKind::Mux => {
                let n_data = ins.len() - 1;
                let idx = (ins[0] as usize).min(n_data - 1);
                ins[1 + idx] & m
            }
            ComponentKind::Slice { lo } => (ins[0] >> lo) & m,
            ComponentKind::Concat => {
                let mut acc = 0u64;
                let mut shift = 0u32;
                for (v, w) in ins.iter().zip(in_widths) {
                    acc |= v << shift;
                    shift += w;
                }
                acc & m
            }
            ComponentKind::ZeroExt => ins[0] & m,
            ComponentKind::SignExt => (bits::sign_extend(ins[0], in_widths[0]) as u64) & m,
            ComponentKind::Const { value } => value & m,
            ComponentKind::Table { table } => table[ins[0] as usize] & m,
            ComponentKind::Register { .. } | ComponentKind::Memory { .. } => {
                panic!(
                    "{} is sequential; evaluate it in the clock-edge step",
                    self.mnemonic()
                )
            }
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A component instance in a [`crate::Design`]: a kind plus its netlist
/// connectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    name: String,
    kind: ComponentKind,
    inputs: Vec<SignalId>,
    output: SignalId,
    clock: Option<ClockId>,
}

impl Component {
    pub(crate) fn new(
        name: String,
        kind: ComponentKind,
        inputs: Vec<SignalId>,
        output: SignalId,
        clock: Option<ClockId>,
    ) -> Self {
        Self {
            name,
            kind,
            inputs,
            output,
            clock,
        }
    }

    /// Instance name (unique within the design).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component's kind and parameters.
    pub fn kind(&self) -> &ComponentKind {
        &self.kind
    }

    /// Input signals, in the order required by the kind.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The single output signal.
    pub fn output(&self) -> SignalId {
        self.output
    }

    /// The clock domain, present iff the component is sequential.
    pub fn clock(&self) -> Option<ClockId> {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval1(kind: ComponentKind, ins: &[u64], in_w: &[u32], out_w: u32) -> u64 {
        kind.check_widths(in_w, out_w).expect("widths");
        kind.eval(ins, in_w, out_w)
    }

    #[test]
    fn add_with_carry_out() {
        assert_eq!(eval1(ComponentKind::Add, &[255, 1], &[8, 8], 8), 0);
        assert_eq!(eval1(ComponentKind::Add, &[255, 1], &[8, 8], 9), 256);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(eval1(ComponentKind::Sub, &[0, 1], &[8, 8], 8), 0xFF);
        assert_eq!(eval1(ComponentKind::Sub, &[5, 3], &[8, 8], 8), 2);
    }

    #[test]
    fn mul_truncates() {
        assert_eq!(eval1(ComponentKind::Mul, &[200, 200], &[8, 8], 16), 40000);
        assert_eq!(
            eval1(ComponentKind::Mul, &[200, 200], &[8, 8], 8),
            40000 & 0xFF
        );
    }

    #[test]
    fn neg_two_complement() {
        assert_eq!(eval1(ComponentKind::Neg, &[1], &[8], 8), 0xFF);
        assert_eq!(eval1(ComponentKind::Neg, &[0], &[8], 8), 0);
    }

    #[test]
    fn comparisons_unsigned_and_signed() {
        assert_eq!(eval1(ComponentKind::Lt, &[3, 5], &[4, 4], 1), 1);
        assert_eq!(eval1(ComponentKind::Le, &[5, 5], &[4, 4], 1), 1);
        // 0xF = -1 signed, so -1 < 2
        assert_eq!(eval1(ComponentKind::SLt, &[0xF, 2], &[4, 4], 1), 1);
        // but unsigned 0xF > 2
        assert_eq!(eval1(ComponentKind::Lt, &[0xF, 2], &[4, 4], 1), 0);
        assert_eq!(eval1(ComponentKind::SLe, &[0xF, 0xF], &[4, 4], 1), 1);
        assert_eq!(eval1(ComponentKind::Eq, &[7, 7], &[4, 4], 1), 1);
        assert_eq!(eval1(ComponentKind::Ne, &[7, 7], &[4, 4], 1), 0);
    }

    #[test]
    fn logic_n_ary() {
        assert_eq!(
            eval1(ComponentKind::And, &[0b1100, 0b1010, 0b1111], &[4, 4, 4], 4),
            0b1000
        );
        assert_eq!(eval1(ComponentKind::Or, &[0b01, 0b10], &[2, 2], 2), 0b11);
        assert_eq!(eval1(ComponentKind::Xor, &[0b11, 0b01], &[2, 2], 2), 0b10);
        assert_eq!(eval1(ComponentKind::Not, &[0b1010], &[4], 4), 0b0101);
    }

    #[test]
    fn reductions() {
        assert_eq!(eval1(ComponentKind::RedAnd, &[0xF], &[4], 1), 1);
        assert_eq!(eval1(ComponentKind::RedAnd, &[0xE], &[4], 1), 0);
        assert_eq!(eval1(ComponentKind::RedOr, &[0], &[4], 1), 0);
        assert_eq!(eval1(ComponentKind::RedOr, &[2], &[4], 1), 1);
        assert_eq!(eval1(ComponentKind::RedXor, &[0b1011], &[4], 1), 1);
        assert_eq!(eval1(ComponentKind::RedXor, &[0b0011], &[4], 1), 0);
    }

    #[test]
    fn shifts() {
        assert_eq!(eval1(ComponentKind::Shl, &[0b0011, 1], &[4, 2], 4), 0b0110);
        assert_eq!(eval1(ComponentKind::Shl, &[0b0011, 3], &[4, 2], 4), 0b1000);
        assert_eq!(eval1(ComponentKind::Shr, &[0b1000, 3], &[4, 2], 4), 1);
        // Shift ≥ width
        assert_eq!(eval1(ComponentKind::Shr, &[0b1000, 63], &[4, 6], 4), 0);
        // Arithmetic: sign fill
        assert_eq!(eval1(ComponentKind::Sar, &[0b1000, 1], &[4, 2], 4), 0b1100);
        assert_eq!(eval1(ComponentKind::Sar, &[0b1000, 3], &[4, 2], 4), 0b1111);
        assert_eq!(eval1(ComponentKind::Sar, &[0b0100, 1], &[4, 2], 4), 0b0010);
    }

    #[test]
    fn mux_selects_and_clamps() {
        let ins = [1, 10, 20, 30];
        assert_eq!(eval1(ComponentKind::Mux, &ins, &[2, 8, 8, 8], 8), 20);
        let ins = [3, 10, 20, 30]; // sel 3 with 3 data inputs → clamp to last
        assert_eq!(eval1(ComponentKind::Mux, &ins, &[2, 8, 8, 8], 8), 30);
    }

    #[test]
    fn slice_concat_extend() {
        assert_eq!(eval1(ComponentKind::Slice { lo: 4 }, &[0xAB], &[8], 4), 0xA);
        assert_eq!(eval1(ComponentKind::Concat, &[0xB, 0xA], &[4, 4], 8), 0xAB);
        assert_eq!(eval1(ComponentKind::ZeroExt, &[0xF], &[4], 8), 0x0F);
        assert_eq!(eval1(ComponentKind::SignExt, &[0xF], &[4], 8), 0xFF);
        assert_eq!(eval1(ComponentKind::SignExt, &[0x7], &[4], 8), 0x07);
    }

    #[test]
    fn const_and_table() {
        assert_eq!(eval1(ComponentKind::Const { value: 42 }, &[], &[], 8), 42);
        let kind = ComponentKind::Table {
            table: vec![3, 1, 0, 2],
        };
        assert_eq!(eval1(kind.clone(), &[0], &[2], 2), 3);
        assert_eq!(eval1(kind, &[3], &[2], 2), 2);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn register_eval_panics() {
        ComponentKind::Register {
            init: Some(0),
            has_enable: false,
        }
        .eval(&[0], &[8], 8);
    }

    #[test]
    fn width_rules_reject_bad_shapes() {
        assert!(ComponentKind::Add.check_widths(&[8, 4], 8).is_err());
        assert!(ComponentKind::Add.check_widths(&[8, 8], 4).is_err());
        assert!(ComponentKind::Eq.check_widths(&[8, 8], 2).is_err());
        assert!(ComponentKind::Mux.check_widths(&[1, 8, 8, 8], 8).is_err());
        assert!(ComponentKind::Slice { lo: 5 }
            .check_widths(&[8], 4)
            .is_err());
        assert!(ComponentKind::Concat.check_widths(&[4, 4], 9).is_err());
        assert!(ComponentKind::Const { value: 256 }
            .check_widths(&[], 8)
            .is_err());
        assert!(ComponentKind::Table { table: vec![0; 3] }
            .check_widths(&[2], 4)
            .is_err());
        assert!(ComponentKind::Register {
            init: Some(256),
            has_enable: false
        }
        .check_widths(&[8], 8)
        .is_err());
        assert!(ComponentKind::Memory {
            words: 16,
            init: None
        }
        .check_widths(&[4, 4, 8, 2], 8)
        .is_err());
        assert!(ComponentKind::Memory {
            words: 16,
            init: Some(vec![0; 15])
        }
        .check_widths(&[4, 4, 8, 1], 8)
        .is_err());
        assert!(ComponentKind::And.check_widths(&[8], 8).is_err());
        assert!(ComponentKind::ZeroExt.check_widths(&[8], 4).is_err());
    }

    #[test]
    fn width_rules_accept_good_shapes() {
        assert!(ComponentKind::Add.check_widths(&[8, 8], 9).is_ok());
        assert!(ComponentKind::Mux.check_widths(&[2, 8, 8, 8], 8).is_ok());
        assert!(ComponentKind::Memory {
            words: 16,
            init: Some(vec![0xFF; 16])
        }
        .check_widths(&[4, 4, 8, 1], 8)
        .is_ok());
        assert!(ComponentKind::Memory {
            words: 1,
            init: None
        }
        .check_widths(&[1, 1, 8, 1], 8)
        .is_ok());
        assert!(ComponentKind::Register {
            init: Some(1),
            has_enable: true
        }
        .check_widths(&[8, 1], 8)
        .is_ok());
    }

    #[test]
    fn zero_width_rejected() {
        assert!(ComponentKind::Not.check_widths(&[0], 1).is_err());
        assert!(ComponentKind::Const { value: 0 }
            .check_widths(&[], 0)
            .is_err());
    }
}
