//! The benchmark designs of the DATE 2005 evaluation.
//!
//! The paper evaluates power emulation on seven industrial designs
//! obtained by behavioral synthesis. This crate rebuilds each of them on
//! our substrates — FSMDs synthesized through [`pe_hls`], or hand-built
//! streaming pipelines — together with the testbench stimuli used in the
//! evaluation runs:
//!
//! | Paper design | Here | Construction |
//! |---|---|---|
//! | Bubble_Sort | [`bubble::bubble_sort`] | FSMD (in-place sort over a block RAM) |
//! | HVPeakF | [`peakf::hv_peak_filter`] | streaming pipeline with line buffers (horizontal + vertical peaking) |
//! | DCT | [`dct::dct8`] | FSMD with a list-scheduled, multiplier-shared 8-point DCT dataflow graph |
//! | IDCT | [`dct::idct8`] | FSMD, inverse transform with clipping |
//! | Ispq | [`ispq::ispq`] | FSMD: zigzag inverse scan (ROM) + inverse quantization |
//! | Vld | [`vld::vld`] | FSMD: table-driven Huffman (run, level) decoder |
//! | MPEG4 | [`mpeg4::mpeg4_decoder`] | monolithic decoder FSMD: VLD → dequant → 2-D IDCT (row/column passes with transpose memory) → reconstruction into a frame buffer |
//!
//! [`binary_search::binary_search`] additionally rebuilds the paper's
//! Figure-1 example circuit, used by the quickstart example.
//!
//! [`suite`] packages every design with its stimulus generator and
//! paper-scale/test-scale testbench lengths for the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_search;
pub mod bubble;
pub mod dct;
pub mod defects;
pub mod ispq;
pub mod mpeg4;
pub mod peakf;
pub mod suite;
pub mod vld;
