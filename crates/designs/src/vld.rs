//! Vld: the table-driven variable-length (Huffman) decoder.
//!
//! The decoder walks a binary code tree one bitstream bit per cycle. The
//! tree lives in a node-transition ROM: entry `(node, bit)` yields either
//! the next internal node or a leaf record carrying the decoded
//! `(run, |level|)` symbol — mirroring MPEG-class VLC tables (a compact
//! subset plus an end-of-block symbol; the sign bit trails the code, as in
//! MPEG).
//!
//! Flow control: the design raises `consume` on every cycle in which it
//! reads the presented bitstream bit (walk cycles and sign-bit cycles);
//! the stimulus feeder advances its bit pointer accordingly.

use pe_hls::expr::Expr;
use pe_hls::fsmd::FsmdBuilder;
use pe_rtl::Design;

/// One decodable symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// End of block.
    Eob,
    /// A zero-run followed by a nonzero level (sign transmitted
    /// separately).
    RunLevel {
        /// Number of zeros preceding the coefficient.
        run: u8,
        /// Coefficient magnitude (1..=3).
        magnitude: u8,
    },
}

/// The code book: `(bit pattern, symbol)`. A prefix-free code over
/// `{0,1}`; run/level symbols are followed by one sign bit in the stream
/// (1 = negative).
pub const CODE_BOOK: [(&str, Symbol); 16] = [
    (
        "11",
        Symbol::RunLevel {
            run: 0,
            magnitude: 1,
        },
    ),
    (
        "011",
        Symbol::RunLevel {
            run: 1,
            magnitude: 1,
        },
    ),
    (
        "0101",
        Symbol::RunLevel {
            run: 0,
            magnitude: 2,
        },
    ),
    (
        "0100",
        Symbol::RunLevel {
            run: 2,
            magnitude: 1,
        },
    ),
    (
        "00111",
        Symbol::RunLevel {
            run: 0,
            magnitude: 3,
        },
    ),
    (
        "00110",
        Symbol::RunLevel {
            run: 3,
            magnitude: 1,
        },
    ),
    (
        "00101",
        Symbol::RunLevel {
            run: 1,
            magnitude: 2,
        },
    ),
    (
        "00100",
        Symbol::RunLevel {
            run: 4,
            magnitude: 1,
        },
    ),
    (
        "00011",
        Symbol::RunLevel {
            run: 2,
            magnitude: 2,
        },
    ),
    (
        "00010",
        Symbol::RunLevel {
            run: 1,
            magnitude: 3,
        },
    ),
    (
        "00001",
        Symbol::RunLevel {
            run: 3,
            magnitude: 2,
        },
    ),
    (
        "000001",
        Symbol::RunLevel {
            run: 2,
            magnitude: 3,
        },
    ),
    (
        "0000001",
        Symbol::RunLevel {
            run: 4,
            magnitude: 2,
        },
    ),
    (
        "00000001",
        Symbol::RunLevel {
            run: 3,
            magnitude: 3,
        },
    ),
    (
        "00000000",
        Symbol::RunLevel {
            run: 4,
            magnitude: 3,
        },
    ),
    ("10", Symbol::Eob),
];

/// Encodes a symbol (and its sign for run/level symbols) into bits — the
/// software encoder used by stimulus generators and tests.
pub fn encode_symbol(symbol: Symbol, negative: bool, out: &mut Vec<u8>) {
    let (pattern, _) = CODE_BOOK
        .iter()
        .find(|(_, s)| *s == symbol)
        .expect("symbol in code book");
    for ch in pattern.chars() {
        out.push((ch == '1') as u8);
    }
    if matches!(symbol, Symbol::RunLevel { .. }) {
        out.push(negative as u8);
    }
}

/// Builds the walker ROM. Returns `(table, internal node count)`; entries
/// are indexed by `node·2 + bit` and hold either `next_node` (internal,
/// bit 8 clear) or `0x100 | 0x80·is_runlevel | run<<4 | magnitude` (leaf).
pub(crate) fn walker_table() -> (Vec<u64>, usize) {
    #[derive(Clone)]
    struct Node {
        children: [Option<usize>; 2],
        leaf: Option<Symbol>,
    }
    let mut nodes = vec![Node {
        children: [None, None],
        leaf: None,
    }];
    for (pattern, symbol) in CODE_BOOK {
        let mut at = 0usize;
        for (i, ch) in pattern.chars().enumerate() {
            let bit = (ch == '1') as usize;
            let last = i == pattern.len() - 1;
            if last {
                assert!(
                    nodes[at].children[bit].is_none(),
                    "code book not prefix-free"
                );
                let leaf_idx = nodes.len();
                nodes.push(Node {
                    children: [None, None],
                    leaf: Some(symbol),
                });
                nodes[at].children[bit] = Some(leaf_idx);
            } else {
                let next = match nodes[at].children[bit] {
                    Some(n) => n,
                    None => {
                        let n = nodes.len();
                        nodes.push(Node {
                            children: [None, None],
                            leaf: None,
                        });
                        nodes[at].children[bit] = Some(n);
                        n
                    }
                };
                assert!(nodes[next].leaf.is_none(), "code book not prefix-free");
                at = next;
            }
        }
    }
    let internal: Vec<usize> = (0..nodes.len())
        .filter(|&n| nodes[n].leaf.is_none())
        .collect();
    let index_of = |n: usize| internal.iter().position(|&x| x == n).expect("internal");
    let node_bits = pe_util::bits::clog2(internal.len() as u64).max(1);
    let mut table = vec![0u64; 1 << (node_bits + 1)];
    for &n in &internal {
        for bit in 0..2 {
            let key = (index_of(n) << 1) | bit;
            table[key] = match nodes[n].children[bit] {
                None => 0, // unreachable in well-formed streams: restart
                Some(child) => match nodes[child].leaf {
                    None => index_of(child) as u64,
                    Some(Symbol::Eob) => 0x100,
                    Some(Symbol::RunLevel { run, magnitude }) => {
                        0x100 | 0x80 | ((run as u64) << 4) | magnitude as u64
                    }
                },
            };
        }
    }
    (table, internal.len())
}

/// Builds the Vld design.
///
/// Ports: input `bit` (the current bitstream bit; the feeder advances its
/// pointer whenever `consume` was high during a cycle); outputs
/// `consume` (1), `sym_valid` (1-cycle pulse), `run` (3), `level` (5,
/// two's complement, 0 for EOB), `eob` (1).
///
/// # Panics
///
/// Panics only on internal construction bugs.
pub fn vld() -> Design {
    let (table, node_count) = walker_table();
    let node_bits = pe_util::bits::clog2(node_count as u64).max(1);
    let kw = node_bits + 1;
    let mut f = FsmdBuilder::new("vld");
    let bit_in = f.input("bit", 1);
    let node = f.reg("node", node_bits, 0);
    let run = f.reg("run_r", 3, 0);
    let level = f.reg("level_r", 5, 0);
    let eob = f.reg("eob_r", 1, 0);
    let valid = f.reg("valid_r", 1, 0);
    let pending = f.reg("pending", 9, 0);
    // `consume_r` describes the *current* state's appetite; each state
    // writes it for its successor. The reset state (walk) consumes.
    let consume = f.reg("consume_r", 1, 1);

    let walk = f.state("walk");
    let sign = f.state("sign");
    let emit = f.state("emit");

    // ── walk ─────────────────────────────────────────────────────────────
    let key = Expr::reg(node, node_bits)
        .zext(kw)
        .shl(Expr::konst(1, 1))
        .or(Expr::input(bit_in, 1).zext(kw));
    let entry = crate::ispq::const_mux(&table, key, 9);
    let is_leaf = entry.clone().slice(8, 1);
    let is_rl = entry.clone().slice(7, 1);
    f.set(walk, pending, entry.clone());
    f.set(
        walk,
        node,
        entry
            .clone()
            .slice(0, node_bits)
            .select(is_leaf.clone(), Expr::konst(0, node_bits)),
    );
    f.set(walk, valid, Expr::konst(0, 1));
    // Next state consumes a bit unless it is the EOB pass through `sign`.
    f.set(walk, consume, is_leaf.clone().not().or(is_rl.clone()));
    f.branch(walk, is_leaf, sign, walk);

    // ── sign: latch the symbol (reads the sign bit for run/level) ────────
    let pend = Expr::reg(pending, 9);
    let pend_rl = pend.clone().slice(7, 1);
    let mag = pend.clone().slice(0, 3).zext(5);
    let neg_mag = mag.clone().neg();
    // level = EOB ? 0 : (sign ? -mag : mag)
    let signed_mag = mag.select(Expr::input(bit_in, 1), neg_mag);
    f.set(
        sign,
        level,
        Expr::konst(0, 5).select(pend_rl.clone(), signed_mag),
    );
    f.set(sign, run, pend.clone().slice(4, 3));
    f.set(sign, eob, pend_rl.not());
    f.set(sign, consume, Expr::konst(0, 1)); // emit consumes nothing
    f.goto(sign, emit);

    // ── emit: one-cycle symbol pulse ─────────────────────────────────────
    f.set(emit, valid, Expr::konst(1, 1));
    f.set(emit, consume, Expr::konst(1, 1)); // back to walk
    f.goto(emit, walk);

    f.output("consume", Expr::reg(consume, 1));
    f.output("sym_valid", Expr::reg(valid, 1));
    f.output("run", Expr::reg(run, 3));
    f.output("level", Expr::reg(level, 5));
    f.output("eob", Expr::reg(eob, 1));
    f.synthesize().expect("vld synthesizes")
}

/// Software reference decoder over a bit slice, for tests and the MPEG4
/// stimulus model. Returns `(run, level)` pairs terminated by EOB
/// (`None`), and the number of bits consumed.
pub fn decode_reference(bits: &[u8]) -> (Vec<(u8, i8)>, usize) {
    let (table, _) = walker_table();
    let mut out = Vec::new();
    let mut node = 0u64;
    let mut pos = 0usize;
    while pos < bits.len() {
        let entry = table[(node * 2 + bits[pos] as u64) as usize];
        pos += 1;
        if entry & 0x100 == 0 {
            node = entry;
            continue;
        }
        node = 0;
        if entry & 0x80 == 0 {
            return (out, pos); // EOB
        }
        let run = ((entry >> 4) & 0x7) as u8;
        let mag = (entry & 0x7) as i8;
        let negative = bits[pos] == 1;
        pos += 1;
        out.push((run, if negative { -mag } else { mag }));
    }
    (out, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    #[test]
    fn code_book_is_prefix_free() {
        for (i, (a, _)) in CODE_BOOK.iter().enumerate() {
            for (j, (b, _)) in CODE_BOOK.iter().enumerate() {
                if i != j {
                    assert!(!b.starts_with(a), "{a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn walker_table_decodes_every_symbol() {
        let (table, nodes) = walker_table();
        assert!(nodes >= 4);
        for (pattern, symbol) in CODE_BOOK {
            let mut node = 0u64;
            let mut out = None;
            for ch in pattern.chars() {
                let bit = (ch == '1') as u64;
                let e = table[(node * 2 + bit) as usize];
                if e & 0x100 != 0 {
                    out = Some(e);
                } else {
                    node = e;
                }
            }
            let e = out.expect("pattern must reach a leaf");
            match symbol {
                Symbol::Eob => assert_eq!(e & 0x80, 0, "{pattern}"),
                Symbol::RunLevel { run, magnitude } => {
                    assert_ne!(e & 0x80, 0, "{pattern}");
                    assert_eq!((e >> 4) & 0x7, run as u64, "{pattern}");
                    assert_eq!(e & 0x7, magnitude as u64, "{pattern}");
                }
            }
        }
    }

    /// Drives the design with a bitstream, returning decoded symbols
    /// `(run, level, eob)` observed on `sym_valid` pulses.
    fn drive(design: &pe_rtl::Design, bits: &[u8], max_cycles: usize) -> Vec<(u64, i64, u64)> {
        let mut sim = Simulator::new(design).unwrap();
        let mut pos = 0usize;
        let mut decoded = Vec::new();
        for _ in 0..max_cycles {
            if pos >= bits.len() {
                break; // stream exhausted; zero-fill would decode garbage
            }
            let bit = bits[pos];
            sim.set_input_by_name("bit", bit as u64);
            // Pre-edge: does this cycle consume the presented bit?
            if sim.output("consume") == 1 {
                pos += 1;
            }
            sim.step();
            if sim.output("sym_valid") == 1 {
                decoded.push((
                    sim.output("run"),
                    pe_util::bits::sign_extend(sim.output("level"), 5),
                    sim.output("eob"),
                ));
            }
        }
        // Drain the final emit pulse.
        for _ in 0..3 {
            sim.step();
            if sim.output("sym_valid") == 1 {
                decoded.push((
                    sim.output("run"),
                    pe_util::bits::sign_extend(sim.output("level"), 5),
                    sim.output("eob"),
                ));
            }
        }
        decoded
    }

    #[test]
    fn decodes_an_encoded_stream() {
        let symbols = [
            (
                Symbol::RunLevel {
                    run: 0,
                    magnitude: 1,
                },
                false,
            ),
            (
                Symbol::RunLevel {
                    run: 2,
                    magnitude: 1,
                },
                true,
            ),
            (
                Symbol::RunLevel {
                    run: 0,
                    magnitude: 3,
                },
                false,
            ),
            (
                Symbol::RunLevel {
                    run: 1,
                    magnitude: 2,
                },
                true,
            ),
            (Symbol::Eob, false),
        ];
        let mut bits = Vec::new();
        for (s, neg) in symbols {
            encode_symbol(s, neg, &mut bits);
        }
        let d = vld();
        let decoded = drive(&d, &bits, 200);
        assert_eq!(
            decoded,
            vec![(0, 1, 0), (2, -1, 0), (0, 3, 0), (1, -2, 0), (0, 0, 1),]
        );
        // Cross-check the software reference.
        let (pairs, consumed) = decode_reference(&bits);
        assert_eq!(pairs, vec![(0, 1), (2, -1), (0, 3), (1, -2)]);
        assert_eq!(consumed, bits.len());
    }
}
