//! MPEG4: the monolithic block-based video decoder — the paper's largest
//! benchmark.
//!
//! One FSMD integrates every stage of the sub-designs into a working
//! decoder for a simplified MPEG-style bitstream (defined below, encoded
//! by [`encode_frame`]):
//!
//! 1. **VLD** — the Huffman walker of [`crate::vld`] consumes one
//!    bitstream bit per cycle;
//! 2. **Inverse scan / quantization** — decoded `(run, level)` pairs are
//!    dequantized ([`crate::ispq::dequant_reference`] semantics) and
//!    scattered through the zigzag ROM into the coefficient memory;
//! 3. **2-D IDCT** — one shared, list-scheduled 8-point IDCT dataflow
//!    graph is looped over the 8 rows (coefficient memory → transpose
//!    memory) and then the 8 columns (transpose → residual memory): the
//!    same datapath states, registers, and bound multipliers serve both
//!    passes;
//! 4. **Reconstruction** — residuals are added to the prediction (the
//!    frame buffer's previous contents for inter blocks, a flat 128 for
//!    intra blocks), clipped, written back to the frame buffer, and folded
//!    into a running checksum.
//!
//! The frame is 32×32 pixels = 16 blocks of 8×8. Per block the bitstream
//! carries one intra/inter flag bit followed by VLC-coded coefficients up
//! to an EOB symbol.
//!
//! [`reference_decode`] is the bit-exact software model used to verify the
//! hardware's checksums, and [`BitstreamFeeder`] adapts a bit vector to
//! the design's `consume` handshake as a [`pe_sim::Testbench`].

use crate::dct::dct_matrix;
use crate::ispq::{const_mux, dequant_reference, zigzag_rom, ZIGZAG};
use crate::vld::{encode_symbol, walker_table, Symbol};
use pe_hls::dfg::{lower, schedule, Dfg, ResourceBudget};
use pe_hls::expr::Expr;
use pe_hls::fsmd::FsmdBuilder;
use pe_rtl::Design;
use pe_sim::{SimControl, Testbench};
use pe_util::rng::Xoshiro;

/// Frame edge length in pixels.
pub const FRAME_SIZE: u32 = 32;
/// Blocks per frame (4×4 grid of 8×8 blocks).
pub const FRAME_BLOCKS: u32 = 16;

const W: u32 = 24;

/// Builds the decoder design.
///
/// Ports: inputs `bit` (1), `qscale` (5); outputs `consume` (1),
/// `checksum` (16), `blocks_done` (16), `frames_done` (8).
///
/// # Panics
///
/// Panics only on internal construction bugs.
pub fn mpeg4_decoder() -> Design {
    let (vtable, node_count) = walker_table();
    let node_bits = pe_util::bits::clog2(node_count as u64).max(1);
    let kw = node_bits + 1;

    let mut f = FsmdBuilder::new("mpeg4");
    let bit_in = f.input("bit", 1);
    let qscale = f.input("qscale", 5);

    // VLD / scatter stage.
    let node = f.reg("node", node_bits, 0);
    let pending = f.reg("pending", 9, 0);
    let consume = f.reg("consume_r", 1, 0);
    let intra = f.reg("intra", 1, 0);
    let ci = f.reg("ci", 7, 0);
    let rec_val = f.reg("rec_val", 12, 0);
    let clr = f.reg("clr", 7, 0);
    // Transform stage.
    let pass = f.reg("pass", 1, 0);
    let row = f.reg("row", 3, 0);
    let n = f.reg("n", 4, 0);
    let xs: Vec<_> = (0..8).map(|i| f.reg(&format!("x{i}"), W, 0)).collect();
    let os: Vec<_> = (0..8).map(|i| f.reg(&format!("o{i}"), 16, 0)).collect();
    // Reconstruction stage.
    let p = f.reg("p", 7, 0);
    let blk = f.reg("blk", 4, 0);
    let frames = f.reg("frames", 8, 0);
    let blocks = f.reg("blocks", 16, 0);
    let checksum = f.reg("checksum", 16, 0);

    let coef = f.mem("coef", 64, 12, None);
    let tmp = f.mem("tmp", 64, 16, None);
    let resid = f.mem("resid", 64, 16, None);
    let frame = f.mem("frame", FRAME_SIZE * FRAME_SIZE, 8, None);

    // ── States ────────────────────────────────────────────────────────────
    let clear = f.state("clear");
    let hdr = f.state("hdr");
    let walk = f.state("walk");
    let sign = f.state("sign");
    let scatter = f.state("scatter");
    let ld_init = f.state("ld_init");
    let ld = f.state("ld");
    // (DFG states are created by `lower` below.)

    // clear: zero the coefficient memory, then read the header bit.
    f.mem_write(
        clear,
        coef,
        Expr::reg(clr, 7).slice(0, 6),
        Expr::konst(0, 12),
    );
    f.set(clear, clr, Expr::reg(clr, 7).add(Expr::konst(1, 7)));
    let clear_done = Expr::reg(clr, 7).eq(Expr::konst(63, 7));
    f.set(clear, consume, clear_done.clone()); // hdr consumes the flag bit
    f.branch(clear, clear_done, hdr, clear);

    // hdr: intra/inter flag; reset the coefficient cursor.
    f.set(hdr, intra, Expr::input(bit_in, 1));
    f.set(hdr, ci, Expr::konst(0, 7));
    f.set(hdr, consume, Expr::konst(1, 1)); // walk consumes
    f.goto(hdr, walk);

    // walk: Huffman tree walk (see crate::vld).
    let key = Expr::reg(node, node_bits)
        .zext(kw)
        .shl(Expr::konst(1, 1))
        .or(Expr::input(bit_in, 1).zext(kw));
    let entry = const_mux(&vtable, key, 9);
    let is_leaf = entry.clone().slice(8, 1);
    let is_rl = entry.clone().slice(7, 1);
    f.set(walk, pending, entry.clone());
    f.set(
        walk,
        node,
        entry
            .clone()
            .slice(0, node_bits)
            .select(is_leaf.clone(), Expr::konst(0, node_bits)),
    );
    f.set(walk, consume, is_leaf.clone().not().or(is_rl));
    f.branch(walk, is_leaf, sign, walk);

    // sign: dequantize the pending symbol; advance the cursor by the run.
    let pend = Expr::reg(pending, 9);
    let pend_rl = pend.clone().slice(7, 1);
    let mag = pend.clone().slice(0, 3).zext(14);
    let two_q = Expr::input(qscale, 5).zext(14).shl(Expr::konst(1, 1));
    let prod = mag.mul(two_q, 14);
    let too_big = Expr::konst(2047, 14).slt(prod.clone());
    let sat = prod.select(too_big, Expr::konst(2047, 14));
    let neg_sat = sat.clone().neg();
    let signed = sat.select(Expr::input(bit_in, 1), neg_sat);
    f.set(sign, rec_val, signed.slice(0, 12));
    let run = pend.clone().slice(4, 3).zext(7);
    let target = Expr::reg(ci, 7).add(run);
    let over = Expr::konst(63, 7).lt(target.clone());
    f.set(sign, ci, target.select(over, Expr::konst(63, 7)));
    f.set(sign, consume, Expr::konst(0, 1));
    f.branch(sign, pend_rl, scatter, ld_init);

    // scatter: coef[zigzag[ci]] = rec_val; ci++.
    f.mem_write(
        scatter,
        coef,
        zigzag_rom(Expr::reg(ci, 7).slice(0, 6)),
        Expr::reg(rec_val, 12),
    );
    f.set(scatter, ci, Expr::reg(ci, 7).add(Expr::konst(1, 7)));
    f.set(scatter, consume, Expr::konst(1, 1)); // back to walk
    f.goto(scatter, walk);

    // ld_init: begin the row pass.
    f.set(ld_init, pass, Expr::konst(0, 1));
    f.set(ld_init, row, Expr::konst(0, 3));
    f.set(ld_init, n, Expr::konst(0, 4));
    f.goto(ld_init, ld);

    // ld: shift-load eight samples (9 iterations; the first shift carries
    // stale data out). Reads are issued on both source memories; the
    // shift-in selects by pass.
    let addr6 = Expr::reg(row, 3)
        .zext(6)
        .shl(Expr::konst(3, 2))
        .or(Expr::reg(n, 4).slice(0, 3).zext(6));
    f.mem_read(ld, coef, addr6.clone());
    f.mem_read(ld, tmp, addr6);
    let shift_in = Expr::mem_data(coef, 12)
        .sext(W)
        .select(Expr::reg(pass, 1), Expr::mem_data(tmp, 16).sext(W));
    for i in 0..8 {
        let next = if i == 7 {
            shift_in.clone()
        } else {
            Expr::reg(xs[i + 1], W)
        };
        f.set(ld, xs[i], next);
    }
    f.set(ld, n, Expr::reg(n, 4).add(Expr::konst(1, 4)));

    // ── The shared 8-point IDCT dataflow graph ───────────────────────────
    let c = dct_matrix();
    let mut g = Dfg::new();
    let sources: Vec<_> = xs.iter().map(|&x| g.source(Expr::reg(x, W))).collect();
    let mut results = Vec::with_capacity(8);
    for nn in 0..8 {
        let mut terms = Vec::new();
        for (k, crow) in c.iter().enumerate() {
            let cv = crow[nn];
            if cv == 0 {
                continue;
            }
            let cnode = g.source(Expr::konst(pe_util::bits::to_unsigned(cv, W), W));
            terms.push(g.mul(sources[k], cnode, W));
        }
        let mut level = terms;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    g.add(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        results.push(g.sar_const(level[0], 8));
    }
    let sched = schedule(
        &g,
        &ResourceBudget {
            multipliers: 4,
            adders: 4,
        },
    );
    // Two physical 1-D IDCT datapaths — one per pass, as a
    // throughput-oriented decoder pipeline would instantiate them.
    let lowered_row = lower(&mut f, &g, &sched, "idct_row");
    let lowered_col = lower(&mut f, &g, &sched, "idct_col");
    let ld_sel = f.state("ld_sel");
    f.branch(ld, Expr::reg(n, 4).eq(Expr::konst(8, 4)), ld_sel, ld);
    f.branch(
        ld_sel,
        Expr::reg(pass, 1),
        lowered_col.entry,
        lowered_row.entry,
    );

    // stage: copy DFG results into the output shift bank.
    let stage_row = f.state("stage_row");
    let stage_col = f.state("stage_col");
    f.goto(lowered_row.exit, stage_row);
    f.goto(lowered_col.exit, stage_col);
    for (i, &r) in results.iter().enumerate() {
        f.set(stage_row, os[i], lowered_row.result(r).slice(0, 16));
        f.set(stage_col, os[i], lowered_col.result(r).slice(0, 16));
    }
    f.set(stage_row, n, Expr::konst(0, 4));
    f.set(stage_col, n, Expr::konst(0, 4));

    // st_row / st_col: store eight results at transposed addresses
    // (`n·8 + row`), shifting the bank.
    let st_row = f.state("st_row");
    let st_col = f.state("st_col");
    f.goto(stage_row, st_row);
    f.goto(stage_col, st_col);
    let st_addr = Expr::reg(n, 4)
        .slice(0, 3)
        .zext(6)
        .shl(Expr::konst(3, 2))
        .or(Expr::reg(row, 3).zext(6));
    for (state, mem) in [(st_row, tmp), (st_col, resid)] {
        f.mem_write(state, mem, st_addr.clone(), Expr::reg(os[0], 16));
        for i in 0..8 {
            let next = if i == 7 {
                Expr::reg(os[0], 16) // rotate; value unused afterwards
            } else {
                Expr::reg(os[i + 1], 16)
            };
            f.set(state, os[i], next);
        }
        f.set(state, n, Expr::reg(n, 4).add(Expr::konst(1, 4)));
    }
    // Loop control after each bank of 8 stores.
    let rec_init = f.state("rec_init");
    let bank_done = Expr::reg(n, 4).eq(Expr::konst(7, 4));
    let row_done = Expr::reg(row, 3).eq(Expr::konst(7, 3));
    // st_row: next row, or switch to the column pass.
    let ld_col = f.state("ld_col");
    f.set(ld_col, pass, Expr::konst(1, 1));
    f.set(ld_col, row, Expr::konst(0, 3));
    f.set(ld_col, n, Expr::konst(0, 4));
    f.goto(ld_col, ld);
    let next_row = f.state("next_row");
    f.set(next_row, row, Expr::reg(row, 3).add(Expr::konst(1, 3)));
    f.set(next_row, n, Expr::konst(0, 4));
    f.goto(next_row, ld);
    // Branch chains: two-way branches need intermediate states.
    let row_adv = f.state("row_adv");
    f.branch(st_row, bank_done.clone(), row_adv, st_row);
    f.branch(row_adv, row_done.clone(), ld_col, next_row);
    let col_adv = f.state("col_adv");
    f.branch(st_col, bank_done.clone(), col_adv, st_col);
    let next_row_c = f.state("next_row_c");
    f.set(next_row_c, row, Expr::reg(row, 3).add(Expr::konst(1, 3)));
    f.set(next_row_c, n, Expr::konst(0, 4));
    f.goto(next_row_c, ld);
    f.branch(col_adv, row_done, rec_init, next_row_c);

    // ── Reconstruction ───────────────────────────────────────────────────
    f.set(rec_init, p, Expr::konst(0, 7));
    let rec_issue = f.state("rec_issue");
    let rec_do = f.state("rec_do");
    f.goto(rec_init, rec_issue);

    // Frame-buffer address of pixel `p` within block `blk`.
    let faddr = {
        let r3 = Expr::reg(p, 7).slice(3, 3).zext(10);
        let c3 = Expr::reg(p, 7).slice(0, 3).zext(10);
        let bx = Expr::reg(blk, 4).slice(0, 2).zext(10);
        let by = Expr::reg(blk, 4).slice(2, 2).zext(10);
        by.shl(Expr::konst(8, 4))
            .or(r3.shl(Expr::konst(5, 3)))
            .or(bx.shl(Expr::konst(3, 2)))
            .or(c3)
    };
    f.mem_read(rec_issue, resid, Expr::reg(p, 7).slice(0, 6));
    f.mem_read(rec_issue, frame, faddr.clone());
    f.goto(rec_issue, rec_do);

    let base =
        Expr::konst(128, 16).select(Expr::reg(intra, 1).not(), Expr::mem_data(frame, 8).zext(16));
    let summ = base.add(Expr::mem_data(resid, 16));
    let neg = summ.clone().slt(Expr::konst(0, 16));
    let big = Expr::konst(255, 16).slt(summ.clone());
    let clip_hi = summ.select(big, Expr::konst(255, 16));
    let pixel = clip_hi.select(neg, Expr::konst(0, 16));
    f.mem_write(rec_do, frame, faddr, pixel.clone().slice(0, 8));
    f.set(
        rec_do,
        checksum,
        Expr::reg(checksum, 16)
            .add(pixel.slice(0, 16))
            .xor(Expr::reg(p, 7).zext(16)),
    );
    f.set(rec_do, p, Expr::reg(p, 7).add(Expr::konst(1, 7)));
    let blk_adv = f.state("blk_adv");
    f.branch(
        rec_do,
        Expr::reg(p, 7).eq(Expr::konst(63, 7)),
        blk_adv,
        rec_issue,
    );

    // blk_adv: next block / frame bookkeeping, then clear for the next
    // block.
    let last_blk = Expr::reg(blk, 4).eq(Expr::konst((FRAME_BLOCKS - 1) as u64, 4));
    f.set(
        blk_adv,
        blk,
        Expr::reg(blk, 4)
            .add(Expr::konst(1, 4))
            .select(last_blk.clone(), Expr::konst(0, 4)),
    );
    f.set(
        blk_adv,
        frames,
        Expr::reg(frames, 8).select(last_blk, Expr::reg(frames, 8).add(Expr::konst(1, 8))),
    );
    f.set(
        blk_adv,
        blocks,
        Expr::reg(blocks, 16).add(Expr::konst(1, 16)),
    );
    f.set(blk_adv, clr, Expr::konst(0, 7));
    f.set(blk_adv, consume, Expr::konst(0, 1));
    f.goto(blk_adv, clear);

    f.output("consume", Expr::reg(consume, 1));
    f.output("checksum", Expr::reg(checksum, 16));
    f.output("blocks_done", Expr::reg(blocks, 16));
    f.output("frames_done", Expr::reg(frames, 8));
    f.synthesize().expect("mpeg4 synthesizes")
}

// ─── Bitstream model ─────────────────────────────────────────────────────

/// One encoded block: the intra flag and its sparse coefficients
/// `(transmission index gap = run, level)`.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Intra (flat-128 prediction) or inter (frame-buffer prediction).
    pub intra: bool,
    /// `(run, level)` pairs in transmission order; magnitudes 1..=3.
    pub coeffs: Vec<(u8, i8)>,
}

/// Generates a deterministic synthetic "video" stream of `blocks` blocks
/// (the workload generator for the evaluation: sparse textured blocks,
/// occasional intra refreshes).
pub fn synthetic_blocks(blocks: usize, seed: u64) -> Vec<BlockSpec> {
    let mut rng = Xoshiro::new(seed ^ 0x4D50_4547);
    (0..blocks)
        .map(|i| {
            let intra = i % (FRAME_BLOCKS as usize) == 0 || rng.chance(0.15);
            let n_coeffs = rng.range(1, 6) as usize;
            let coeffs = (0..n_coeffs)
                .map(|_| {
                    let run = rng.range(0, 4) as u8;
                    let mag = rng.range(1, 3) as i8;
                    let level = if rng.chance(0.5) { -mag } else { mag };
                    (run, level)
                })
                .collect();
            BlockSpec { intra, coeffs }
        })
        .collect()
}

/// Encodes blocks into the decoder's bitstream format.
pub fn encode_frame(blocks: &[BlockSpec]) -> Vec<u8> {
    let mut bits = Vec::new();
    for b in blocks {
        bits.push(b.intra as u8);
        for &(run, level) in &b.coeffs {
            let symbol = Symbol::RunLevel {
                run: run.min(4),
                magnitude: level.unsigned_abs().clamp(1, 3),
            };
            encode_symbol(symbol, level < 0, &mut bits);
        }
        encode_symbol(Symbol::Eob, false, &mut bits);
    }
    bits
}

/// Bit-exact software model of the decoder. Returns the final checksum
/// after decoding `blocks` with the given `qscale`.
pub fn reference_decode(blocks: &[BlockSpec], qscale: u64) -> u16 {
    let c = dct_matrix();
    let mut frame = vec![0i64; (FRAME_SIZE * FRAME_SIZE) as usize];
    let mut checksum: u16 = 0;
    let mut blk = 0usize;
    for spec in blocks {
        // Inverse scan + dequant.
        let mut coef = [0i64; 64];
        let mut ci = 0usize;
        for &(run, level) in &spec.coeffs {
            ci = (ci + run as usize).min(63);
            coef[ZIGZAG[ci] as usize] = dequant_reference(level as i64, qscale);
            ci += 1;
        }
        // Row pass (transposed into tmp), then column pass.
        let idct8 = |input: &[i64; 8]| -> [i64; 8] {
            let mut out = [0i64; 8];
            for (nn, o) in out.iter_mut().enumerate() {
                let mut acc = 0i64;
                for k in 0..8 {
                    acc += c[k][nn] * input[k];
                }
                *o = acc >> 8;
            }
            out
        };
        let mut tmp = [0i64; 64];
        for r in 0..8 {
            let mut rowv = [0i64; 8];
            rowv.copy_from_slice(&coef[r * 8..r * 8 + 8]);
            let out = idct8(&rowv);
            for (nn, &v) in out.iter().enumerate() {
                tmp[nn * 8 + r] = sat16(v);
            }
        }
        let mut resid = [0i64; 64];
        for r in 0..8 {
            let mut rowv = [0i64; 8];
            rowv.copy_from_slice(&tmp[r * 8..r * 8 + 8]);
            let out = idct8(&rowv);
            for (nn, &v) in out.iter().enumerate() {
                resid[nn * 8 + r] = sat16(v);
            }
        }
        // Reconstruction.
        let (bx, by) = (blk % 4, blk / 4);
        for (p, &res) in resid.iter().enumerate() {
            let (r, col) = (p / 8, p % 8);
            let addr = (by * 8 + r) * FRAME_SIZE as usize + bx * 8 + col;
            let base = if spec.intra { 128 } else { frame[addr] };
            let pixel = (base + res).clamp(0, 255);
            frame[addr] = pixel;
            checksum = checksum.wrapping_add(pixel as u16) ^ (p as u16);
        }
        blk = (blk + 1) % FRAME_BLOCKS as usize;
    }
    checksum
}

/// 16-bit two's-complement wraparound (matches the hardware's 16-bit
/// memories).
fn sat16(v: i64) -> i64 {
    pe_util::bits::sign_extend(v as u64 & 0xFFFF, 16)
}

/// A [`Testbench`] feeding a bitstream under the design's `consume`
/// handshake. Holds the last bit once the stream is exhausted.
#[derive(Debug, Clone)]
pub struct BitstreamFeeder {
    bits: Vec<u8>,
    cycles: u64,
    qscale: Option<u64>,
    pos: usize,
    consumed_last: bool,
}

impl BitstreamFeeder {
    /// Creates a feeder running for `cycles` cycles. `qscale` drives the
    /// design's `qscale` port when present (the plain Vld design has
    /// none).
    pub fn new(bits: Vec<u8>, qscale: Option<u64>, cycles: u64) -> Self {
        Self {
            bits,
            cycles,
            qscale,
            pos: 0,
            consumed_last: false,
        }
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl Testbench for BitstreamFeeder {
    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn apply(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        if self.consumed_last {
            self.pos += 1;
            self.consumed_last = false;
        }
        let bit = *self.bits.get(self.pos).unwrap_or(&0);
        sim.set_input_by_name("bit", bit as u64);
        if let Some(q) = self.qscale {
            sim.set_input_by_name("qscale", q);
        }
    }

    fn observe(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        self.consumed_last = sim.output("consume") == 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::{run, Simulator};

    #[test]
    fn decodes_blocks_matching_the_reference_model() {
        let d = mpeg4_decoder();
        let blocks = synthetic_blocks(3, 5);
        let bits = encode_frame(&blocks);
        let mut feeder = BitstreamFeeder::new(bits, Some(8), 4000);
        let mut sim = Simulator::new(&d).unwrap();
        // Run until 3 blocks are done.
        let mut done_cycles = 0;
        for cycle in 0..feeder.cycles() {
            feeder.apply(cycle, &mut sim);
            feeder.observe(cycle, &mut sim);
            sim.step();
            if sim.output("blocks_done") == 3 {
                done_cycles = cycle;
                break;
            }
        }
        assert!(done_cycles > 0, "decoder never finished 3 blocks");
        let expected = reference_decode(&blocks, 8);
        assert_eq!(sim.output("checksum") as u16, expected);
    }

    #[test]
    fn full_frame_advances_frame_counter() {
        let d = mpeg4_decoder();
        let blocks = synthetic_blocks(FRAME_BLOCKS as usize, 9);
        let bits = encode_frame(&blocks);
        let mut feeder = BitstreamFeeder::new(bits, Some(6), 40_000);
        let mut sim = Simulator::new(&d).unwrap();
        run(&mut sim, &mut feeder);
        assert_eq!(sim.output("frames_done"), 1);
        assert_eq!(sim.output("blocks_done") as u32, FRAME_BLOCKS);
        let expected = reference_decode(&blocks, 6);
        assert_eq!(sim.output("checksum") as u16, expected);
    }

    #[test]
    fn inter_blocks_depend_on_previous_frame() {
        // Decoding the same stream twice must differ when blocks are
        // inter-coded (prediction from the evolving frame buffer).
        let mut blocks = synthetic_blocks(FRAME_BLOCKS as usize, 3);
        for b in &mut blocks[1..] {
            b.intra = false;
        }
        let one = reference_decode(&blocks, 8);
        let mut twice = blocks.clone();
        twice.extend(blocks.clone());
        let two = reference_decode(&twice, 8);
        assert_ne!(one, two);
    }
}
