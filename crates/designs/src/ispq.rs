//! Ispq: the inverse scan + inverse quantization block of the decoder.
//!
//! An FSMD that consumes one quantized coefficient level per iteration (in
//! zigzag transmission order), dequantizes it, and scatters it to its
//! natural raster position inside a 64-word coefficient memory. The
//! zigzag permutation is a ROM ([`pe_rtl::ComponentKind::Table`]), the
//! dequantizer uses the shared multiplier, and saturation clamps to the
//! 12-bit coefficient range — the standard structure of an MPEG-class
//! inverse quantizer:
//!
//! ```text
//! rec = sign(level) · min(|level| · (2·qscale), 2047)
//! ```

use pe_hls::expr::Expr;
use pe_hls::fsmd::FsmdBuilder;
use pe_rtl::Design;

/// The 8×8 zigzag scan order: `ZIGZAG[i]` is the raster position of the
/// `i`-th transmitted coefficient.
pub const ZIGZAG: [u64; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reference dequantizer used by tests and the MPEG4 stimulus model.
pub fn dequant_reference(level: i64, qscale: u64) -> i64 {
    if level == 0 {
        return 0;
    }
    let mag = (level.unsigned_abs() * 2 * qscale).min(2047) as i64;
    if level < 0 {
        -mag
    } else {
        mag
    }
}

/// Builds the Ispq design.
///
/// Ports: inputs `level` (8-bit signed quantized coefficient) and
/// `qscale` (5); outputs `done_block` (1, one-cycle pulse after every 64
/// coefficients), `check_data` (12) and input `check_addr` (6) for
/// post-block read-out (valid while `done_block` is high — the FSM pauses
/// one state between blocks).
///
/// # Panics
///
/// Panics only on internal construction bugs.
pub fn ispq() -> Design {
    const W: u32 = 14; // headroom: |level|·2·qscale ≤ 127·62 = 7874
    let mut f = FsmdBuilder::new("ispq");
    let level_in = f.input("level", 8);
    let qscale = f.input("qscale", 5);
    let check_addr = f.input("check_addr", 6);
    let i = f.reg("i", 7, 0);
    let level = f.reg("level_r", W, 0);
    let rec = f.reg("rec", 12, 0);
    let done = f.reg("done_r", 1, 0);
    let coef = f.mem("coef", 64, 12, None);

    let fetch = f.state("fetch");
    let dequant = f.state("dequant");
    let store = f.state("store");
    let pause = f.state("pause");

    // fetch: capture the incoming level (sign-extended).
    f.set(fetch, level, Expr::input(level_in, 8).sext(W));
    f.set(fetch, done, Expr::konst(0, 1));
    f.goto(fetch, dequant);

    // dequant: rec <= sign-aware saturating level × 2·qscale.
    let lv = Expr::reg(level, W);
    let is_neg = lv.clone().slt(Expr::konst(0, W));
    let mag_in = lv.clone().neg().select(is_neg.clone().not(), lv.clone());
    let two_q = Expr::input(qscale, 5).zext(W).shl(Expr::konst(1, 1));
    let prod = mag_in.mul(two_q, W);
    let too_big = Expr::konst(2047, W).slt(prod.clone());
    let sat = prod.select(too_big, Expr::konst(2047, W));
    let signed_rec = sat.clone().neg().select(is_neg.not(), sat);
    f.set(dequant, rec, signed_rec.slice(0, 12));
    f.goto(dequant, store);

    // store: scatter through the zigzag ROM, bump the index.
    let zig_addr = Expr::reg(i, 7).slice(0, 6);
    // Zigzag permutation ROM.
    let raster = zigzag_rom(zig_addr);
    f.mem_write(store, coef, raster, Expr::reg(rec, 12));
    f.set(store, i, Expr::reg(i, 7).add(Expr::konst(1, 7)));
    f.branch(store, Expr::reg(i, 7).eq(Expr::konst(63, 7)), pause, fetch);

    // pause: one-block boundary; serve check reads, then restart.
    f.set(pause, done, Expr::konst(1, 1));
    f.set(pause, i, Expr::konst(0, 7));
    f.mem_read(pause, coef, Expr::input(check_addr, 6));
    f.goto(pause, fetch);

    f.output("done_block", Expr::reg(done, 1));
    f.output("check_data", Expr::mem_data(coef, 12));
    f.output("index", Expr::reg(i, 7));
    f.synthesize().expect("ispq synthesizes")
}

/// Builds the zigzag ROM lookup as an expression. Exposed to the MPEG4
/// top, which embeds the same inverse scan.
pub(crate) fn zigzag_rom(index6: Expr) -> Expr {
    assert_eq!(index6.width(), 6);
    // Expr has no table node; the FSMD layer reaches tables through memory
    // or the code generator's control ROMs, so the permutation is realized
    // arithmetically here — as a mux cascade would be large, we instead
    // lean on a Table component via a tiny helper FSMD idiom: the
    // permutation is folded into a select tree generated from the constant
    // array. With 64 entries a balanced select tree over 6 bits is exactly
    // what synthesis would emit for a small ROM.
    const_mux(&ZIGZAG, index6, 6)
}

/// Recursive constant multiplexer tree (a ROM as select logic); the table
/// length must be a power of two matching the index width. Shared with the
/// Vld walker and the MPEG4 top.
pub(crate) fn const_mux(table: &[u64], index: Expr, out_width: u32) -> Expr {
    if table.len() == 1 || table.iter().all(|&v| v == table[0]) {
        return Expr::konst(table[0], out_width);
    }
    let half = table.len() / 2;
    let bit = pe_util::bits::clog2(table.len() as u64) - 1;
    let low = const_mux(&table[..half], index.clone(), out_width);
    let high = const_mux(&table[half..], index.clone(), out_width);
    let sel = index.slice(bit, 1);
    low.select(sel, high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;
    use pe_util::bits::to_unsigned;
    use pe_util::rng::Xoshiro;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z as usize]);
            seen[z as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dequantizes_and_scatters_a_block() {
        let d = ispq();
        let mut sim = Simulator::new(&d).unwrap();
        let qscale = 6u64;
        sim.set_input_by_name("qscale", qscale);
        let mut rng = Xoshiro::new(42);
        let levels: Vec<i64> = (0..64).map(|_| rng.range_i64(-30, 30)).collect();

        // Feed one level per `fetch` state: the FSM takes 3 cycles per
        // coefficient (fetch → dequant → store).
        for &lv in &levels {
            sim.set_input_by_name("level", to_unsigned(lv, 8));
            sim.step(); // fetch
            sim.step(); // dequant
            sim.step(); // store
        }
        assert_eq!(sim.output("done_block"), 0);
        sim.step(); // pause entered; done goes high after its edge… feed check reads
                    // Now in pause→fetch; but reads were issued in pause. Verify a few
                    // raster positions using the reference model.
                    // Re-run to use the pause read port properly: scan all addresses by
                    // re-entering pause once per block is costly; instead check via a
                    // fresh run per address below (cheap at this size).
        for probe in [0usize, 1, 8, 20, 63] {
            let mut sim2 = Simulator::new(&d).unwrap();
            sim2.set_input_by_name("qscale", qscale);
            for &lv in &levels {
                sim2.set_input_by_name("level", to_unsigned(lv, 8));
                sim2.step_n(3);
            }
            sim2.set_input_by_name("check_addr", probe as u64);
            sim2.step(); // pause: read issued
            let got = pe_util::bits::sign_extend(sim2.output("check_data"), 12);
            // Which transmission index landed at raster `probe`?
            let tx = ZIGZAG.iter().position(|&z| z == probe as u64).unwrap();
            let expected = dequant_reference(levels[tx], qscale);
            assert_eq!(got, expected, "raster {probe}");
        }
    }

    #[test]
    fn saturation_clamps_large_products() {
        assert_eq!(dequant_reference(127, 31), 2047);
        assert_eq!(dequant_reference(-127, 31), -2047);
        assert_eq!(dequant_reference(0, 31), 0);
        let d = ispq();
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("qscale", 31);
        sim.set_input_by_name("level", to_unsigned(127, 8));
        sim.step_n(3); // first coefficient: lands at raster 0
        let mut sim_probe = sim;
        // Finish the block with zeros to reach the pause state.
        sim_probe.set_input_by_name("level", 0);
        sim_probe.step_n(63 * 3);
        sim_probe.set_input_by_name("check_addr", 0);
        sim_probe.step();
        assert_eq!(
            pe_util::bits::sign_extend(sim_probe.output("check_data"), 12),
            2047
        );
    }
}
