//! The paper's Figure-1 example: a binary-search circuit.
//!
//! The figure shows a controller FSM, registers (`reg_first`, `reg_last`,
//! `reg_mid`, `reg_c0`, `reg_c1`, `reg_out`), comparators, an
//! adder/subtractor, a `>> 1` and a data memory on buses. This FSMD
//! reproduces that structure: it searches a sorted table for an input
//! value and reports the index (or all-ones when absent).

use pe_hls::expr::Expr;
use pe_hls::fsmd::FsmdBuilder;
use pe_rtl::Design;

/// Number of table entries in the generated circuit.
pub const TABLE_WORDS: u32 = 32;

/// Builds the binary-search design over a sorted 32-entry × 8-bit table.
///
/// Ports: input `value` (8 bits), input `start` (1 bit, level-triggered);
/// outputs `found` (1), `index` (5), `done` (1).
///
/// # Panics
///
/// Panics only on internal construction bugs.
pub fn binary_search() -> Design {
    // A sorted table with distinct values spread over 0..=255.
    let table: Vec<u64> = (0..TABLE_WORDS as u64).map(|i| i * 8 + 3).collect();
    let aw = 5; // clog2(32)
                // Bound registers carry two extra bits so that `last = -1` (searching
                // below the table) and `first = 32` (above) remain representable for
                // the signed termination compare.
    let mut f = FsmdBuilder::new("binary_search");
    let value = f.input("value", 8);
    let start = f.input("start", 1);
    let first = f.reg("reg_first", aw + 2, 0);
    let last = f.reg("reg_last", aw + 2, (TABLE_WORDS - 1) as u64);
    let mid = f.reg("reg_mid", aw + 2, 0);
    let c1 = f.reg("reg_c1", 8, 0);
    let out = f.reg("reg_out", aw + 2, 0);
    let found = f.reg("reg_found", 1, 0);
    let done = f.reg("reg_done", 1, 0);
    let mem = f.mem("table", TABLE_WORDS, 8, Some(table));

    let idle = f.state("idle");
    let compute_mid = f.state("compute_mid");
    let fetch = f.state("fetch");
    let compare = f.state("compare");
    let hit = f.state("hit");
    let miss = f.state("miss");

    let w = aw + 2;
    // idle: wait for start; reinitialize bounds.
    f.set(idle, first, Expr::konst(0, w));
    f.set(idle, last, Expr::konst((TABLE_WORDS - 1) as u64, w));
    f.set(idle, done, Expr::konst(0, 1));
    f.set(idle, found, Expr::konst(0, 1));
    f.branch(
        idle,
        Expr::input(start, 1).eq(Expr::konst(1, 1)),
        compute_mid,
        idle,
    );

    // compute_mid: mid <= (first + last) >> 1
    let sum = Expr::reg(first, w).add(Expr::reg(last, w));
    f.set(compute_mid, mid, sum.shr(Expr::konst(1, 1)));
    // Terminate when first > last.
    f.branch(
        compute_mid,
        Expr::reg(last, w).slt(Expr::reg(first, w)),
        miss,
        fetch,
    );

    // fetch: read table[mid]
    f.mem_read(fetch, mem, Expr::reg(mid, w).slice(0, aw));
    f.goto(fetch, compare);

    // compare: c1 <= data; adjust bounds
    let data = Expr::mem_data(mem, 8);
    f.set(compare, c1, data.clone());
    let eq = data.clone().eq(Expr::input(value, 8));
    let lt = data.lt(Expr::input(value, 8)); // table[mid] < value → go right
    f.set(
        compare,
        first,
        Expr::reg(first, w).select(lt.clone(), Expr::reg(mid, w).add(Expr::konst(1, w))),
    );
    f.set(
        compare,
        last,
        Expr::reg(last, w).select(
            lt.clone().or(eq.clone()).not(),
            Expr::reg(mid, w).sub(Expr::konst(1, w)),
        ),
    );
    f.branch(compare, eq, hit, compute_mid);

    // hit: latch result.
    f.set(hit, out, Expr::reg(mid, w));
    f.set(hit, found, Expr::konst(1, 1));
    f.set(hit, done, Expr::konst(1, 1));
    f.goto(hit, idle);

    // miss: exhausted range.
    f.set(miss, out, Expr::konst(pe_util::bits::mask(w), w));
    f.set(miss, found, Expr::konst(0, 1));
    f.set(miss, done, Expr::konst(1, 1));
    f.goto(miss, idle);

    f.output("found", Expr::reg(found, 1));
    f.output("index", Expr::reg(out, w).slice(0, aw));
    f.output("done", Expr::reg(done, 1));
    f.output("probe", Expr::reg(c1, 8));

    f.synthesize().expect("binary_search synthesizes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    fn search(sim: &mut Simulator<'_>, value: u64) -> (u64, u64) {
        sim.set_input_by_name("value", value);
        sim.set_input_by_name("start", 1);
        sim.step(); // leave idle
        sim.set_input_by_name("start", 0);
        for _ in 0..64 {
            if sim.output("done") == 1 {
                return (sim.output("found"), sim.output("index"));
            }
            sim.step();
        }
        panic!("search did not terminate");
    }

    #[test]
    fn finds_every_table_entry() {
        let d = binary_search();
        let mut sim = Simulator::new(&d).unwrap();
        for i in 0..TABLE_WORDS as u64 {
            let target = i * 8 + 3;
            let (found, index) = search(&mut sim, target);
            assert_eq!(found, 1, "value {target} not found");
            assert_eq!(index, i, "wrong index for {target}");
        }
    }

    #[test]
    fn rejects_absent_values() {
        let d = binary_search();
        let mut sim = Simulator::new(&d).unwrap();
        for target in [0u64, 4, 100, 255] {
            let (found, _) = search(&mut sim, target);
            assert_eq!(found, 0, "value {target} should be absent");
        }
    }

    #[test]
    fn has_the_figures_structure() {
        let d = binary_search();
        // Registers, a memory, comparators, adders and muxes all present.
        let kinds: Vec<&str> = d.components().iter().map(|c| c.kind().mnemonic()).collect();
        for expect in ["reg", "mem", "add", "sub", "lt", "eq", "mux", "shr"] {
            assert!(kinds.contains(&expect), "missing {expect}");
        }
    }
}
