//! HVPeakF: the horizontal/vertical peaking (sharpening) image filter.
//!
//! Unlike the FSMD benchmarks, this is a hand-built streaming pipeline —
//! the kind of datapath-dominated RTL that behavioral synthesis emits for
//! throughput-oriented filters. One 8-bit pixel enters per cycle in raster
//! order over a `width`-pixel line; with the center tap `x1` (the pixel two
//! cycles behind the input) the output is
//!
//! ```text
//! hp_h = 2·x1 − x0 − x2                   (horizontal high-pass)
//! hp_v = 2·v1 − x1 − v2                   (causal vertical high-pass;
//!                                          v1/v2 = pixels 1/2 rows above x1)
//! y    = clip( x1 + (gain × (hp_h + hp_v)) >> 3 )
//! ```
//!
//! The vertical taps come from two line-buffer block RAMs read at the
//! *input* column and re-aligned onto the center tap with a two-stage
//! delay (the classic line-buffer skew registers). All arithmetic runs in
//! sign-extended 14-bit precision, which the tap ranges can never
//! overflow, so the datapath is exact.

use pe_rtl::builder::DesignBuilder;
use pe_rtl::Design;
use pe_util::bits::clog2;

/// Builds the filter for `width`-pixel lines.
///
/// Ports: inputs `pixel` (8), `gain` (3); outputs `pixel_out` (8),
/// `col` (log2(width) bits).
///
/// # Panics
///
/// Panics unless `width` is a power of two ≥ 4.
pub fn hv_peak_filter(width: u32) -> Design {
    assert!(
        width >= 4 && width.is_power_of_two(),
        "line width must be a power of two ≥ 4"
    );
    let aw = clog2(width as u64);
    let mut b = DesignBuilder::new("hv_peakf");
    let clk = b.clock("clk");
    let pixel = b.input("pixel", 8);
    let gain = b.input("gain", 3);

    // Column counter (wraps naturally at the line width).
    let col = b.register_named("col", aw, 0, clk);
    let one = b.constant(1, aw);
    let col_next = b.add(col.q(), one);
    b.connect_d(col, col_next);

    // ── Horizontal window: x2 (oldest) ── x1 (center) ── x0 (newest) ────
    let x0 = b.pipeline_reg("x0", pixel, 0, clk);
    let x1 = b.pipeline_reg("x1", x0, 0, clk);
    let x2 = b.pipeline_reg("x2", x1, 0, clk);

    // ── Line buffers, read at the input column, skewed onto x1 ──────────
    let wen = b.constant(1, 1);
    let row1 = b.memory("row1", width, 8, None, clk);
    let row2 = b.memory("row2", width, 8, None, clk);
    // row1[c] ← fresh pixel; row2[c] ← the pixel leaving row1 (its read
    // register currently holds the previous row at this column).
    b.connect_mem(row1, col.q(), col.q(), pixel, wen);
    let row1_data = row1.rdata();
    b.connect_mem(row2, col.q(), col.q(), row1_data, wen);
    let row2_data = row2.rdata();
    // Two skew registers align the vertical taps with the center pixel.
    let v1a = b.pipeline_reg("v1a", row1_data, 0, clk);
    let v1 = b.pipeline_reg("v1", v1a, 0, clk);
    let v2a = b.pipeline_reg("v2a", row2_data, 0, clk);
    let v2 = b.pipeline_reg("v2", v2a, 0, clk);

    // ── High-pass taps in 14-bit signed precision ────────────────────────
    let sx0 = b.zext(x0, 14);
    let sx1 = b.zext(x1, 14);
    let sx2 = b.zext(x2, 14);
    let sv1 = b.zext(v1, 14);
    let sv2 = b.zext(v2, 14);

    let x1_dbl = b.shl_const(sx1, 1);
    let hsum = b.add(sx0, sx2);
    let hp_h = b.sub(x1_dbl, hsum);

    let v1_dbl = b.shl_const(sv1, 1);
    let vsum = b.add(sx1, sv2);
    let hp_v = b.sub(v1_dbl, vsum);

    // ── Combine, scale by gain, add back, clip ──────────────────────────
    let hp = b.add(hp_h, hp_v);
    let gain_w = b.zext(gain, 14);
    let scaled = b.mul(hp, gain_w, 14);
    let shifted = b.sar_const(scaled, 3);
    let sum = b.add(sx1, shifted);

    // Clip to 0..=255: negative → 0, > 255 → 255.
    let zero14 = b.constant(0, 14);
    let max14 = b.constant(255, 14);
    let is_neg = b.slt(sum, zero14);
    let too_big = b.slt(max14, sum);
    let clip_hi = b.mux2(too_big, sum, max14);
    let clipped = b.mux2(is_neg, clip_hi, zero14);
    let out8 = b.slice(clipped, 0, 8);
    let y = b.pipeline_reg("y", out8, 0, clk);

    b.output("pixel_out", y);
    b.output("col", col.q());
    b.finish().expect("hv_peakf is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;
    use pe_util::rng::Xoshiro;

    #[test]
    fn flat_image_passes_through() {
        let d = hv_peak_filter(16);
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("pixel", 100);
        sim.set_input_by_name("gain", 4);
        // Fill the pipeline and both line buffers with the flat value.
        for _ in 0..4 * 16 {
            sim.step();
        }
        // A flat image has zero high-pass response: output = input.
        for _ in 0..20 {
            sim.step();
            assert_eq!(sim.output("pixel_out"), 100);
        }
    }

    #[test]
    fn zero_gain_is_identity_after_latency() {
        let d = hv_peak_filter(8);
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("gain", 0);
        let mut rng = Xoshiro::new(11);
        let mut sent = Vec::new();
        for t in 0..64usize {
            let p = rng.bits(8);
            sent.push(p);
            sim.set_input_by_name("pixel", p);
            sim.step();
            // Latency: pixel → x0 → x1 (center) → y = 3 edges.
            if t >= 3 {
                assert_eq!(
                    sim.output("pixel_out"),
                    sent[t - 2],
                    "identity failed at t={t}"
                );
            }
        }
    }

    #[test]
    fn horizontal_edge_is_sharpened() {
        let d = hv_peak_filter(8);
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("gain", 4);
        // Uniform dark rows first.
        sim.set_input_by_name("pixel", 50);
        for _ in 0..32 {
            sim.step();
        }
        // Bright from now on: a step within the row.
        let mut outputs = Vec::new();
        sim.set_input_by_name("pixel", 200);
        for _ in 0..16 {
            sim.step();
            outputs.push(sim.output("pixel_out"));
        }
        assert!(
            outputs.iter().any(|&y| !(50..=200).contains(&y)),
            "no overshoot in {outputs:?}"
        );
    }

    #[test]
    fn vertical_edge_is_sharpened() {
        let width = 8;
        let d = hv_peak_filter(width);
        let mut sim = Simulator::new(&d).unwrap();
        sim.set_input_by_name("gain", 4);
        // Several dark rows, then bright rows: a vertical step.
        sim.set_input_by_name("pixel", 50);
        for _ in 0..4 * width {
            sim.step();
        }
        sim.set_input_by_name("pixel", 200);
        let mut outputs = Vec::new();
        for _ in 0..3 * width {
            sim.step();
            outputs.push(sim.output("pixel_out"));
        }
        assert!(
            outputs.iter().any(|&y| !(50..=200).contains(&y)),
            "no vertical overshoot in {outputs:?}"
        );
    }
}
