//! Deliberately unsound benchmark variants for admission-path testing.
//!
//! These designs simulate fine under two-state semantics (an
//! uninitialized register just reads zero), so nothing in the
//! characterize → instrument → emulate pipeline rejects them — only the
//! static X-propagation analysis in `pe-lint` can. They exist so the
//! serving daemon's admission gate has something real to reject: the
//! scheduler resolves them by name exactly like suite designs, but they
//! are **not** part of [`crate::suite::all_benchmarks`] and never appear
//! in evaluation runs.

use crate::suite::{benchmark, Benchmark, Workload};
use pe_rtl::builder::DesignBuilder;
use pe_rtl::{ComponentKind, Design};

/// Names of every defect benchmark, resolvable via
/// [`benchmark_or_defect`].
pub const DEFECT_NAMES: &[&str] = &["Defect_Uninit_Reg", "Defect_X_Mux"];

/// Names of the *structurally* broken designs, resolvable via
/// [`structural_defect_design`]. Unlike [`DEFECT_NAMES`], these do not
/// simulate at all: `Design::validate` (and therefore every engine
/// constructor and the tape compiler) rejects them with a diagnosed
/// reason — a combinational cycle or an undriven signal — matching the
/// lint rule ids `comb-cycle` and `undriven-signal`.
pub const STRUCTURAL_DEFECT_NAMES: &[&str] = &["Defect_Comb_Cycle", "Defect_Undriven"];

/// A pipeline whose second stage has no power-on value: its X reaches the
/// instrumentation snapshots (`x-strobe`), the accumulator increment
/// (`x-accumulator`), and the domain's reset cover is incomplete
/// (`x-reset-cover`).
fn uninit_reg_design() -> Design {
    let mut b = DesignBuilder::new("defect_uninit_reg");
    let clk = b.clock("clk");
    let x = b.input("x", 8);
    let s1 = b.pipeline_reg("s1", x, 0, clk);
    let ghost = b.register_uninit("ghost", 8, clk);
    b.connect_d(ghost, s1);
    let y = b.not(ghost.q());
    b.output("y", y);
    b.finish().expect("defect design is structurally valid")
}

/// A datapath steered by an uninitialized select register: the mux output
/// is arbitrary at power-on (`x-mux-select`, plus the strobe-path X
/// findings on everything downstream).
fn x_mux_design() -> Design {
    let mut b = DesignBuilder::new("defect_x_mux");
    let clk = b.clock("clk");
    let x = b.input("x", 8);
    let sel_d = b.input("sel", 1);
    let sel = b.register_uninit("sel_q", 1, clk);
    b.connect_d(sel, sel_d);
    let inv = b.not(x);
    let picked = b.mux(sel.q(), &[x, inv]);
    let out = b.pipeline_reg("out", picked, 0, clk);
    b.output("y", out);
    b.finish().expect("defect design is structurally valid")
}

/// Two inverters chasing each other's tails: `loop_a` and `loop_b` form
/// a combinational cycle no topological schedule can order
/// (`comb-cycle`). Built with the raw [`Design`] API — the builder's
/// `finish()` would refuse to hand it over.
fn comb_cycle_design() -> Design {
    let mut d = Design::new("defect_comb_cycle");
    let x = d.add_input("x", 8).expect("signal");
    let a = d.add_signal("a", 8).expect("signal");
    let b = d.add_signal("b", 8).expect("signal");
    d.add_component("loop_a", ComponentKind::Xor, &[x, b], a, None)
        .expect("component");
    d.add_component("loop_b", ComponentKind::Not, &[a], b, None)
        .expect("component");
    d.add_output("y", a).expect("port");
    d
}

/// A gate reading a signal nothing drives (`undriven-signal`): `ghost`
/// is declared but never connected to a driver.
fn undriven_design() -> Design {
    let mut d = Design::new("defect_undriven");
    let x = d.add_input("x", 8).expect("signal");
    let ghost = d.add_signal("ghost", 8).expect("signal");
    let y = d.add_signal("mix_out", 8).expect("signal");
    d.add_component("mix", ComponentKind::And, &[x, ghost], y, None)
        .expect("component");
    d.add_output("y", y).expect("port");
    d
}

/// Finds a structurally broken design by name (see
/// [`STRUCTURAL_DEFECT_NAMES`]). Returns the raw [`Design`] rather than
/// a [`Benchmark`]: these cannot run a workload — the point is that
/// admission paths reject them with the diagnosed structural reason.
pub fn structural_defect_design(name: &str) -> Option<Design> {
    match name {
        "Defect_Comb_Cycle" => Some(comb_cycle_design()),
        "Defect_Undriven" => Some(undriven_design()),
        _ => None,
    }
}

/// Finds a defect benchmark by name.
pub fn defect_benchmark(name: &str) -> Option<Benchmark> {
    let design = match name {
        "Defect_Uninit_Reg" => uninit_reg_design(),
        "Defect_X_Mux" => x_mux_design(),
        _ => return None,
    };
    Some(Benchmark {
        name: DEFECT_NAMES
            .iter()
            .find(|n| **n == name)
            .expect("name matched above"),
        design,
        workload: Workload::Random {
            fixed: Vec::new(),
            random: vec![("x", 8)],
            seed: 99,
        },
        test_cycles: 200,
        paper_cycles: 200,
    })
}

/// Resolves a design name against the evaluation suite first, then the
/// defect set — the lookup the serving daemon admits designs through.
pub fn benchmark_or_defect(name: &str) -> Option<Benchmark> {
    benchmark(name).or_else(|| defect_benchmark(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defects_resolve_but_stay_out_of_the_suite() {
        for name in DEFECT_NAMES {
            assert!(defect_benchmark(name).is_some(), "{name}");
            assert!(benchmark_or_defect(name).is_some(), "{name}");
            assert!(
                !crate::suite::all_benchmarks()
                    .iter()
                    .any(|b| b.name == *name),
                "{name} leaked into the evaluation suite"
            );
        }
        assert!(defect_benchmark("Bubble_Sort").is_none());
        assert_eq!(
            benchmark_or_defect("Bubble_Sort").unwrap().name,
            "Bubble_Sort"
        );
        assert!(benchmark_or_defect("nope").is_none());
    }

    #[test]
    fn defect_designs_simulate_under_two_state_semantics() {
        for name in DEFECT_NAMES {
            let b = defect_benchmark(name).unwrap();
            let mut sim = pe_sim::Simulator::new(&b.design).unwrap();
            let mut tb = b.testbench(50);
            assert_eq!(pe_sim::run(&mut sim, tb.as_mut()), 50, "{name}");
        }
    }
}
