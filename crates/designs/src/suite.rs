//! The benchmark suite: every design packaged with its workload.
//!
//! The evaluation harness (`pe-bench`) iterates [`all_benchmarks`] to
//! regenerate the paper's Figure 3. Two scales are provided:
//! [`Scale::Test`] keeps integration tests fast, [`Scale::Paper`] runs the
//! testbench lengths used for the reported numbers (the MPEG4 workload
//! corresponds to four 32×32 frames of the synthetic video stream).

use crate::mpeg4::{encode_frame, synthetic_blocks, BitstreamFeeder};
use pe_rtl::Design;
use pe_sim::{SimControl, Testbench};
use pe_util::rng::Xoshiro;

/// Testbench length scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short runs for CI/integration tests.
    Test,
    /// The evaluation-length runs used by the Figure-3 harness.
    Paper,
}

/// Workload description, turned into a fresh [`Testbench`] per run.
#[derive(Debug, Clone)]
pub(crate) enum Workload {
    /// Fixed values plus per-cycle uniform-random values on named ports.
    Random {
        fixed: Vec<(&'static str, u64)>,
        random: Vec<(&'static str, u32)>,
        seed: u64,
    },
    /// A VLC bitstream under the `consume` handshake.
    Bitstream { seed: u64, qscale: Option<u64> },
}

/// Random-stimulus testbench shared by the stream-style designs.
#[derive(Debug, Clone)]
struct RandomStream {
    cycles: u64,
    fixed: Vec<(&'static str, u64)>,
    random: Vec<(&'static str, u32)>,
    rng: Xoshiro,
}

impl Testbench for RandomStream {
    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn apply(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        for (name, value) in &self.fixed {
            sim.set_input_by_name(name, *value);
        }
        for (name, width) in &self.random {
            let v = self.rng.bits(*width);
            sim.set_input_by_name(name, v);
        }
    }
}

/// A benchmark: a design plus its workload and run lengths.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The paper's design name.
    pub name: &'static str,
    /// The constructed design.
    pub design: Design,
    pub(crate) workload: Workload,
    pub(crate) test_cycles: u64,
    pub(crate) paper_cycles: u64,
}

impl Benchmark {
    /// The run length for a scale.
    pub fn cycles(&self, scale: Scale) -> u64 {
        match scale {
            Scale::Test => self.test_cycles,
            Scale::Paper => self.paper_cycles,
        }
    }

    /// Builds a fresh testbench of the given length.
    pub fn testbench(&self, cycles: u64) -> Box<dyn Testbench> {
        self.testbench_shard(cycles, 0)
    }

    /// Builds shard `shard` of this benchmark's workload: the same kind of
    /// stimulus with a shard-derived seed, so independent shards can fill
    /// the 64 lanes of a bit-parallel pack. Shard 0 is the canonical
    /// [`Benchmark::testbench`] stimulus.
    pub fn testbench_shard(&self, cycles: u64, shard: u64) -> Box<dyn Testbench> {
        match &self.workload {
            Workload::Random {
                fixed,
                random,
                seed,
            } => Box::new(RandomStream {
                cycles,
                fixed: fixed.clone(),
                random: random.clone(),
                rng: Xoshiro::new(shard_seed(*seed, shard)),
            }),
            Workload::Bitstream { seed, qscale } => {
                // Worst case one bit per cycle: synthesize blocks until the
                // stream covers the run.
                let seed = shard_seed(*seed, shard);
                let mut bits = Vec::new();
                let mut round = 0u64;
                while (bits.len() as u64) < cycles {
                    bits.extend(encode_frame(&synthetic_blocks(64, seed ^ round)));
                    round += 1;
                }
                Box::new(BitstreamFeeder::new(bits, *qscale, cycles))
            }
        }
    }

    /// Builds `n` independent workload shards (shards `0..n`), ready to
    /// occupy the lanes of a [`pe_sim::WideSimulator`] pack.
    pub fn testbench_shards(&self, cycles: u64, n: usize) -> Vec<Box<dyn Testbench>> {
        (0..n as u64)
            .map(|s| self.testbench_shard(cycles, s))
            .collect()
    }

    /// Builds the testbench at a named scale.
    pub fn testbench_at(&self, scale: Scale) -> Box<dyn Testbench> {
        self.testbench(self.cycles(scale))
    }
}

/// Derives a per-shard RNG seed; shard 0 keeps the canonical seed.
fn shard_seed(seed: u64, shard: u64) -> u64 {
    seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Builds the full seven-design suite of the paper's Figure 3, ordered as
/// in the figure (smallest to largest).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Bubble_Sort",
            design: crate::bubble::bubble_sort(64, 2005),
            workload: Workload::Random {
                fixed: Vec::new(),
                random: vec![("check_addr", 6)],
                seed: 11,
            },
            test_cycles: 1_000,
            paper_cycles: 25_000,
        },
        Benchmark {
            name: "HVPeakF",
            design: crate::peakf::hv_peak_filter(64),
            workload: Workload::Random {
                fixed: vec![("gain", 4)],
                random: vec![("pixel", 8)],
                seed: 12,
            },
            test_cycles: 1_000,
            paper_cycles: 30_000,
        },
        Benchmark {
            name: "DCT",
            design: crate::dct::dct8(),
            workload: Workload::Random {
                fixed: Vec::new(),
                random: vec![("sample", 8)],
                seed: 13,
            },
            test_cycles: 1_200,
            paper_cycles: 40_000,
        },
        Benchmark {
            name: "IDCT",
            design: crate::dct::idct8(),
            workload: Workload::Random {
                fixed: Vec::new(),
                random: vec![("sample", 12)],
                seed: 14,
            },
            test_cycles: 1_200,
            paper_cycles: 40_000,
        },
        Benchmark {
            name: "Ispq",
            design: crate::ispq::ispq(),
            workload: Workload::Random {
                fixed: vec![("qscale", 8)],
                random: vec![("level", 8), ("check_addr", 6)],
                seed: 15,
            },
            test_cycles: 1_500,
            paper_cycles: 50_000,
        },
        Benchmark {
            name: "Vld",
            design: crate::vld::vld(),
            workload: Workload::Bitstream {
                seed: 16,
                qscale: None,
            },
            test_cycles: 1_500,
            paper_cycles: 60_000,
        },
        Benchmark {
            name: "MPEG4",
            design: crate::mpeg4::mpeg4_decoder(),
            workload: Workload::Bitstream {
                seed: 17,
                qscale: Some(8),
            },
            test_cycles: 2_000,
            paper_cycles: 110_000,
        },
    ]
}

/// Finds a benchmark by its paper name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::stats::DesignStats;
    use pe_sim::run;

    #[test]
    fn suite_has_the_papers_designs_in_order() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "Bubble_Sort",
                "HVPeakF",
                "DCT",
                "IDCT",
                "Ispq",
                "Vld",
                "MPEG4"
            ]
        );
    }

    #[test]
    fn mpeg4_is_the_largest_design() {
        let suite = all_benchmarks();
        let sizes: Vec<(usize, &str)> = suite
            .iter()
            .map(|b| (DesignStats::of(&b.design).components, b.name))
            .collect();
        let mpeg4 = sizes.iter().find(|(_, n)| *n == "MPEG4").unwrap().0;
        for (size, name) in &sizes {
            if *name != "MPEG4" {
                assert!(mpeg4 > *size, "MPEG4 ({mpeg4}) ≤ {name} ({size})");
            }
        }
    }

    #[test]
    fn every_benchmark_runs_at_test_scale() {
        for b in all_benchmarks() {
            let mut sim = pe_sim::Simulator::new(&b.design).unwrap();
            let mut tb = b.testbench_at(Scale::Test);
            let ran = run(&mut sim, tb.as_mut());
            assert_eq!(ran, b.cycles(Scale::Test), "{}", b.name);
        }
    }

    #[test]
    fn paper_scale_is_longer_than_test_scale() {
        for b in all_benchmarks() {
            assert!(b.cycles(Scale::Paper) > b.cycles(Scale::Test), "{}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("DCT").is_some());
        assert!(benchmark("nope").is_none());
    }
}
