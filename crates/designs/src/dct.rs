//! DCT and IDCT: 8-point scaled-integer discrete cosine transforms.
//!
//! Both designs share one generator: an FSMD that loads 8 samples (one per
//! cycle), runs a list-scheduled dataflow graph of 64 constant
//! multiplications and an adder tree per output (bound onto a small number
//! of shared multipliers by the scheduler budget), and streams the 8
//! results out — then loops for the next block. This is exactly the
//! load/compute/store shape behavioral synthesis produces for
//! transform kernels.
//!
//! Arithmetic is Q8 fixed point (coefficients scaled by 256) in 24-bit
//! signed datapaths, which the value ranges can never overflow, so the
//! hardware matches the reference model exactly.

use pe_hls::dfg::{lower, schedule, Dfg, ResourceBudget};
use pe_hls::expr::Expr;
use pe_hls::fsmd::FsmdBuilder;
use pe_rtl::Design;
use pe_util::bits::to_unsigned;

/// The scaled DCT-II matrix: `C[k][n] = round(256 · c_k · cos((2n+1)kπ/16))`
/// with `c_0 = √(1/8)`, `c_k = √(2/8)`.
pub fn dct_matrix() -> [[i64; 8]; 8] {
    let mut m = [[0i64; 8]; 8];
    for (k, row) in m.iter_mut().enumerate() {
        let ck = if k == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            (2.0f64 / 8.0).sqrt()
        };
        for (n, cell) in row.iter_mut().enumerate() {
            let angle = (2.0 * n as f64 + 1.0) * k as f64 * std::f64::consts::PI / 16.0;
            *cell = (256.0 * ck * angle.cos()).round() as i64;
        }
    }
    m
}

/// Reference forward transform: `X[k] = (Σ C[k][n]·(x[n]−128)) >> 8`.
pub fn dct_reference(samples: &[i64; 8]) -> [i64; 8] {
    let c = dct_matrix();
    let mut out = [0i64; 8];
    for k in 0..8 {
        let mut acc = 0i64;
        for n in 0..8 {
            acc += c[k][n] * (samples[n] - 128);
        }
        out[k] = acc >> 8;
    }
    out
}

/// Reference inverse transform: `x[n] = clip(((Σ C[k][n]·X[k]) >> 8) + 128)`.
pub fn idct_reference(coeffs: &[i64; 8]) -> [i64; 8] {
    let c = dct_matrix();
    let mut out = [0i64; 8];
    for n in 0..8 {
        let mut acc = 0i64;
        for k in 0..8 {
            acc += c[k][n] * coeffs[k];
        }
        out[n] = ((acc >> 8) + 128).clamp(0, 255);
    }
    out
}

const W: u32 = 24;

/// Internal generator shared by [`dct8`] and [`idct8`].
///
/// `matrix[r][c]` multiplies loaded sample `c` into result `r`; samples
/// enter `in_width` bits wide, get `bias` subtracted (level shift), results
/// are shifted right by 8 and post-processed (`clip_bias`: add 128 and
/// clip to 0..=255).
fn transform_design(
    name: &str,
    matrix: [[i64; 8]; 8],
    in_width: u32,
    input_signed: bool,
    bias: i64,
    clip_bias: bool,
    budget: &ResourceBudget,
) -> Design {
    let mut f = FsmdBuilder::new(name);
    let sample = f.input("sample", in_width);
    let xs: Vec<_> = (0..8).map(|i| f.reg(&format!("x{i}"), W, 0)).collect();
    let outs: Vec<_> = (0..8).map(|i| f.reg(&format!("y{i}"), W, 0)).collect();
    let out_val = f.reg("out_val", 16, 0);
    let out_idx = f.reg("out_idx", 3, 0);
    let out_valid = f.reg("out_valid", 1, 0);

    // ── Load phase: one sample per cycle into x0..x7 ─────────────────────
    let loads: Vec<_> = (0..8).map(|i| f.state(&format!("load{i}"))).collect();
    for (i, &s) in loads.iter().enumerate() {
        // Level-shifted, extended sample (pixels are unsigned, transform
        // coefficients signed).
        let mut e = if input_signed {
            Expr::input(sample, in_width).sext(W)
        } else {
            Expr::input(sample, in_width).zext(W)
        };
        if bias != 0 {
            e = e.sub(Expr::konst(to_unsigned(bias, W), W));
        }
        f.set(s, xs[i], e);
        f.set(s, out_valid, Expr::konst(0, 1));
        if i + 1 < loads.len() {
            f.goto(s, loads[i + 1]);
        }
    }

    // ── Compute phase: the scheduled dataflow graph ──────────────────────
    let mut g = Dfg::new();
    let sources: Vec<_> = xs.iter().map(|&x| g.source(Expr::reg(x, W))).collect();
    let mut results = Vec::with_capacity(8);
    for row in &matrix {
        let mut terms = Vec::with_capacity(8);
        for (n, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cnode = g.source(Expr::konst(to_unsigned(c, W), W));
            terms.push(g.mul(sources[n], cnode, W));
        }
        // Balanced adder tree.
        let mut level = terms;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    g.add(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        results.push(g.sar_const(level[0], 8));
    }
    let sched = schedule(&g, budget);
    let lowered = lower(&mut f, &g, &sched, "t");
    f.goto(*loads.last().expect("8 loads"), lowered.entry);

    // Copy DFG results into the output registers (one extra state).
    let stage = f.state("stage");
    f.goto(lowered.exit, stage);
    for (i, &r) in results.iter().enumerate() {
        f.set(stage, outs[i], lowered.result(r));
    }

    // ── Emit phase: stream the 8 results ────────────────────────────────
    let emits: Vec<_> = (0..8).map(|i| f.state(&format!("emit{i}"))).collect();
    f.goto(stage, emits[0]);
    for (i, &s) in emits.iter().enumerate() {
        let y = Expr::reg(outs[i], W);
        let value = if clip_bias {
            let shifted = y.add(Expr::konst(128, W));
            let neg = shifted.clone().slt(Expr::konst(0, W));
            let big = Expr::konst(255, W).slt(shifted.clone());
            let hi = shifted.clone().select(big, Expr::konst(255, W));
            hi.select(neg, Expr::konst(0, W)).slice(0, 16)
        } else {
            y.slice(0, 16)
        };
        f.set(s, out_val, value);
        f.set(s, out_idx, Expr::konst(i as u64, 3));
        f.set(s, out_valid, Expr::konst(1, 1));
        let next = if i + 1 < 8 { emits[i + 1] } else { loads[0] };
        f.goto(s, next);
    }

    f.output("out_val", Expr::reg(out_val, 16));
    f.output("out_idx", Expr::reg(out_idx, 3));
    f.output("out_valid", Expr::reg(out_valid, 1));
    f.synthesize().expect("transform synthesizes")
}

/// The forward 8-point DCT benchmark design. Input port `sample` takes
/// 8-bit pixels; results stream on `out_val`/`out_idx`/`out_valid`.
pub fn dct8() -> Design {
    transform_design(
        "dct",
        dct_matrix(),
        8,
        false,
        128,
        false,
        &ResourceBudget {
            multipliers: 2,
            adders: 2,
        },
    )
}

/// The inverse 8-point DCT benchmark design. Input port `sample` takes
/// 12-bit signed coefficients; clipped 8-bit pixels stream out.
pub fn idct8() -> Design {
    let c = dct_matrix();
    let mut t = [[0i64; 8]; 8];
    for (k, row) in c.iter().enumerate() {
        for (n, &v) in row.iter().enumerate() {
            t[n][k] = v;
        }
    }
    transform_design(
        "idct",
        t,
        12,
        true,
        0,
        true,
        &ResourceBudget {
            multipliers: 2,
            adders: 2,
        },
    )
}

/// Drives one block through a transform design, returning the 8 streamed
/// results. Exposed for tests and the MPEG4 stimulus checks.
#[cfg(test)]
fn run_block(design: &Design, samples: &[u64; 8]) -> [i64; 8] {
    use pe_sim::Simulator;
    let mut sim = Simulator::new(design).unwrap();
    let mut fed = 0usize;
    let mut results = [0i64; 8];
    let mut got = 0usize;
    for _ in 0..400 {
        if fed < 8 {
            sim.set_input_by_name("sample", samples[fed]);
        }
        // Track the load phase by the FSM state: the first 8 cycles are
        // load states by construction.
        if fed < 8 {
            fed += 1;
        }
        sim.step();
        if sim.output("out_valid") == 1 {
            let idx = sim.output("out_idx") as usize;
            let val = sim.output("out_val");
            results[idx] = pe_util::bits::sign_extend(val, 16);
            got += 1;
            if got == 8 && idx == 7 {
                break;
            }
        }
    }
    assert_eq!(got, 8, "did not receive all results");
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_rtl::ComponentKind;

    #[test]
    fn matrix_rows_are_orthogonal_enough() {
        let c = dct_matrix();
        assert_eq!(c[0][0], 91); // 256/√8 ≈ 90.5 → 91 or 90
                                 // DC row is constant.
        assert!(c[0].iter().all(|&v| v == c[0][0]));
        // Row 4 alternates sign pairwise: + - - + + - - +
        assert!(c[4][0] > 0 && c[4][1] < 0 && c[4][2] < 0 && c[4][3] > 0);
    }

    #[test]
    fn dct_design_matches_reference() {
        let d = dct8();
        let blocks: [[u64; 8]; 3] = [
            [128; 8],
            [0, 255, 0, 255, 0, 255, 0, 255],
            [10, 30, 70, 120, 160, 200, 230, 250],
        ];
        for samples in blocks {
            let got = run_block(&d, &samples);
            let signed: [i64; 8] = samples.map(|s| s as i64);
            let expected = dct_reference(&signed);
            assert_eq!(got, expected, "samples {samples:?}");
        }
    }

    #[test]
    fn idct_design_matches_reference() {
        let d = idct8();
        let blocks: [[i64; 8]; 2] = [
            [362, 0, 0, 0, 0, 0, 0, 0], // DC-only → flat ≈ 128 + 362·91/256
            [100, -50, 30, -20, 10, -5, 3, -1],
        ];
        for coeffs in blocks {
            let as_u: [u64; 8] = coeffs.map(|c| pe_util::bits::to_unsigned(c, 12));
            let got = run_block(&d, &as_u);
            let expected = idct_reference(&coeffs);
            assert_eq!(got, expected, "coeffs {coeffs:?}");
        }
    }

    #[test]
    fn round_trip_recovers_samples_approximately() {
        let samples: [i64; 8] = [12, 80, 130, 200, 255, 180, 90, 40];
        let x = dct_reference(&samples);
        let back = idct_reference(&x);
        for (orig, rec) in samples.iter().zip(&back) {
            assert!((orig - rec).abs() <= 3, "round trip {samples:?} → {back:?}");
        }
    }

    #[test]
    fn multiplier_budget_bounds_physical_units() {
        let d = dct8();
        let muls = d
            .components()
            .iter()
            .filter(|c| matches!(c.kind(), ComponentKind::Mul))
            .count();
        assert!(muls <= 2, "expected ≤2 shared multipliers, got {muls}");
    }
}
