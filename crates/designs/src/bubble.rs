//! Bubble_Sort: the paper's sorting circuit.
//!
//! An FSMD that bubble-sorts a block RAM in place. The element count is a
//! build parameter so the benchmark harness can run the paper-scale
//! configuration while unit tests use a small instance. After sorting, the
//! design enters a `serve` state in which the memory's read port is handed
//! to the `check_addr` input for read-out.

use pe_hls::expr::Expr;
use pe_hls::fsmd::FsmdBuilder;
use pe_rtl::Design;
use pe_util::bits::clog2;
use pe_util::rng::Xoshiro;

/// Generates the unsorted initial contents (deterministic).
pub fn initial_data(words: u32, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro::new(seed ^ 0xB0BB1E);
    (0..words).map(|_| rng.bits(16)).collect()
}

/// Builds the sorter over `words` 16-bit elements (`words ≥ 2`).
///
/// Ports: input `check_addr`; outputs `done` (1) and `check_data` (16,
/// valid while `done` is 1).
///
/// # Panics
///
/// Panics if `words < 2`.
pub fn bubble_sort(words: u32, seed: u64) -> Design {
    assert!(words >= 2, "sorting needs at least 2 elements");
    let aw = clog2(words as u64).max(1);
    let cw = aw + 1; // counters need one spare bit for comparisons
    let mut f = FsmdBuilder::new("bubble_sort");
    let check_addr = f.input("check_addr", aw);
    let i = f.reg("i", cw, 0);
    let j = f.reg("j", cw, 0);
    let a = f.reg("a", 16, 0);
    let b = f.reg("b", 16, 0);
    let done = f.reg("done_r", 1, 0);
    let mem = f.mem("data", words, 16, Some(initial_data(words, seed)));

    let outer = f.state("outer");
    let read1 = f.state("read1");
    let read2 = f.state("read2");
    let decide = f.state("decide");
    let swap = f.state("swap");
    let advance = f.state("advance");
    let serve = f.state("serve");

    let n1 = Expr::konst((words - 1) as u64, cw);
    let jr = || Expr::reg(j, cw);
    let ir = || Expr::reg(i, cw);
    let addr = |e: Expr| e.slice(0, aw);

    // outer: new pass, or finish when i == words-1.
    f.set(outer, j, Expr::konst(0, cw));
    f.branch(outer, ir().eq(n1.clone()), serve, read1);

    // read1: issue read of data[j].
    f.mem_read(read1, mem, addr(jr()));
    f.goto(read1, read2);

    // read2: a <= data[j]; issue read of data[j+1].
    f.set(read2, a, Expr::mem_data(mem, 16));
    f.mem_read(read2, mem, addr(jr().add(Expr::konst(1, cw))));
    f.goto(read2, decide);

    // decide: b <= data[j+1]; branch on order.
    f.set(decide, b, Expr::mem_data(mem, 16));
    f.branch(
        decide,
        Expr::mem_data(mem, 16).lt(Expr::reg(a, 16)),
        swap,
        advance,
    );

    // swap: write the pair back exchanged (two writes over two states via
    // the single write port: write data[j] = b here, data[j+1] = a in
    // `advance`).
    f.mem_write(swap, mem, addr(jr()), Expr::reg(b, 16));
    f.goto(swap, advance);

    // advance: complete the swap when we came from `swap` — writing `a`
    // unconditionally is wrong after a non-swap path, so the write data is
    // selected: after `swap`, data[j+1] must become `a`; after `decide`
    // with no swap it must stay `b`. Writing `b` back is a no-op, so a
    // single mux handles both paths.
    let wrote_swap = Expr::reg(b, 16).lt(Expr::reg(a, 16));
    f.mem_write(
        advance,
        mem,
        addr(jr().add(Expr::konst(1, cw))),
        Expr::reg(b, 16).select(wrote_swap, Expr::reg(a, 16)),
    );
    f.set(advance, j, jr().add(Expr::konst(1, cw)));
    // Inner loop bound: j == words-2-i  → next outer iteration, bumping i.
    let inner_last = n1.clone().sub(ir()).sub(Expr::konst(1, cw));
    f.set(
        advance,
        i,
        ir().select(jr().eq(inner_last.clone()), ir().add(Expr::konst(1, cw))),
    );
    f.branch(advance, jr().eq(inner_last), outer, read1);

    f.halt(serve);
    f.set(serve, done, Expr::konst(1, 1));
    f.mem_read(serve, mem, Expr::input(check_addr, aw));

    f.output("done", Expr::reg(done, 1));
    f.output("check_data", Expr::mem_data(mem, 16));
    f.output("pass", ir());

    f.synthesize().expect("bubble_sort synthesizes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    #[test]
    fn sorts_small_memory() {
        let words = 8;
        let d = bubble_sort(words, 7);
        let mut sim = Simulator::new(&d).unwrap();
        // Generous cycle budget: O(n² · states-per-compare).
        for _ in 0..2000 {
            if sim.output("done") == 1 {
                break;
            }
            sim.step();
        }
        assert_eq!(sim.output("done"), 1, "sort did not finish");
        // Read out and check ascending order against a reference sort.
        let mut expected = initial_data(words, 7);
        expected.sort_unstable();
        let mut got = Vec::new();
        for addr in 0..words as u64 {
            sim.set_input_by_name("check_addr", addr);
            sim.step(); // serve state reads synchronously
            got.push(sim.output("check_data"));
        }
        assert_eq!(got, expected);
    }
}
