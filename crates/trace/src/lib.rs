//! `pe-trace` — the workspace observability layer.
//!
//! The paper's power strobe generator exists so the aggregator can be
//! *sampled mid-run*: the product of an emulation run is a power
//! **waveform**, not just an end-of-run total. This crate makes that
//! waveform — and everything else worth watching during a run — a
//! first-class artifact:
//!
//! * [`waveform`] — strobe-aligned power samples (per clock domain and,
//!   optionally, per component) captured from any engine that can read
//!   the instrumented accumulators, with ring-buffer and decimation
//!   capture modes so arbitrarily long runs stay bounded. Waveforms
//!   serialize to a stable text format with an FNV-1a-128 digest and
//!   diff sample-by-sample, naming the first diverging sample.
//! * [`metrics`] — a thread-safe registry of counters, gauges, and
//!   log-scale histograms. Engine crates expose cheap counters (cycles
//!   settled, gate toggles); harness sinks and benches register them
//!   here and render one unified table or JSON document.
//! * [`profile`] — scoped wall-clock timers ([`Profiler::scope`])
//!   around flow stages and jobs, emitted as machine-readable JSONL
//!   plus a human summary table.
//!
//! The crate depends only on `pe-util` (dependency policy §6 of
//! DESIGN.md): engines feed raw accumulator readings *into* the
//! recorder, so `pe-trace` sits below every engine crate and all of
//! them can register metrics without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod waveform;

pub use metrics::{Counter, Gauge, Histogram, MetricValue, Registry};
pub use profile::{Profiler, SpanRecord};
pub use waveform::{
    CaptureMode, Channel, ChannelKind, Divergence, PowerSample, PowerWaveform, WaveformError,
    WaveformRecorder,
};
