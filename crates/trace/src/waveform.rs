//! Strobe-aligned power-waveform capture.
//!
//! The instrumented design's strobe generator gates accumulator updates,
//! so the `power_total` ports hold a *cumulative* raw energy reading at
//! every strobe boundary. A [`WaveformRecorder`] samples those raw
//! readings (per clock domain and, optionally, per component model)
//! into a [`PowerWaveform`] — the paper's mid-run power trace as a
//! first-class artifact.
//!
//! Samples store the raw `u64` accumulator values, not scaled floats,
//! so the waveform round-trips losslessly through its text format and
//! the energy integral can be made **bit-exact** against the engine's
//! cumulative readback: [`PowerWaveform::integral_fj`] replays the
//! exact `f64` operation order of `read_energy_fj` (per-port raw
//! readings summed in port order, then one multiply by `lsb` and one
//! by the strobe period).
//!
//! Long runs stay bounded via [`CaptureMode`]: `Ring` keeps a sliding
//! window of the most recent samples (a window, so the full-run
//! integral is unavailable), while `Decimate` keeps a bounded,
//! evenly-strided summary of the whole run by doubling its stride each
//! time the buffer fills — first and last samples are always retained,
//! so the integral invariant survives decimation.

use pe_util::hash::Fnv128;
use std::fmt;

/// What a waveform channel measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// A per-clock-domain `power_total` accumulator. Domain channels
    /// are disjoint, so they sum to the design's total energy and are
    /// the channels [`PowerWaveform::integral_fj`] integrates.
    Domain,
    /// A per-component model accumulator (diagnostic; overlaps domain
    /// totals, so excluded from the integral).
    Component,
}

impl ChannelKind {
    fn as_str(self) -> &'static str {
        match self {
            ChannelKind::Domain => "domain",
            ChannelKind::Component => "component",
        }
    }
}

/// One captured channel: a named accumulator port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Port or component name the raw readings come from.
    pub name: String,
    /// Whether the channel is a domain total or a component diagnostic.
    pub kind: ChannelKind,
}

impl Channel {
    /// A domain-total channel.
    pub fn domain(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ChannelKind::Domain,
        }
    }

    /// A per-component diagnostic channel.
    pub fn component(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ChannelKind::Component,
        }
    }
}

/// One strobe-aligned sample: the cycle it was taken at and the raw
/// cumulative accumulator reading of every channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerSample {
    /// Simulation cycle the sample was taken at.
    pub cycle: u64,
    /// Raw cumulative accumulator value per channel, in channel order.
    pub raw: Vec<u64>,
}

/// Retention policy for captured samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Keep every sample.
    Unbounded,
    /// Keep only the most recent `N` samples (a sliding window; the
    /// full-run integral is not available in this mode).
    Ring(usize),
    /// Keep at most `N` samples spanning the whole run: when the buffer
    /// fills, every other retained sample is dropped and the accept
    /// stride doubles. The first sample is always retained.
    Decimate(usize),
}

/// Errors from recording or parsing waveforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveformError {
    /// A sample's channel count did not match the recorder's channels.
    ChannelCount {
        /// Channels the recorder was built with.
        expected: usize,
        /// Channels the offending sample carried.
        got: usize,
    },
    /// The text form could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::ChannelCount { expected, got } => {
                write!(f, "sample has {got} channel(s), recorder has {expected}")
            }
            WaveformError::Parse { line, message } => {
                write!(f, "waveform parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for WaveformError {}

/// Where and how two waveforms first differ.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The channel lists differ (count, name, or kind).
    Channels {
        /// Channel count of the left waveform.
        left: usize,
        /// Channel count of the right waveform.
        right: usize,
    },
    /// One waveform has more samples; every shared sample matches.
    SampleCount {
        /// Sample count of the left waveform.
        left: usize,
        /// Sample count of the right waveform.
        right: usize,
    },
    /// Sample `index` was taken at different cycles.
    Cycle {
        /// Index of the first diverging sample.
        index: usize,
        /// Cycle of the left waveform's sample.
        left: u64,
        /// Cycle of the right waveform's sample.
        right: u64,
    },
    /// Sample `index` differs in one channel's raw value.
    Value {
        /// Index of the first diverging sample.
        index: usize,
        /// Cycle both samples were taken at.
        cycle: u64,
        /// Name of the first diverging channel.
        channel: String,
        /// Left raw reading.
        left: u64,
        /// Right raw reading.
        right: u64,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Channels { left, right } => {
                write!(f, "channel lists differ ({left} vs {right} channels)")
            }
            Divergence::SampleCount { left, right } => {
                write!(
                    f,
                    "sample counts differ ({left} vs {right}); shared prefix matches"
                )
            }
            Divergence::Cycle { index, left, right } => {
                write!(
                    f,
                    "first divergence at sample {index}: cycle {left} vs {right}"
                )
            }
            Divergence::Value {
                index,
                cycle,
                channel,
                left,
                right,
            } => {
                write!(
                    f,
                    "first divergence at sample {index} (cycle {cycle}), \
                     channel `{channel}`: {left} vs {right}"
                )
            }
        }
    }
}

/// A captured power waveform: channels, scaling, and samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerWaveform {
    /// Design the waveform was captured from.
    pub design: String,
    /// Captured channels, in raw-reading order.
    pub channels: Vec<Channel>,
    /// Energy per accumulator LSB in femtojoules (the instrumented
    /// format's `lsb()`).
    pub lsb_fj: f64,
    /// Strobe period the design was instrumented with, in cycles.
    pub strobe_period: u32,
    /// Sampling period in strobes (1 = every strobe boundary).
    pub sample_period: u32,
    /// The samples, in capture order.
    pub samples: Vec<PowerSample>,
}

impl PowerWaveform {
    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The waveform's energy integral in femtojoules.
    ///
    /// Because samples are cumulative raw readings, the integral is the
    /// per-channel delta between the last and first retained sample,
    /// summed over **domain** channels in channel order and scaled
    /// exactly like `InstrumentedDesign::read_energy_fj`:
    /// `sum(raw as f64) * lsb * strobe_period as f64`. When the first
    /// sample reads a freshly-reset design (all-zero accumulators),
    /// this equals the engine's cumulative readback **bit-exactly**.
    ///
    /// Not meaningful for `Ring` captures, which drop the run's start.
    pub fn integral_fj(&self) -> f64 {
        let (first, last) = match (self.samples.first(), self.samples.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return 0.0,
        };
        let mut raw = 0.0f64;
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.kind == ChannelKind::Domain {
                // Recorder-built waveforms are monotone per channel, but
                // `from_text` accepts arbitrary input: wrap (the u64
                // two's-complement delta, matching release semantics)
                // instead of panicking in debug builds, and treat a
                // short row as zero contribution.
                let (f, l) = match (first.raw.get(i), last.raw.get(i)) {
                    (Some(f), Some(l)) => (*f, *l),
                    _ => continue,
                };
                raw += l.wrapping_sub(f) as f64;
            }
        }
        raw * self.lsb_fj * self.strobe_period as f64
    }

    /// Mean power in femtojoules per cycle over the retained window
    /// (domain channels), or 0 for waveforms with fewer than 2 samples.
    pub fn mean_power_fj_per_cycle(&self) -> f64 {
        let (first, last) = match (self.samples.first(), self.samples.last()) {
            (Some(f), Some(l)) if l.cycle > f.cycle => (f, l),
            _ => return 0.0,
        };
        self.integral_fj() / (last.cycle - first.cycle) as f64
    }

    /// FNV-1a-128 digest over the retained samples (cycle and raw
    /// values, little-endian), as 32 hex characters.
    pub fn digest(&self) -> String {
        let mut h = Fnv128::new();
        self.update_digest(&mut h, 0, self.samples.len());
        h.hex()
    }

    /// Digests the half-open sample range `[from, to)` into `h`. The
    /// range is clamped to the retained samples (an inverted or
    /// out-of-bounds range digests nothing rather than panicking).
    pub fn update_digest(&self, h: &mut Fnv128, from: usize, to: usize) {
        let to = to.min(self.samples.len());
        let from = from.min(to);
        for sample in &self.samples[from..to] {
            h.update(&sample.cycle.to_le_bytes());
            for &raw in &sample.raw {
                h.update(&raw.to_le_bytes());
            }
        }
    }

    /// The first point where `self` and `other` differ, or `None` when
    /// they match sample-for-sample.
    pub fn first_divergence(&self, other: &PowerWaveform) -> Option<Divergence> {
        if self.channels != other.channels {
            return Some(Divergence::Channels {
                left: self.channels.len(),
                right: other.channels.len(),
            });
        }
        for (index, (a, b)) in self.samples.iter().zip(&other.samples).enumerate() {
            if a.cycle != b.cycle {
                return Some(Divergence::Cycle {
                    index,
                    left: a.cycle,
                    right: b.cycle,
                });
            }
            for (c, (&l, &r)) in a.raw.iter().zip(&b.raw).enumerate() {
                if l != r {
                    return Some(Divergence::Value {
                        index,
                        cycle: a.cycle,
                        channel: self.channels[c].name.clone(),
                        left: l,
                        right: r,
                    });
                }
            }
        }
        if self.samples.len() != other.samples.len() {
            return Some(Divergence::SampleCount {
                left: self.samples.len(),
                right: other.samples.len(),
            });
        }
        None
    }

    /// Serializes to the stable `pe-waveform v1` text format. The LSB
    /// scale is stored as raw `f64` bits so round-trips are lossless.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "pe-waveform v1");
        let _ = writeln!(out, "design {}", self.design);
        let _ = writeln!(out, "lsb_fj_bits {:016x}", self.lsb_fj.to_bits());
        let _ = writeln!(out, "strobe_period {}", self.strobe_period);
        let _ = writeln!(out, "sample_period {}", self.sample_period);
        for ch in &self.channels {
            let _ = writeln!(out, "channel {} {}", ch.kind.as_str(), ch.name);
        }
        let _ = writeln!(out, "digest_fnv128 {}", self.digest());
        let _ = writeln!(out, "samples {}", self.samples.len());
        for s in &self.samples {
            let _ = write!(out, "{}", s.cycle);
            for &raw in &s.raw {
                let _ = write!(out, " {raw}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the `pe-waveform v1` text format.
    pub fn from_text(text: &str) -> Result<PowerWaveform, WaveformError> {
        let err = |line: usize, message: &str| WaveformError::Parse {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (n, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
        if header.trim() != "pe-waveform v1" {
            return Err(err(n + 1, "expected `pe-waveform v1` header"));
        }
        let mut design = String::new();
        let mut lsb_fj = 0.0f64;
        let mut strobe_period = 1u32;
        let mut sample_period = 1u32;
        let mut channels = Vec::new();
        let mut stated_digest = None;
        let mut samples = Vec::new();
        let mut expected_samples = None;
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = i + 1;
            if expected_samples.is_some() {
                let mut fields = line.split_ascii_whitespace();
                let cycle = fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| err(lineno, "bad sample cycle"))?;
                let raw: Vec<u64> = fields
                    .map(|f| f.parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(lineno, "bad raw value"))?;
                if raw.len() != channels.len() {
                    return Err(WaveformError::Parse {
                        line: lineno,
                        message: format!(
                            "sample has {} value(s), expected {}",
                            raw.len(),
                            channels.len()
                        ),
                    });
                }
                samples.push(PowerSample { cycle, raw });
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "design" => design = rest.to_string(),
                "lsb_fj_bits" => {
                    let bits = u64::from_str_radix(rest.trim(), 16)
                        .map_err(|_| err(lineno, "bad lsb_fj_bits"))?;
                    lsb_fj = f64::from_bits(bits);
                }
                "strobe_period" => {
                    strobe_period = rest
                        .trim()
                        .parse()
                        .map_err(|_| err(lineno, "bad strobe_period"))?;
                }
                "sample_period" => {
                    sample_period = rest
                        .trim()
                        .parse()
                        .map_err(|_| err(lineno, "bad sample_period"))?;
                }
                "channel" => {
                    let (kind, name) = rest
                        .split_once(' ')
                        .ok_or_else(|| err(lineno, "channel needs kind and name"))?;
                    let kind = match kind {
                        "domain" => ChannelKind::Domain,
                        "component" => ChannelKind::Component,
                        _ => return Err(err(lineno, "unknown channel kind")),
                    };
                    channels.push(Channel {
                        name: name.to_string(),
                        kind,
                    });
                }
                "digest_fnv128" => stated_digest = Some(rest.trim().to_string()),
                "samples" => {
                    expected_samples = Some(
                        rest.trim()
                            .parse::<usize>()
                            .map_err(|_| err(lineno, "bad sample count"))?,
                    );
                }
                _ => return Err(err(lineno, "unknown field")),
            }
        }
        let expected = expected_samples.ok_or_else(|| err(1, "missing `samples` field"))?;
        if samples.len() != expected {
            return Err(WaveformError::Parse {
                line: 1,
                message: format!("expected {expected} sample(s), found {}", samples.len()),
            });
        }
        let wf = PowerWaveform {
            design,
            channels,
            lsb_fj,
            strobe_period,
            sample_period,
            samples,
        };
        if let Some(stated) = stated_digest {
            let actual = wf.digest();
            if stated != actual {
                return Err(WaveformError::Parse {
                    line: 1,
                    message: format!("digest mismatch: stated {stated}, samples hash to {actual}"),
                });
            }
        }
        Ok(wf)
    }
}

/// Captures strobe-aligned samples into a [`PowerWaveform`] under a
/// retention policy.
///
/// The recorder is engine-agnostic: callers step their simulator to a
/// strobe boundary, read the raw accumulator values (for example via
/// `InstrumentedDesign::try_read_raw_totals`), and [`offer`] them. The
/// recorder applies source sampling (`sample_period`, in strobes) and
/// the [`CaptureMode`]; [`finish`] appends the final offered sample if
/// it was decimated away, so the integral invariant always covers the
/// whole run.
///
/// [`offer`]: WaveformRecorder::offer
/// [`finish`]: WaveformRecorder::finish
#[derive(Debug, Clone)]
pub struct WaveformRecorder {
    waveform: PowerWaveform,
    mode: CaptureMode,
    /// Samples offered so far (strobe boundaries seen).
    offered: u64,
    /// Among source-accepted samples, keep every `stride`-th (Decimate).
    stride: u64,
    /// Source-accepted samples seen (input index for `stride`).
    accepted: u64,
    /// The most recently offered sample, for the final flush.
    last_offered: Option<PowerSample>,
}

impl WaveformRecorder {
    /// A recorder for `design` capturing `channels`, scaled by the
    /// instrumented format's `lsb_fj` and `strobe_period`.
    pub fn new(
        design: impl Into<String>,
        channels: Vec<Channel>,
        lsb_fj: f64,
        strobe_period: u32,
        sample_period: u32,
        mode: CaptureMode,
    ) -> Self {
        Self {
            waveform: PowerWaveform {
                design: design.into(),
                channels,
                lsb_fj,
                strobe_period,
                sample_period: sample_period.max(1),
                samples: Vec::new(),
            },
            mode,
            offered: 0,
            stride: 1,
            accepted: 0,
            last_offered: None,
        }
    }

    /// Offers one strobe-boundary sample. Whether it is retained
    /// depends on the sample period and capture mode; the final offered
    /// sample is always recoverable via [`WaveformRecorder::finish`].
    pub fn offer(&mut self, cycle: u64, raw: &[u64]) -> Result<(), WaveformError> {
        if raw.len() != self.waveform.channels.len() {
            return Err(WaveformError::ChannelCount {
                expected: self.waveform.channels.len(),
                got: raw.len(),
            });
        }
        let sample = PowerSample {
            cycle,
            raw: raw.to_vec(),
        };
        let offered = self.offered;
        self.offered += 1;
        self.last_offered = Some(sample.clone());
        if !offered.is_multiple_of(u64::from(self.waveform.sample_period)) {
            return Ok(());
        }
        match self.mode {
            CaptureMode::Unbounded => self.waveform.samples.push(sample),
            CaptureMode::Ring(cap) => {
                let cap = cap.max(1);
                if self.waveform.samples.len() == cap {
                    self.waveform.samples.remove(0);
                }
                self.waveform.samples.push(sample);
            }
            CaptureMode::Decimate(cap) => {
                let cap = cap.max(2);
                let accepted = self.accepted;
                self.accepted += 1;
                if !accepted.is_multiple_of(self.stride) {
                    return Ok(());
                }
                if self.waveform.samples.len() == cap {
                    // Halve the retained set and double the stride; the
                    // first sample (index 0) is always kept.
                    let mut keep = 0usize;
                    self.waveform.samples.retain(|_| {
                        let k = keep.is_multiple_of(2);
                        keep += 1;
                        k
                    });
                    self.stride *= 2;
                    if !accepted.is_multiple_of(self.stride) {
                        return Ok(());
                    }
                }
                self.waveform.samples.push(sample);
            }
        }
        Ok(())
    }

    /// Samples offered so far (including skipped boundaries).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// True when the next offer would pass the source sample filter.
    /// Reading the accumulator ports can dominate tracing cost, so
    /// callers may skip the readback entirely when this is false —
    /// provided they account for the boundary with
    /// [`WaveformRecorder::skip`] and offer the run's final reading
    /// explicitly (a skipped boundary leaves nothing for
    /// [`WaveformRecorder::finish`] to flush).
    pub fn wants_next(&self) -> bool {
        self.offered
            .is_multiple_of(u64::from(self.waveform.sample_period))
    }

    /// Accounts for a strobe boundary whose readback the caller skipped
    /// because [`WaveformRecorder::wants_next`] was false.
    pub fn skip(&mut self) {
        self.offered += 1;
    }

    /// Finishes the capture: if the most recently offered sample was
    /// decimated away, appends it (so `Unbounded` and `Decimate`
    /// waveforms always end at the run's final reading), then returns
    /// the waveform.
    pub fn finish(mut self) -> PowerWaveform {
        if let Some(last) = self.last_offered.take() {
            if self.waveform.samples.last() != Some(&last) {
                self.waveform.samples.push(last);
            }
        }
        self.waveform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(mode: CaptureMode) -> WaveformRecorder {
        WaveformRecorder::new(
            "test",
            vec![Channel::domain("clk_power_total")],
            0.5,
            2,
            1,
            mode,
        )
    }

    #[test]
    fn unbounded_keeps_everything_and_integrates() {
        let mut rec = recorder(CaptureMode::Unbounded);
        for i in 0..10u64 {
            rec.offer(i * 2, &[i * i]).unwrap();
        }
        let wf = rec.finish();
        assert_eq!(wf.len(), 10);
        // (81 - 0) * lsb(0.5) * strobe_period(2).
        assert_eq!(wf.integral_fj(), 81.0);
        assert_eq!(wf.mean_power_fj_per_cycle(), 81.0 / 18.0);
    }

    #[test]
    fn component_channels_are_excluded_from_the_integral() {
        let mut rec = WaveformRecorder::new(
            "test",
            vec![Channel::domain("clk"), Channel::component("alu")],
            1.0,
            1,
            1,
            CaptureMode::Unbounded,
        );
        rec.offer(0, &[0, 0]).unwrap();
        rec.offer(4, &[10, 7]).unwrap();
        assert_eq!(rec.finish().integral_fj(), 10.0);
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let mut rec = recorder(CaptureMode::Ring(4));
        for i in 0..10u64 {
            rec.offer(i, &[i]).unwrap();
        }
        let wf = rec.finish();
        let cycles: Vec<u64> = wf.samples.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn decimation_is_bounded_keeps_endpoints_and_preserves_integral() {
        let mut rec = recorder(CaptureMode::Decimate(8));
        for i in 0..1000u64 {
            rec.offer(i, &[3 * i]).unwrap();
        }
        let wf = rec.finish();
        assert!(wf.len() <= 9, "decimated to {} samples", wf.len());
        assert_eq!(wf.samples.first().unwrap().cycle, 0);
        assert_eq!(wf.samples.last().unwrap().cycle, 999);
        // Integral only needs the endpoints, so decimation preserves it:
        // (2997 - 0) * 0.5 * 2.
        assert_eq!(wf.integral_fj(), 2997.0);
    }

    #[test]
    fn sample_period_decimates_at_the_source() {
        let mut rec = WaveformRecorder::new(
            "test",
            vec![Channel::domain("clk")],
            1.0,
            1,
            4,
            CaptureMode::Unbounded,
        );
        for i in 0..10u64 {
            rec.offer(i, &[i]).unwrap();
        }
        let wf = rec.finish();
        // Strobes 0, 4, 8 pass the source filter; 9 is the final flush.
        let cycles: Vec<u64> = wf.samples.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 4, 8, 9]);
    }

    #[test]
    fn skipped_boundaries_keep_the_source_filter_aligned() {
        let mut rec = WaveformRecorder::new(
            "test",
            vec![Channel::domain("clk")],
            1.0,
            1,
            4,
            CaptureMode::Unbounded,
        );
        // A caller that reads the ports only when the recorder wants
        // them must retain the same samples as one that offers every
        // boundary (plus the explicit final reading).
        for i in 0..10u64 {
            if rec.wants_next() {
                rec.offer(i, &[i]).unwrap();
            } else {
                rec.skip();
            }
        }
        rec.offer(10, &[10]).unwrap();
        let wf = rec.finish();
        let cycles: Vec<u64> = wf.samples.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 4, 8, 10]);
    }

    #[test]
    fn channel_count_mismatch_is_an_error() {
        let mut rec = recorder(CaptureMode::Unbounded);
        let err = rec.offer(0, &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            WaveformError::ChannelCount {
                expected: 1,
                got: 2
            }
        );
        assert!(err.to_string().contains("2 channel(s)"));
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let mut rec = WaveformRecorder::new(
            "DCT",
            vec![Channel::domain("clk"), Channel::component("mult")],
            1.25e-3,
            4,
            2,
            CaptureMode::Unbounded,
        );
        for i in 0..7u64 {
            rec.offer(i * 4, &[i * 100, i * 30]).unwrap();
        }
        let wf = rec.finish();
        let text = wf.to_text();
        let parsed = PowerWaveform::from_text(&text).unwrap();
        assert_eq!(parsed, wf);
        assert_eq!(parsed.digest(), wf.digest());
        assert_eq!(parsed.integral_fj().to_bits(), wf.integral_fj().to_bits());
    }

    #[test]
    fn parser_rejects_corruption() {
        let mut rec = recorder(CaptureMode::Unbounded);
        rec.offer(0, &[0]).unwrap();
        rec.offer(2, &[5]).unwrap();
        let text = rec.finish().to_text();
        // Flip a sample value: the stated digest no longer matches.
        let bad = text.replace("2 5", "2 6");
        let err = PowerWaveform::from_text(&bad).unwrap_err();
        assert!(err.to_string().contains("digest mismatch"), "{err}");
        // Truncate the header entirely.
        assert!(PowerWaveform::from_text("").is_err());
        assert!(PowerWaveform::from_text("nonsense").is_err());
    }

    #[test]
    fn first_divergence_names_sample_and_channel() {
        let mut a = recorder(CaptureMode::Unbounded);
        let mut b = recorder(CaptureMode::Unbounded);
        for i in 0..5u64 {
            a.offer(i, &[i * 10]).unwrap();
            b.offer(i, &[if i == 3 { 31 } else { i * 10 }]).unwrap();
        }
        let (a, b) = (a.finish(), b.finish());
        match a.first_divergence(&b) {
            Some(Divergence::Value {
                index,
                cycle,
                ref channel,
                left,
                right,
            }) => {
                assert_eq!((index, cycle, left, right), (3, 3, 30, 31));
                assert_eq!(channel, "clk_power_total");
            }
            other => panic!("unexpected divergence: {other:?}"),
        }
        assert_eq!(a.first_divergence(&a.clone()), None);
        let msg = a.first_divergence(&b).unwrap().to_string();
        assert!(msg.contains("sample 3"), "{msg}");
    }

    #[test]
    fn shorter_prefix_reports_sample_count() {
        let mut a = recorder(CaptureMode::Unbounded);
        let mut b = recorder(CaptureMode::Unbounded);
        for i in 0..4u64 {
            a.offer(i, &[i]).unwrap();
            if i < 3 {
                b.offer(i, &[i]).unwrap();
            }
        }
        let d = a.finish().first_divergence(&b.finish());
        assert_eq!(d, Some(Divergence::SampleCount { left: 4, right: 3 }));
    }
}
