//! A thread-safe metrics registry: counters, gauges, and log-scale
//! histograms.
//!
//! Handles are cheap `Arc`-backed clones, so a crate can register a
//! metric once and bump it from worker threads without holding the
//! registry lock; reads happen only at snapshot time. Everything is
//! deterministic to render: snapshots are sorted by metric name.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits, so updates
/// are lock-free).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log-scale histogram buckets: bucket `i` counts values `v`
/// with `floor(log2(v)) == i - 1` (bucket 0 counts zeros), so the full
/// `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-scale (power-of-two bucket) histogram of `u64` observations.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Non-empty buckets as `(bucket index, count)`, ascending. Bucket 0
    /// holds zeros; bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
    pub fn buckets(&self) -> Vec<(usize, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// One registered metric, by kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading: `(count, sum, max)`.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Largest observation.
        max: u64,
    },
}

/// The metrics registry. Cloning shares the underlying store, so one
/// registry can be handed to the harness sink, the flow profiler, and
/// every engine adapter of a run.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Gets or creates the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A sorted point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.metrics.lock().expect("registry poisoned");
        m.iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                    },
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Renders the snapshot as an aligned human-readable table.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("metrics:\n");
        for (name, value) in &snap {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "  {name:<40} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "  {name:<40} {v:.3}");
                }
                MetricValue::Histogram { count, sum, max } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        *sum as f64 / *count as f64
                    };
                    let _ = writeln!(out, "  {name:<40} count={count} mean={mean:.1} max={max}");
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object (one key per metric;
    /// histograms become `{"count":…,"sum":…,"max":…}` objects).
    pub fn render_json(&self, indent: &str) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{");
        for (i, (name, value)) in snap.iter().enumerate() {
            let _ = write!(out, "\n{indent}  \"{}\": ", json_escape(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{}", json_f64(*v));
                }
                MetricValue::Histogram { count, sum, max } => {
                    let _ = write!(
                        out,
                        "{{\"count\": {count}, \"sum\": {sum}, \"max\": {max}}}"
                    );
                }
            }
            if i + 1 < snap.len() {
                out.push(',');
            }
        }
        let _ = write!(out, "\n{indent}}}");
        out
    }
}

/// Escapes a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an `f64` as a JSON number (finite values only; non-finite
/// values render as 0 to keep the document valid).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("jobs_finished");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // A second lookup shares the same underlying cell.
        assert_eq!(reg.counter("jobs_finished").get(), 4);

        let g = reg.gauge("lane_occupancy");
        g.set(0.75);
        assert!((reg.gauge("lane_occupancy").get() - 0.75).abs() < 1e-12);

        let h = reg.histogram("job_wall_us");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // Log-scale buckets: 0 → bucket 0, 1 → 1, 2..3 → 2, 1000 → 10.
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn snapshot_is_sorted_and_render_is_stable() {
        let reg = Registry::new();
        reg.counter("z_last").inc();
        reg.gauge("a_first").set(1.0);
        reg.histogram("m_mid").observe(7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_first", "m_mid", "z_last"]);
        let text = reg.render();
        assert!(text.contains("a_first"));
        assert!(text.contains("count=1 mean=7.0 max=7"));
        let json = reg.render_json("  ");
        assert!(json.contains("\"z_last\": 1"));
        assert!(json.contains("\"m_mid\": {\"count\": 1, \"sum\": 7, \"max\": 7}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn registry_clones_share_the_store() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("shared").add(2);
        assert_eq!(reg.counter("shared").get(), 2);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let reg = Registry::new();
        let c = reg.counter("contended");
        let h = reg.histogram("contended_h");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("x");
        reg.counter("x");
    }
}
