//! Scoped wall-clock profiling with JSONL export.
//!
//! A [`Profiler`] hands out RAII [`Scope`] guards: entering a flow stage
//! or a job opens a scope, dropping the guard records one
//! [`SpanRecord`]. Spans carry the wall-clock offset from profiler
//! creation, so a run's JSONL stream reconstructs the timeline without
//! any global clock. The profiler is `Sync` — harness worker threads
//! record into one shared instance.

use crate::metrics::{json_escape, json_f64};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed profiling span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, usually a flow stage (`instrument`, `map`, …).
    pub name: String,
    /// Free-form label, usually the design name.
    pub label: String,
    /// Offset of the span start from profiler creation.
    pub start: Duration,
    /// Wall-clock spent inside the span.
    pub wall: Duration,
}

/// Collects [`SpanRecord`]s from scoped timers.
#[derive(Debug)]
pub struct Profiler {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// An empty profiler; spans are timestamped relative to this call.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Opens a scope; the span is recorded when the guard drops.
    pub fn scope(&self, name: &str, label: &str) -> Scope<'_> {
        Scope {
            profiler: self,
            name: name.to_string(),
            label: label.to_string(),
            start: Instant::now(),
        }
    }

    /// Times `f` under a scope and returns its result.
    pub fn time<T>(&self, name: &str, label: &str, f: impl FnOnce() -> T) -> T {
        let _scope = self.scope(name, label);
        f()
    }

    /// Records an externally measured span.
    pub fn record(&self, name: &str, label: &str, start: Duration, wall: Duration) {
        self.spans
            .lock()
            .expect("profiler poisoned")
            .push(SpanRecord {
                name: name.to_string(),
                label: label.to_string(),
                start,
                wall,
            });
    }

    /// A snapshot of every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("profiler poisoned").clone()
    }

    /// Per-name aggregates `(name, spans, total wall)`, sorted by name.
    pub fn totals(&self) -> Vec<(String, usize, Duration)> {
        let mut agg: std::collections::BTreeMap<String, (usize, Duration)> = Default::default();
        for span in self.spans.lock().expect("profiler poisoned").iter() {
            let e = agg.entry(span.name.clone()).or_default();
            e.0 += 1;
            e.1 += span.wall;
        }
        agg.into_iter().map(|(n, (c, w))| (n, c, w)).collect()
    }

    /// Renders each span as one JSON line:
    /// `{"span":"instrument","label":"DCT","start_ms":1.0,"wall_ms":2.5}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.spans.lock().expect("profiler poisoned").iter() {
            let _ = writeln!(
                out,
                "{{\"span\": \"{}\", \"label\": \"{}\", \"start_ms\": {}, \"wall_ms\": {}}}",
                json_escape(&s.name),
                json_escape(&s.label),
                json_f64(s.start.as_secs_f64() * 1e3),
                json_f64(s.wall.as_secs_f64() * 1e3),
            );
        }
        out
    }

    /// Renders the per-stage aggregate as a human summary table.
    pub fn render(&self) -> String {
        let totals = self.totals();
        let mut out = String::from("profile (wall-clock inside scopes):\n");
        for (name, count, wall) in &totals {
            let _ = writeln!(
                out,
                "  {:<20} {:>4} span(s) {:>10.3}s",
                name,
                count,
                wall.as_secs_f64()
            );
        }
        out
    }

    /// Renders the per-stage aggregate as a JSON object keyed by span
    /// name: `{"instrument": {"spans": 7, "wall_seconds": 0.12}, …}`.
    pub fn render_json(&self, indent: &str) -> String {
        let totals = self.totals();
        let mut out = String::from("{");
        for (i, (name, count, wall)) in totals.iter().enumerate() {
            let _ = write!(
                out,
                "\n{indent}  \"{}\": {{\"spans\": {count}, \"wall_seconds\": {}}}",
                json_escape(name),
                json_f64(wall.as_secs_f64())
            );
            if i + 1 < totals.len() {
                out.push(',');
            }
        }
        let _ = write!(out, "\n{indent}}}");
        out
    }

    fn close(&self, name: String, label: String, start: Instant, end: Instant) {
        self.spans
            .lock()
            .expect("profiler poisoned")
            .push(SpanRecord {
                name,
                label,
                start: start.saturating_duration_since(self.epoch),
                wall: end.saturating_duration_since(start),
            });
    }
}

/// RAII guard of one open span; records on drop.
#[derive(Debug)]
pub struct Scope<'a> {
    profiler: &'a Profiler,
    name: String,
    label: String,
    start: Instant,
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        self.profiler.close(
            std::mem::take(&mut self.name),
            std::mem::take(&mut self.label),
            self.start,
            Instant::now(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_record_spans_in_completion_order() {
        let p = Profiler::new();
        {
            let _outer = p.scope("outer", "x");
            let _inner = p.scope("inner", "x");
        }
        let spans = p.spans();
        assert_eq!(spans.len(), 2);
        // Inner drops first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert!(spans[1].wall >= spans[0].wall);
    }

    #[test]
    fn time_wraps_a_closure() {
        let p = Profiler::new();
        let v = p.time("stage", "d", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.spans().len(), 1);
        assert_eq!(p.spans()[0].label, "d");
    }

    #[test]
    fn totals_aggregate_by_name() {
        let p = Profiler::new();
        p.record("map", "a", Duration::ZERO, Duration::from_millis(10));
        p.record("map", "b", Duration::ZERO, Duration::from_millis(30));
        p.record("instrument", "a", Duration::ZERO, Duration::from_millis(5));
        let totals = p.totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "instrument");
        assert_eq!(totals[1], ("map".to_string(), 2, Duration::from_millis(40)));
        let table = p.render();
        assert!(table.contains("map"));
        assert!(table.contains("2 span(s)"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let p = Profiler::new();
        p.record(
            "characterize",
            "DCT",
            Duration::from_millis(1),
            Duration::from_millis(2),
        );
        p.record("map", "DCT", Duration::from_millis(3), Duration::ZERO);
        let jsonl = p.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(jsonl.contains("\"span\": \"characterize\""));
        let json = p.render_json("");
        assert!(json.contains("\"map\": {\"spans\": 1"));
    }

    #[test]
    fn concurrent_scopes_are_all_recorded() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                s.spawn(move || {
                    for _ in 0..50 {
                        let _scope = p.scope("job", &format!("t{t}"));
                    }
                });
            }
        });
        assert_eq!(p.spans().len(), 200);
    }
}
