//! Decode a synthetic video stream on the MPEG4 benchmark and study its
//! power: the windowed power profile over time, the per-component
//! hotspots, and the emulated total against the software estimate —
//! the paper's motivating use case ("study the power consumption of a
//! design under realistic environments and operating conditions").
//!
//! Run with: `cargo run --release --example mpeg4_power`

use power_emulation::core::PowerEmulationFlow;
use power_emulation::designs::mpeg4::{
    encode_frame, mpeg4_decoder, synthetic_blocks, BitstreamFeeder,
};
use power_emulation::estimators::{PowerEstimator, RtlEventEstimator};
use power_emulation::power::CharacterizeConfig;
use power_emulation::rtl::stats::DesignStats;

fn main() {
    let design = mpeg4_decoder();
    println!("MPEG4 decoder: {}", DesignStats::of(&design));

    // One frame of synthetic video.
    let blocks = synthetic_blocks(16, 2026);
    let bits = encode_frame(&blocks);
    let cycles = 30_000u64;
    println!(
        "workload: {} blocks, {} bitstream bits, {cycles} cycles",
        blocks.len(),
        bits.len()
    );

    // Software power estimation with a fine-grained profile.
    let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
    flow.prepare_models(&design).expect("characterize");
    let library = flow.library();
    let mut tb = BitstreamFeeder::new(bits.clone(), Some(8), cycles);
    let report = RtlEventEstimator::new(&library)
        .with_window(1_000)
        .estimate(&design, &mut tb)
        .expect("software estimate");

    println!();
    println!("── power profile (1000-cycle windows, µW) ───────────────────");
    let max = report.profile_uw.iter().copied().fold(0.0, f64::max);
    for (i, p) in report.profile_uw.iter().enumerate() {
        let bar = "█".repeat((p / max * 50.0).round() as usize);
        println!("{:>6}k {:>9.1} {}", i + 1, p, bar);
    }

    println!();
    println!("── hotspots (top components by energy) ──────────────────────");
    let mut ranked: Vec<(usize, f64)> = report
        .per_component_fj
        .iter()
        .copied()
        .enumerate()
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (idx, fj) in ranked.iter().take(10) {
        let comp = &design.components()[*idx];
        println!(
            "{:>10.2} nJ  {:<8} {}",
            fj / 1e6,
            comp.kind().mnemonic(),
            comp.name()
        );
    }

    println!();
    println!("── emulated readout vs software estimate ────────────────────");
    // The enhanced MPEG4 is ~400× the original design; simulating it in
    // software is exactly the slowness power emulation eliminates, so the
    // cross-check uses a shorter window of the same stream.
    let check_cycles = 2_500u64;
    let result = flow.run(&design).expect("flow");
    let mut tb = BitstreamFeeder::new(bits.clone(), Some(8), check_cycles);
    let soft_short = RtlEventEstimator::new(&library)
        .estimate(&design, &mut tb)
        .expect("software estimate");
    let mut tb = BitstreamFeeder::new(bits, Some(8), check_cycles);
    let emulated = flow.emulate_power(&result, &mut tb).expect("emulation");
    let rel =
        (emulated.total_energy_fj - soft_short.total_energy_fj).abs() / soft_short.total_energy_fj;
    println!(
        "({check_cycles}-cycle window) software: {:.2} nJ | emulated: {:.2} nJ |          quantization gap: {:.3} %",
        soft_short.total_energy_fj / 1e6,
        emulated.total_energy_fj / 1e6,
        100.0 * rel
    );
    println!(
        "enhanced design: {} → mapped to {} ({} devices)",
        result.overhead.enhanced.components,
        result.mapped.resource_use(),
        result.partition.devices
    );
}
