//! Quickstart: power-emulate the paper's Figure-1 circuit.
//!
//! Builds the binary-search example design, enhances it with power
//! estimation hardware (power models + strobe generator + aggregator),
//! maps it onto the simulated Virtex-II platform, runs a workload, and
//! reads the power accumulator back — the complete Figure-2 flow.
//!
//! Run with: `cargo run --release --example quickstart`

use power_emulation::core::PowerEmulationFlow;
use power_emulation::designs::binary_search::{binary_search, TABLE_WORDS};
use power_emulation::fpga::emulate::EmulationTimeModel;
use power_emulation::power::CharacterizeConfig;
use power_emulation::rtl::stats::DesignStats;
use power_emulation::sim::{SimControl, Testbench};
use power_emulation::util::rng::Xoshiro;

/// Workload: a stream of randomized searches, started back-to-back.
struct SearchWorkload {
    cycles: u64,
    rng: Xoshiro,
}

impl Testbench for SearchWorkload {
    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn apply(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        // Re-arm `start` whenever the previous search finished.
        let done = sim.output("done");
        if done == 1 || sim.cycle() == 0 {
            let target = self.rng.bits(8);
            sim.set_input_by_name("value", target);
        }
        sim.set_input_by_name("start", 1);
    }
}

fn main() {
    println!("── the design (paper, Figure 1) ─────────────────────────────");
    let design = binary_search();
    println!("binary search over a {TABLE_WORDS}-entry sorted table");
    println!("{}", DesignStats::of(&design));

    println!();
    println!("── step 1: power model inference & enhancement ──────────────");
    let flow = PowerEmulationFlow::new().with_characterize(CharacterizeConfig::fast());
    let result = flow.run(&design).expect("flow runs");
    println!("{}", result.overhead);
    println!(
        "coefficient format: {} (LSB = {:.4} fJ)",
        result.instrumented.format,
        result.instrumented.format.lsb()
    );

    println!();
    println!("── step 2: FPGA synthesis / place & route (simulated) ───────");
    println!("mapped: {}", result.mapped.resource_use());
    println!(
        "timing: {:.2} ns critical path ({} LUT levels) → {:.1} MHz",
        result.timing.critical_path_ns, result.timing.depth_levels, result.timing.fmax_mhz
    );
    println!("devices: {}", result.partition.devices);

    println!();
    println!("── step 3: execute & read power back ────────────────────────");
    let mut workload = SearchWorkload {
        cycles: 2_000,
        rng: Xoshiro::new(7),
    };
    let power = flow
        .emulate_power(&result, &mut workload)
        .expect("emulation");
    println!(
        "{} cycles → {:.2} nJ total, {:.1} µW average",
        power.cycles,
        power.total_energy_fj / 1e6,
        power.average_power_uw
    );

    let time = result.emulation_time(&EmulationTimeModel::default(), 1_000_000);
    println!(
        "a 1M-cycle run on the platform: {:.4} s at {:.1} MHz \
         (one-time compile ≈ {:.0} s)",
        time.total.as_secs_f64(),
        time.f_emu_mhz,
        time.compile_time.as_secs_f64()
    );
}
