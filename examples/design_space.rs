//! Design-space exploration of the power estimation hardware itself:
//! sweep the coefficient fixed-point width, the power-strobe period, and
//! the aggregator topology on the DCT benchmark, reporting the
//! accuracy/area/clock trade-offs (the knobs behind the paper's closing
//! remarks on instrumentation cost).
//!
//! Run with: `cargo run --release --example design_space`

use power_emulation::designs::suite::benchmark;
use power_emulation::estimators::{PowerEstimator, RtlEventEstimator};
use power_emulation::fpga::lut::map_to_luts;
use power_emulation::fpga::timing::analyze_timing;
use power_emulation::gate::expand::expand_design;
use power_emulation::instrument::{instrument, AggregatorTopology, InstrumentConfig};
use power_emulation::power::{CharacterizeConfig, ModelLibrary};
use power_emulation::sim::Simulator;

fn main() {
    let bench = benchmark("DCT").expect("suite has DCT");
    let design = &bench.design;
    let cycles = 800u64;

    let mut library = ModelLibrary::new();
    library
        .characterize_design(design, &CharacterizeConfig::fast())
        .expect("characterize");
    let software = {
        let mut tb = bench.testbench(cycles);
        RtlEventEstimator::new(&library)
            .estimate(design, tb.as_mut())
            .expect("software")
            .total_energy_fj
    };
    println!(
        "DCT, {cycles} cycles; software estimate = {:.2} nJ",
        software / 1e6
    );

    let emulate = |cfg: &InstrumentConfig| -> (f64, u32, f64) {
        let inst = instrument(design, &library, cfg).expect("instrument");
        let mut sim = Simulator::new(&inst.design).expect("sim");
        let mut tb = bench.testbench(cycles);
        power_emulation::sim::run(&mut sim, tb.as_mut());
        let energy = inst.read_energy_fj(&mut sim);
        let mapped = map_to_luts(&expand_design(&inst.design).netlist);
        let fmax = analyze_timing(&mapped).fmax_mhz;
        (energy, mapped.resource_use().luts, fmax)
    };

    println!();
    println!("coefficient width sweep (strobe 1, tree aggregator)");
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>10}",
        "bits", "energy(nJ)", "error%", "LUTs", "fmax(MHz)"
    );
    for bits in [6u32, 8, 12, 16, 20] {
        let (e, luts, fmax) = emulate(&InstrumentConfig {
            coeff_bits: bits,
            ..InstrumentConfig::default()
        });
        println!(
            "{bits:>6} {:>12.2} {:>9.3}% {luts:>10} {fmax:>10.1}",
            e / 1e6,
            100.0 * ((e - software) / software).abs()
        );
    }

    println!();
    println!("strobe period sweep (16-bit coefficients)");
    println!("{:>6} {:>12} {:>10}", "P", "energy(nJ)", "dev%");
    for period in [1u32, 2, 4, 8, 16] {
        let (e, _, _) = emulate(&InstrumentConfig {
            strobe_period: period,
            ..InstrumentConfig::default()
        });
        println!(
            "{period:>6} {:>12.2} {:>9.2}%",
            e / 1e6,
            100.0 * ((e - software) / software).abs()
        );
    }

    println!();
    println!("aggregator topology sweep");
    println!("{:>16} {:>10} {:>10}", "topology", "LUTs", "fmax(MHz)");
    for topo in [
        AggregatorTopology::Chain,
        AggregatorTopology::Tree,
        AggregatorTopology::PipelinedTree,
    ] {
        let (_, luts, fmax) = emulate(&InstrumentConfig {
            aggregator: topo,
            ..InstrumentConfig::default()
        });
        println!("{:>16} {luts:>10} {fmax:>10.1}", topo.to_string());
    }
}
