//! Bring your own RTL: author a small FIR filter with the netlist
//! builder, characterize its component classes, compare all three power
//! estimators on it, and archive the flow artifacts (the textual netlist
//! of the enhanced design and the characterized model library).
//!
//! Run with: `cargo run --release --example custom_design`

use power_emulation::estimators::{
    GateLevelEstimator, PowerEstimator, RtlActivityDbEstimator, RtlEventEstimator,
};
use power_emulation::instrument::{instrument, InstrumentConfig};
use power_emulation::power::{CharacterizeConfig, ModelLibrary};
use power_emulation::rtl::builder::DesignBuilder;
use power_emulation::rtl::{text, Design};
use power_emulation::sim::{SimControl, Testbench};
use power_emulation::util::rng::Xoshiro;

/// A 4-tap FIR filter: y = 3·x + 5·x₋₁ + 5·x₋₂ + 3·x₋₃ (shifted down).
fn fir4() -> Design {
    let mut b = DesignBuilder::new("fir4");
    let clk = b.clock("clk");
    let x = b.input("x", 8);
    let x0 = b.pipeline_reg("x0", x, 0, clk);
    let x1 = b.pipeline_reg("x1", x0, 0, clk);
    let x2 = b.pipeline_reg("x2", x1, 0, clk);
    let x3 = b.pipeline_reg("x3", x2, 0, clk);
    let taps = [(x0, 3u64), (x1, 5), (x2, 5), (x3, 3)];
    let mut acc = None;
    for (sig, coeff) in taps {
        let c = b.constant(coeff, 12);
        let xe = b.zext(sig, 12);
        let term = b.mul(xe, c, 12);
        acc = Some(match acc {
            None => term,
            Some(a) => b.add(a, term),
        });
    }
    let sum = acc.expect("taps");
    let y = b.shr_const(sum, 4);
    let yq = b.pipeline_reg("y", y, 0, clk);
    b.output("y", yq);
    b.finish().expect("fir4 is valid")
}

struct NoiseInput {
    cycles: u64,
    rng: Xoshiro,
}

impl Testbench for NoiseInput {
    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn apply(&mut self, _cycle: u64, sim: &mut dyn SimControl) {
        let v = self.rng.bits(8);
        sim.set_input_by_name("x", v);
    }
}

fn main() {
    let design = fir4();
    let cycles = 1_000u64;

    // Characterize every class in the design.
    let mut library = ModelLibrary::new();
    let reports = library
        .characterize_design(&design, &CharacterizeConfig::standard())
        .expect("characterization");
    println!("characterized {} component classes:", reports.len());
    for r in &reports {
        println!(
            "  {:<18} R²={:.3}  mean={:.1} fJ/cycle",
            r.key.to_string(),
            r.r_squared,
            r.mean_energy_fj
        );
    }

    // Compare the three estimators on identical stimuli.
    println!();
    println!("estimator comparison ({cycles} cycles of uniform noise):");
    let run = |est: &dyn PowerEstimator| {
        let mut tb = NoiseInput {
            cycles,
            rng: Xoshiro::new(99),
        };
        let r = est.estimate(&design, &mut tb).expect("estimate");
        println!(
            "  {:<20} {:>9.2} nJ {:>9.1} µW {:>10.3} ms wall",
            r.tool,
            r.total_energy_fj / 1e6,
            r.average_power_uw(),
            r.wall.as_secs_f64() * 1e3
        );
        r.total_energy_fj
    };
    let soft = run(&RtlEventEstimator::new(&library));
    run(&RtlActivityDbEstimator::new(&library));
    let gate = run(&GateLevelEstimator::new());
    println!(
        "  macromodel vs gate-level reference: {:.2} % off",
        100.0 * ((soft - gate) / gate).abs()
    );

    // Archive the flow artifacts.
    let inst = instrument(&design, &library, &InstrumentConfig::default()).expect("instrument");
    let netlist_text = text::to_text(&inst.design);
    let library_text = library.to_text();
    println!();
    println!(
        "artifacts: enhanced netlist = {} lines, model library = {} lines \
         (both round-trip through their text formats)",
        netlist_text.lines().count(),
        library_text.lines().count()
    );
    // Prove the round trips.
    let reparsed = text::from_text(&netlist_text).expect("netlist parses");
    assert_eq!(reparsed.components().len(), inst.design.components().len());
    let relib = ModelLibrary::from_text(&library_text).expect("library parses");
    assert_eq!(relib.len(), library.len());
    println!("round-trip OK");
}
